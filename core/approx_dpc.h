// Approx-DPC: the paper's grid-based approximation (§4).
//
// The domain is cut into cells of width d_cut / sqrt(dim), so any two
// points sharing a cell are within d_cut of each other. Each cell's
// densest point is its *peak*. The approximation:
//
//   * non-peak points take their cell peak as dependent point — distance
//     <= the cell diameter = d_cut < delta_min, so they can never become
//     centers and need no exact delta search;
//   * only cell peaks (a small fraction of n) run the exact
//     nearest-denser-neighbor query, so center selection is EXACT — the
//     paper's headline property: Approx-DPC returns the same centers as
//     Ex-DPC.
//
// rho is computed exactly with the kd-tree's whole-subtree range count
// (equivalent to the paper's whole-cell counting, but dimension-robust);
// the speedup over Ex-DPC comes from skipping the delta search for every
// non-peak point.
#ifndef DPC_CORE_APPROX_DPC_H_
#define DPC_CORE_APPROX_DPC_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/dpc.h"
#include "core/ex_dpc.h"
#include "core/parallel_for.h"
#include "index/kdtree.h"

namespace dpc {

class ApproxDpc : public DpcAlgorithm {
 public:
  std::string_view name() const override { return "Approx-DPC"; }

  DpcResult Run(const PointSet& points, const DpcParams& params) override {
    DpcResult result;
    const PointId n = points.size();
    const int dim = points.dim();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    KdTree tree;
    tree.Build(points);

    // Grid: map each point to its cell. Cell width d_cut/sqrt(dim) bounds
    // the cell diameter by d_cut. Keys are the exact integer cell
    // coordinates (hash collisions fall back to coordinate equality), so
    // distant cells can never silently merge.
    const double cell_width = params.d_cut / std::sqrt(static_cast<double>(dim));
    std::unordered_map<CellCoords, std::vector<PointId>, CellCoordsHash> cells;
    cells.reserve(static_cast<size_t>(n) / 4 + 16);
    CellCoords key;
    for (PointId i = 0; i < n; ++i) {
      key.assign(static_cast<size_t>(dim), 0);
      for (int d = 0; d < dim; ++d) {
        key[static_cast<size_t>(d)] =
            static_cast<int64_t>(std::floor(points[i][d] / cell_width));
      }
      cells[key].push_back(i);
    }
    result.stats.build_seconds = phase.Lap();
    size_t grid_bytes =
        cells.size() * (sizeof(CellCoords) + static_cast<size_t>(dim) * sizeof(int64_t) +
                        sizeof(std::vector<PointId>));
    grid_bytes += static_cast<size_t>(n) * sizeof(PointId);
    result.stats.index_memory_bytes = tree.MemoryBytes() + grid_bytes;

    // rho: exact range count, as in Ex-DPC.
    internal::ParallelFor(n, params.num_threads, [&](PointId begin, PointId end) {
      for (PointId i = begin; i < end; ++i) {
        result.rho[static_cast<size_t>(i)] = static_cast<double>(
            tree.RangeCount(points[i], params.d_cut) - 1);
      }
    });
    result.stats.rho_seconds = phase.Lap();

    // delta: cell peaks get the exact search, everyone else snaps to its
    // cell peak.
    std::vector<PointId> peaks;
    peaks.reserve(cells.size());
    for (const auto& [key, members] : cells) {
      PointId peak = members.front();
      for (const PointId i : members) {
        if (DenserThan(result.rho[static_cast<size_t>(i)], i,
                       result.rho[static_cast<size_t>(peak)], peak)) {
          peak = i;
        }
      }
      peaks.push_back(peak);
      for (const PointId i : members) {
        if (i == peak) continue;
        result.dependency[static_cast<size_t>(i)] = peak;
        result.delta[static_cast<size_t>(i)] =
            Distance(points[i], points[peak], dim);
      }
    }
    ExDpc::ComputeExactDeltas(points, tree, result.rho, params.num_threads,
                              &result.delta, &result.dependency, &peaks);
    result.stats.delta_seconds = phase.Lap();

    FinalizeClusters(params, &result);
    result.stats.label_seconds = phase.Lap();
    result.stats.total_seconds = total.Seconds();
    return result;
  }

 private:
  using CellCoords = std::vector<int64_t>;

  struct CellCoordsHash {
    size_t operator()(const CellCoords& coords) const {
      uint64_t h = 1469598103934665603ULL;  // FNV-1a over the coord bytes
      for (const int64_t c : coords) {
        uint64_t v = static_cast<uint64_t>(c);
        for (int b = 0; b < 8; ++b) {
          h ^= (v >> (8 * b)) & 0xffULL;
          h *= 1099511628211ULL;
        }
      }
      return static_cast<size_t>(h);
    }
  };
};

}  // namespace dpc

#endif  // DPC_CORE_APPROX_DPC_H_
