// Approx-DPC: the paper's grid-based approximation (§4).
//
// The domain is cut into cells of width d_cut / sqrt(dim), so any two
// points sharing a cell are within d_cut of each other. Each cell's
// densest point is its *peak*. The approximation:
//
//   * non-peak points take their cell peak as dependent point — distance
//     <= the cell diameter = d_cut < delta_min, so they can never become
//     centers and need no exact delta search;
//   * only cell peaks (a small fraction of n) run the exact
//     nearest-denser-neighbor query, so center selection is EXACT — the
//     paper's headline property: Approx-DPC returns the same centers as
//     Ex-DPC.
//
// rho is computed exactly with the kd-tree's whole-subtree range count
// (equivalent to the paper's whole-cell counting, but dimension-robust);
// the speedup over Ex-DPC comes from skipping the delta search for every
// non-peak point.
#ifndef DPC_CORE_APPROX_DPC_H_
#define DPC_CORE_APPROX_DPC_H_

#include <cmath>
#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/ex_dpc.h"
#include "core/parallel_for.h"
#include "index/grid.h"
#include "index/kdtree.h"

namespace dpc {

class ApproxDpc : public DpcAlgorithm {
 public:
  std::string_view name() const override { return "Approx-DPC"; }

  DpcResult Run(const PointSet& points, const DpcParams& params) override {
    DpcResult result;
    const PointId n = points.size();
    const int dim = points.dim();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    KdTree tree;
    tree.Build(points);

    // Grid with cell side d_cut/sqrt(dim), bounding the cell diameter by
    // d_cut (index/grid.h — shared with S-Approx-DPC).
    const UniformGrid grid(points, params.d_cut / std::sqrt(static_cast<double>(dim)));
    result.stats.build_seconds = phase.Lap();
    result.stats.index_memory_bytes = tree.MemoryBytes() + grid.MemoryBytes();

    // rho: exact range count, as in Ex-DPC.
    internal::ParallelFor(n, params.num_threads, [&](PointId begin, PointId end) {
      for (PointId i = begin; i < end; ++i) {
        result.rho[static_cast<size_t>(i)] = static_cast<double>(
            tree.RangeCount(points[i], params.d_cut) - 1);
      }
    });
    result.stats.rho_seconds = phase.Lap();

    // delta: cell peaks get the exact search, everyone else snaps to its
    // cell peak.
    std::vector<PointId> peaks;
    peaks.reserve(grid.num_cells());
    for (const auto& cell : grid.cells()) {
      PointId peak = cell.members.front();
      for (const PointId i : cell.members) {
        if (DenserThan(result.rho[static_cast<size_t>(i)], i,
                       result.rho[static_cast<size_t>(peak)], peak)) {
          peak = i;
        }
      }
      peaks.push_back(peak);
      for (const PointId i : cell.members) {
        if (i == peak) continue;
        result.dependency[static_cast<size_t>(i)] = peak;
        result.delta[static_cast<size_t>(i)] =
            Distance(points[i], points[peak], dim);
      }
    }
    ExDpc::ComputeExactDeltas(points, tree, result.rho, params.num_threads,
                              &result.delta, &result.dependency, &peaks);
    result.stats.delta_seconds = phase.Lap();

    FinalizeClusters(params, &result);
    result.stats.label_seconds = phase.Lap();
    result.stats.total_seconds = total.Seconds();
    return result;
  }
};

}  // namespace dpc

#endif  // DPC_CORE_APPROX_DPC_H_
