// Approx-DPC: the paper's grid-based approximation (§4).
//
// The domain is cut into cells of width d_cut / sqrt(dim), so any two
// points sharing a cell are within d_cut of each other. Each cell's
// densest point is its *peak*. The approximation:
//
//   * non-peak points take their cell peak as dependent point — distance
//     <= the cell diameter = d_cut < delta_min, so they can never become
//     centers and need no exact delta search;
//   * only cell peaks (a small fraction of n) run the exact
//     nearest-denser-neighbor query, so center selection is EXACT — the
//     paper's headline property: Approx-DPC returns the same centers as
//     Ex-DPC.
//
// rho is exact. With joint_range_search (§4.2, the default) each grid
// cell runs ONE shared kd-tree traversal that counts neighbors for all
// its members at once; turning it off falls back to Ex-DPC-style
// per-point range counts — identical values, one traversal per point
// (ablation A of bench_ablation). Both phases iterate cells partitioned
// by the §4.5 LPT scheduler under the default cost-guided strategy.
//
// The peaks' exact dependent search uses the paper's density-ordered
// subset scheme: points are split into s subsets by density rank, one
// kd-tree per subset, and a peak only queries the subsets that can hold
// denser points — denser peaks stop after fewer subsets. s comes from
// SolveNumSubsets (the Equation (2) cost model) unless forced
// (ablation C).
#ifndef DPC_CORE_APPROX_DPC_H_
#define DPC_CORE_APPROX_DPC_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/ex_dpc.h"
#include "core/kernels.h"
#include "core/options.h"
#include "core/sharded_dpc.h"
#include "core/soa.h"
#include "index/grid.h"
#include "index/kdtree.h"
#include "parallel/parallel_for.h"

namespace dpc {

struct ApproxDpcOptions {
  /// §4.2 joint range search: one shared kd-tree traversal per grid cell
  /// computes rho for all its members. false = Ex-DPC-style per-point
  /// range counts. Labels are identical either way (both are exact).
  bool joint_range_search = true;
  /// Loop scheduling override; unset inherits the ExecutionContext's
  /// strategy (default cost-guided, §4.5).
  std::optional<ScheduleStrategy> scheduler;
  /// Subset count s of the peaks' density-ordered exact dependent
  /// search; 0 solves the Equation (2) cost model (SolveNumSubsets),
  /// 1 collapses to a single global search.
  int force_num_subsets = 0;
  /// `sharding=region` solves grid-region shards concurrently
  /// (core/sharded_dpc.h) — bit-identical labels, so the solution cache
  /// treats it as the same configuration.
  ShardingOptions sharding;

  static StatusOr<ApproxDpcOptions> FromOptions(const OptionsMap& map) {
    ApproxDpcOptions options;
    OptionsReader reader(map);
    reader.Bool("joint_range_search", &options.joint_range_search);
    reader.Strategy("scheduler", &options.scheduler);
    reader.Int("force_num_subsets", &options.force_num_subsets);
    if (Status s = options.sharding.Consume(reader); !s.ok()) return s;
    if (Status s = reader.status(); !s.ok()) return s;
    if (options.force_num_subsets < 0) {
      return Status::InvalidArgument("force_num_subsets must be >= 0");
    }
    return options;
  }
};

class ApproxDpc : public DpcAlgorithm {
 public:
  ApproxDpc() = default;
  explicit ApproxDpc(ApproxDpcOptions options) : options_(options) {}

  std::string_view name() const override { return "Approx-DPC"; }

  /// The Equation (2) analog of our cost model for the density-ordered
  /// subset search: total tree build shrinks with s (s trees of n/s
  /// points cost n*log2(n/s) together) while expected query work grows
  /// linearly in s (a peak of uniform rank visits ~s/2 subsets).
  /// Balancing d/ds of the two terms gives s* ~ 2*sqrt(n)/log2(n).
  static int SolveNumSubsets(PointId n, int dim) {
    (void)dim;  // the log-tree costs cancel the dimension factor
    if (n < 2) return 1;
    const double nd = static_cast<double>(n);
    const int s =
        static_cast<int>(std::lround(2.0 * std::sqrt(nd) / std::log2(nd)));
    return std::clamp<int>(s, 1, static_cast<int>(std::min<PointId>(n, 256)));
  }

 protected:
  DpcSolution SolveImpl(const PointSet& points, const ComputeParams& compute,
                        const ExecutionContext& ctx) override {
    ExecutionContext exec =
        options_.scheduler ? ctx.WithStrategy(*options_.scheduler) : ctx;
    if (options_.sharding.enabled()) return SolveSharded(points, compute, exec);

    DpcSolution result;
    const PointId n = points.size();
    const int dim = points.dim();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    KdTree tree;
    tree.Build(points);

    // Grid with cell side d_cut/sqrt(dim), bounding the cell diameter by
    // d_cut (index/grid.h — shared with S-Approx-DPC); its per-cell
    // population doubles as the §4.5 scheduling cost model.
    const UniformGrid grid(points,
                           compute.d_cut / std::sqrt(static_cast<double>(dim)));
    const std::vector<double> cell_costs = grid.CellCosts();
    result.stats.build_seconds = phase.Lap();
    result.stats.index_memory_bytes = tree.MemoryBytes() + grid.MemoryBytes();

    // rho: exact range counts, cell by cell.
    if (options_.joint_range_search) {
      ParallelForWithCosts(exec, cell_costs, [&](int64_t cell) {
        const std::vector<PointId>& members = grid.members(cell);
        // Per-thread scratch (pool workers persist): the members' tight
        // bounding box — lo then hi, dim doubles each — and the counts.
        // Both are fully overwritten per cell.
        static thread_local std::vector<double> box;
        static thread_local std::vector<PointId> counts;
        box.assign(static_cast<size_t>(2 * dim), 0.0);
        double* lo = box.data();
        double* hi = box.data() + dim;
        for (int d = 0; d < dim; ++d) {
          lo[d] = std::numeric_limits<double>::infinity();
          hi[d] = -std::numeric_limits<double>::infinity();
        }
        for (const PointId i : members) {
          for (int d = 0; d < dim; ++d) {
            lo[d] = std::min(lo[d], points[i][d]);
            hi[d] = std::max(hi[d], points[i][d]);
          }
        }
        tree.JointRangeCount(lo, hi, members, compute.d_cut, &counts);
        for (size_t k = 0; k < members.size(); ++k) {
          result.rho[static_cast<size_t>(members[k])] =
              static_cast<double>(counts[k] - 1);  // self excluded
        }
      });
    } else {
      ParallelForWithCosts(exec, cell_costs, [&](int64_t cell) {
        for (const PointId i : grid.members(cell)) {
          result.rho[static_cast<size_t>(i)] = static_cast<double>(
              tree.RangeCount(points[i], compute.d_cut) - 1);
        }
      });
    }
    result.stats.rho_seconds = phase.Lap();
    if (internal::Interrupted(exec, &result)) {
      result.stats.total_seconds = total.Seconds();
      return result;
    }

    // delta: cell peaks get the exact search, everyone else snaps to its
    // cell peak. With cell reordering on (the default), the snap
    // distances stream from a cell-ordered SoA view — each cell's
    // members are one contiguous SquaredDistanceBatch; sqrt of a
    // bit-identical square is bit-identical to the scalar Distance.
    PointSetSoA cell_soa;
    UniformGrid::Ordering ordering;
    const bool reordered = kernels::SoaCellReorderEnabled() && n > 0;
    if (reordered) {
      ordering = grid.CellOrdering();
      cell_soa.Assign(points, ordering.order.data(), n, /*store_ids=*/false);
    }
    std::vector<double> snap_buf;
    std::vector<PointId> peaks;
    peaks.reserve(static_cast<size_t>(grid.num_cells()));
    for (CellId c = 0; c < grid.num_cells(); ++c) {
      const std::vector<PointId>& members = grid.members(c);
      PointId peak = members.front();
      for (const PointId i : members) {
        if (DenserThan(result.rho[static_cast<size_t>(i)], i,
                       result.rho[static_cast<size_t>(peak)], peak)) {
          peak = i;
        }
      }
      peaks.push_back(peak);
      if (reordered) {
        snap_buf.resize(members.size());
        kernels::SquaredDistanceBatch(
            cell_soa, ordering.cell_begin[static_cast<size_t>(c)],
            static_cast<PointId>(members.size()), points[peak],
            snap_buf.data());
        for (size_t k = 0; k < members.size(); ++k) {
          const PointId i = members[k];
          if (i == peak) continue;
          result.dependency[static_cast<size_t>(i)] = peak;
          result.delta[static_cast<size_t>(i)] = std::sqrt(snap_buf[k]);
        }
      } else {
        for (const PointId i : members) {
          if (i == peak) continue;
          result.dependency[static_cast<size_t>(i)] = peak;
          result.delta[static_cast<size_t>(i)] =
              Distance(points[i], points[peak], dim);
        }
      }
    }
    const int num_subsets = options_.force_num_subsets > 0
                                ? options_.force_num_subsets
                                : SolveNumSubsets(n, dim);
    ComputePeakDeltasBySubsets(points, result.rho, peaks, num_subsets, exec,
                               &result.delta, &result.dependency);
    result.stats.delta_seconds = phase.Lap();
    internal::Interrupted(exec, &result);
    result.stats.total_seconds = total.Seconds();
    return result;
  }

 public:
  /// The paper's dependent-point strategy for cell peaks: points are
  /// sorted into `num_subsets` density-ordered subsets, a kd-tree is
  /// bulk-loaded per subset, and each peak queries subsets densest-first.
  /// Every subset that wholly precedes the peak's own outranks it, so
  /// the query degenerates to a plain nearest-neighbor there; only the
  /// peak's own subset needs the denser-than predicate. The result is
  /// exactly the nearest denser neighbor (same candidate set as a global
  /// predicate search). Under cost-guided scheduling, peaks are
  /// LPT-partitioned by density rank — denser peaks visit fewer subsets,
  /// which rank models directly.
  static void ComputePeakDeltasBySubsets(
      const PointSet& points, const std::vector<double>& rho,
      const std::vector<PointId>& peaks, int num_subsets,
      const ExecutionContext& exec, std::vector<double>* delta,
      std::vector<PointId>* dependency) {
    const PointId n = points.size();
    const int dim = points.dim();
    if (n == 0 || peaks.empty()) return;
    const std::vector<PointId> order = DensityOrder(rho);
    std::vector<PointId> rank(static_cast<size_t>(n));
    for (PointId pos = 0; pos < n; ++pos) {
      rank[static_cast<size_t>(order[static_cast<size_t>(pos)])] = pos;
    }
    const int s = static_cast<int>(
        std::clamp<PointId>(num_subsets, 1, n));
    const PointId block = (n + s - 1) / s;

    std::vector<PointSet> subsets(static_cast<size_t>(s), PointSet(dim));
    for (int b = 0; b < s; ++b) {
      const PointId begin = static_cast<PointId>(b) * block;
      const PointId end = std::min<PointId>(begin + block, n);
      subsets[static_cast<size_t>(b)].Reserve(end - begin);
      for (PointId pos = begin; pos < end; ++pos) {
        subsets[static_cast<size_t>(b)].Add(
            points[order[static_cast<size_t>(pos)]]);
      }
    }
    std::vector<KdTree> trees(static_cast<size_t>(s));
    std::vector<double> build_costs(static_cast<size_t>(s));
    for (int b = 0; b < s; ++b) {
      build_costs[static_cast<size_t>(b)] =
          static_cast<double>(subsets[static_cast<size_t>(b)].size());
    }
    ParallelForWithCosts(exec, build_costs, [&](int64_t b) {
      trees[static_cast<size_t>(b)].Build(subsets[static_cast<size_t>(b)]);
    });

    std::vector<double> peak_costs(peaks.size());
    for (size_t k = 0; k < peaks.size(); ++k) {
      peak_costs[k] =
          static_cast<double>(rank[static_cast<size_t>(peaks[k])] + 1);
    }
    ParallelForWithCosts(exec, peak_costs, [&](int64_t k) {
      const PointId p = peaks[static_cast<size_t>(k)];
      const PointId rank_p = rank[static_cast<size_t>(p)];
      const int last = static_cast<int>(rank_p / block);
      double best = std::numeric_limits<double>::infinity();
      PointId best_id = -1;
      // The running best threads through as each search's initial bound,
      // so subsets that cannot beat it prune away at their root.
      for (int b = 0; b <= last; ++b) {
        const PointId base = static_cast<PointId>(b) * block;
        double dist = std::numeric_limits<double>::infinity();
        PointId local;
        if (b < last) {
          // Every point in this subset outranks p: plain NN on the
          // predicate-free batched path.
          local = trees[static_cast<size_t>(b)].NearestWithin(points[p], &dist,
                                                              best);
        } else {
          // A subset-local id lid sits at density-order position
          // base + lid, so its rank is base + lid by construction.
          local = trees[static_cast<size_t>(b)].NearestAccepted(
              points[p],
              [base, rank_p](PointId lid) { return base + lid < rank_p; },
              &dist, best);
        }
        if (local >= 0 && dist < best) {
          best = dist;
          best_id = order[static_cast<size_t>(base + local)];
        }
      }
      (*delta)[static_cast<size_t>(p)] = best;
      (*dependency)[static_cast<size_t>(p)] = best_id;
    });
  }

 private:
  /// Region-sharded solve: rho, peak election, and the non-peak snap run
  /// shard by shard (core/sharded_dpc.h); the peaks then enter the same
  /// density-ordered subset search with bit-identical inputs — rho is
  /// exact either way and cells never split across shards — so the whole
  /// solution matches the unsharded path bit for bit.
  DpcSolution SolveSharded(const PointSet& points, const ComputeParams& compute,
                           const ExecutionContext& exec) {
    DpcSolution result;
    const PointId n = points.size();
    const int dim = points.dim();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});
    if (n == 0) return result;

    internal::WallTimer total;
    internal::WallTimer phase;
    const UniformGrid grid(points,
                           compute.d_cut / std::sqrt(static_cast<double>(dim)));
    const RegionShardPlan plan = BuildRegionShardPlan(
        grid, compute.d_cut, options_.sharding.Resolve(exec));
    const std::vector<internal::ShardIndex> indexes =
        BuildShardIndexes(points, plan, exec);
    result.stats.build_seconds = phase.Lap();
    size_t shard_tree_bytes = 0;
    for (const auto& idx : indexes) shard_tree_bytes += idx.tree.MemoryBytes();
    result.stats.index_memory_bytes = shard_tree_bytes + grid.MemoryBytes();

    ShardedRho(points, compute.d_cut, exec, plan, indexes, &result.rho);
    result.stats.rho_seconds = phase.Lap();
    if (internal::Interrupted(exec, &result)) {
      result.stats.total_seconds = total.Seconds();
      return result;
    }

    std::vector<PointId> peaks;
    ShardedPeaksAndSnap(points, grid, exec, plan, result.rho, &result.delta,
                        &result.dependency, &peaks);
    if (internal::Interrupted(exec, &result)) {
      result.stats.delta_seconds = phase.Lap();
      result.stats.total_seconds = total.Seconds();
      return result;
    }
    const int num_subsets = options_.force_num_subsets > 0
                                ? options_.force_num_subsets
                                : SolveNumSubsets(n, dim);
    ComputePeakDeltasBySubsets(points, result.rho, peaks, num_subsets, exec,
                               &result.delta, &result.dependency);
    result.stats.delta_seconds = phase.Lap();
    internal::Interrupted(exec, &result);
    result.stats.total_seconds = total.Seconds();
    return result;
  }

  ApproxDpcOptions options_;
};

}  // namespace dpc

#endif  // DPC_CORE_APPROX_DPC_H_
