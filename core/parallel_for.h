// Tiny static-partition parallel-for used by the per-point phases (rho,
// delta). The paper's algorithms are embarrassingly parallel across points
// once the index is built; a static split over std::thread is enough until
// the dedicated parallel/ work-stealing layer lands.
#ifndef DPC_CORE_PARALLEL_FOR_H_
#define DPC_CORE_PARALLEL_FOR_H_

#include <cstdint>
#include <thread>
#include <vector>

namespace dpc::internal {

/// 0 (or negative) requests all hardware threads.
inline int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

/// Calls fn(begin, end) on num_threads disjoint chunks of [0, n).
/// fn must be safe to call concurrently on disjoint ranges.
template <typename Fn>
void ParallelFor(int64_t n, int num_threads, const Fn& fn) {
  const int threads = ResolveThreads(num_threads);
  if (threads <= 1 || n < 2048) {
    fn(int64_t{0}, n);
    return;
  }
  const int64_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const int64_t begin = t * chunk;
    if (begin >= n) break;
    const int64_t end = begin + chunk < n ? begin + chunk : n;
    pool.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace dpc::internal

#endif  // DPC_CORE_PARALLEL_FOR_H_
