// Decision-graph utilities (paper Figure 1): the (rho, delta) scatter on
// which users pick centers visually, plus headless threshold helpers so
// pipelines can reproduce the visual selection. Re-thresholding reuses
// DpcResult's stored rho/delta/dependency via FinalizeClusters — no
// re-clustering needed.
#ifndef DPC_CORE_DECISION_GRAPH_H_
#define DPC_CORE_DECISION_GRAPH_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/dpc.h"
#include "core/status.h"

namespace dpc {

struct DecisionGraphEntry {
  PointId id = -1;
  double rho = 0.0;
  double delta = 0.0;
};

/// The name the bench layer uses for one (rho, delta) scatter point.
using DecisionPoint = DecisionGraphEntry;

/// The full decision graph, sorted by delta descending (rho breaks ties)
/// so the candidate centers top the list.
inline std::vector<DecisionGraphEntry> BuildDecisionGraph(const DpcResult& result) {
  std::vector<DecisionGraphEntry> graph;
  graph.reserve(result.rho.size());
  for (size_t i = 0; i < result.rho.size(); ++i) {
    graph.push_back(DecisionGraphEntry{static_cast<PointId>(i), result.rho[i],
                                       result.delta[i]});
  }
  std::sort(graph.begin(), graph.end(),
            [](const DecisionGraphEntry& a, const DecisionGraphEntry& b) {
              if (a.delta != b.delta) return a.delta > b.delta;
              if (a.rho != b.rho) return a.rho > b.rho;
              return a.id < b.id;
            });
  return graph;
}

inline Status WriteDecisionGraphCsv(const std::vector<DecisionGraphEntry>& graph,
                                    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path + " for writing");
  std::fprintf(f, "id,rho,delta\n");
  for (const auto& e : graph) {
    std::fprintf(f, "%lld,%.17g,%.17g\n", static_cast<long long>(e.id), e.rho,
                 e.delta);
  }
  if (std::fclose(f) != 0) return Status::IoError("error closing " + path);
  return Status::Ok();
}

/// One point of the gamma ranking: gamma = rho * delta is the classic
/// single-number center score over the decision graph (large in both
/// coordinates = a strong center candidate).
struct GammaEntry {
  PointId id = -1;
  double rho = 0.0;
  double delta = 0.0;
  double gamma = 0.0;
};

/// The k highest-gamma points of a decision graph, computed straight from
/// rho/delta — labels are never needed, so this runs against a
/// DpcSolution as-is (the serving layer's `graph` request). Infinite
/// deltas (the global peak) are capped just above the largest finite
/// delta so gamma stays finite and zero-density peaks cannot produce
/// NaN. Deterministic order: gamma desc, then id asc.
inline std::vector<GammaEntry> TopGammaPoints(const std::vector<double>& rho,
                                              const std::vector<double>& delta,
                                              int k) {
  double max_finite = 0.0;
  for (const double d : delta) {
    if (!std::isinf(d) && d > max_finite) max_finite = d;
  }
  const double cap = max_finite > 0.0 ? max_finite * 1.05 : 1.0;
  std::vector<GammaEntry> entries;
  entries.reserve(rho.size());
  for (size_t i = 0; i < rho.size(); ++i) {
    GammaEntry e;
    e.id = static_cast<PointId>(i);
    e.rho = rho[i];
    e.delta = delta[i];
    e.gamma = rho[i] * (std::isinf(delta[i]) ? cap : delta[i]);
    entries.push_back(e);
  }
  const size_t take = std::min(entries.size(), static_cast<size_t>(k > 0 ? k : 0));
  std::partial_sort(entries.begin(), entries.begin() + static_cast<ptrdiff_t>(take),
                    entries.end(), [](const GammaEntry& a, const GammaEntry& b) {
                      if (a.gamma != b.gamma) return a.gamma > b.gamma;
                      return a.id < b.id;
                    });
  entries.resize(take);
  return entries;
}

namespace internal {

/// Deltas of center-eligible points (rho >= rho_min), sorted descending;
/// +inf (the global peak) is kept — comparisons against it behave.
inline std::vector<double> EligibleDeltasDesc(const DpcResult& result,
                                              const DpcParams& params) {
  std::vector<double> deltas;
  deltas.reserve(result.rho.size());
  for (size_t i = 0; i < result.rho.size(); ++i) {
    if (result.rho[i] >= params.rho_min) deltas.push_back(result.delta[i]);
  }
  std::sort(deltas.begin(), deltas.end(), std::greater<double>());
  return deltas;
}

}  // namespace internal

/// A delta_min that selects exactly k centers (the k eligible points with
/// the largest delta): the midpoint of the gap below the k-th delta.
inline double SuggestDeltaMinForK(const DpcResult& result, const DpcParams& params,
                                  int k) {
  // Never suggest a threshold at or below d_cut: grid-based algorithms
  // approximate non-peak deltas by distances <= d_cut (cell diameter), so
  // a lower threshold would mint centers Ex-DPC could never produce. When
  // fewer than k eligible points sit above d_cut, the clamp wins and the
  // selection yields as many centers as honestly exist.
  const double floor = params.d_cut * (1.0 + 1e-9);
  const std::vector<double> deltas = internal::EligibleDeltasDesc(result, params);
  const size_t kk = static_cast<size_t>(k > 0 ? k : 1);
  if (deltas.empty()) return params.d_cut * 1.5;
  if (kk >= deltas.size()) {
    return std::max(std::nextafter(deltas.back(), 0.0), floor);
  }
  const double upper = deltas[kk - 1];
  const double lower = deltas[kk];
  if (std::isinf(upper)) {
    // k covers only +inf entries; anything above the next finite delta works.
    return std::isinf(lower) ? lower : std::max(lower * 2.0 + 1.0, floor);
  }
  return std::max(0.5 * (upper + lower), floor);
}

/// A delta_min at the widest gap of the sorted decision-graph deltas —
/// the "visual gap" a human would pick on Figure 1(b). Only the top of
/// the graph is scanned; +inf entries count as just above the largest
/// finite delta.
inline double SuggestDeltaMinByGap(const DpcResult& result, const DpcParams& params) {
  std::vector<double> deltas = internal::EligibleDeltasDesc(result, params);
  if (deltas.size() < 2) return params.d_cut * 1.5;
  double max_finite = params.d_cut;
  for (const double d : deltas) {
    if (!std::isinf(d)) {
      max_finite = std::max(max_finite, d);
      break;  // sorted descending: first finite value is the largest
    }
  }
  for (double& d : deltas) {
    if (std::isinf(d)) d = max_finite * 1.05;
  }
  // Deltas span orders of magnitude (center deltas ~ cluster separation,
  // the rest ~ d_cut), so the visual gap is a *relative* one: maximize the
  // ratio between consecutive deltas and cut at their geometric mean.
  const size_t scan = std::min<size_t>(deltas.size() - 1, 256);
  double best_ratio = -1.0;
  double best_threshold = params.d_cut * 1.5;
  for (size_t i = 0; i < scan; ++i) {
    // Gaps that would admit centers at or below d_cut are grid noise, skip.
    if (deltas[i] <= params.d_cut) break;
    const double lower = std::max(deltas[i + 1], 0.25 * params.d_cut);
    const double ratio = deltas[i] / lower;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_threshold = std::sqrt(deltas[i] * lower);
    }
  }
  // The threshold must stay above d_cut so grid-approximated deltas
  // (<= d_cut by construction) can never be selected as centers.
  return std::max(best_threshold, params.d_cut * (1.0 + 1e-9));
}

}  // namespace dpc

#endif  // DPC_CORE_DECISION_GRAPH_H_
