// Name-based algorithm factory for CLIs and config-driven pipelines.
// Names mirror the paper's algorithm menu; every entry is implemented.
// Adding an algorithm means adding one table slot here (and a registry
// test run picks it up automatically).
//
// API v2: every factory takes an OptionsMap (core/options.h) so callers
// like `dpc_cli --opt k=v` can drive per-algorithm knobs — LSH table
// counts, Approx-DPC's joint-range-search toggle, scheduler overrides —
// without recompiling. Unknown keys and malformed values fail with
// InvalidArgument.
#ifndef DPC_CORE_REGISTRY_H_
#define DPC_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/cfsfdp_a.h"
#include "baselines/lsh_ddp.h"
#include "baselines/scan_dpc.h"
#include "core/approx_dpc.h"
#include "core/dpc.h"
#include "core/ex_dpc.h"
#include "core/options.h"
#include "core/s_approx_dpc.h"
#include "core/status.h"

namespace dpc {

namespace internal {

struct AlgorithmEntry {
  const char* name;
  StatusOr<std::unique_ptr<DpcAlgorithm>> (*factory)(const OptionsMap&);
};

/// Wraps Algo(AlgoOptions::FromOptions(map)) into the registry's factory
/// signature.
template <typename Algo, typename Options>
StatusOr<std::unique_ptr<DpcAlgorithm>> MakeWithOptions(const OptionsMap& map) {
  StatusOr<Options> options = Options::FromOptions(map);
  if (!options.ok()) return options.status();
  return std::unique_ptr<DpcAlgorithm>(
      std::make_unique<Algo>(std::move(options).value()));
}

/// Single source of truth: landing an algorithm means adding one slot
/// here.
inline const std::vector<AlgorithmEntry>& AlgorithmTable() {
  static const std::vector<AlgorithmEntry> kTable = {
      {"ex-dpc", &MakeWithOptions<ExDpc, ExDpcOptions>},
      {"approx-dpc", &MakeWithOptions<ApproxDpc, ApproxDpcOptions>},
      {"s-approx-dpc", &MakeWithOptions<SApproxDpc, SApproxDpcOptions>},
      {"scan", &MakeWithOptions<ScanDpc, ScanDpcOptions>},
      {"rtree-scan", &MakeWithOptions<RtreeScanDpc, ScanDpcOptions>},
      {"lsh-ddp", &MakeWithOptions<LshDdp, LshDdpOptions>},
      {"cfsfdp-a", &MakeWithOptions<CfsfdpA, CfsfdpAOptions>},
  };
  return kTable;
}

}  // namespace internal

/// Names accepted by MakeAlgorithmByName, the paper's algorithms first.
inline std::vector<std::string> RegisteredAlgorithmNames() {
  std::vector<std::string> names;
  for (const auto& entry : internal::AlgorithmTable()) names.emplace_back(entry.name);
  return names;
}

/// Constructs a registered algorithm, wiring the options map into its
/// per-algorithm options struct (see each algorithm header for the keys).
inline StatusOr<std::unique_ptr<DpcAlgorithm>> MakeAlgorithmByName(
    const std::string& name, const OptionsMap& options) {
  for (const auto& entry : internal::AlgorithmTable()) {
    if (name == entry.name) return entry.factory(options);
  }
  std::string menu;
  for (const auto& entry : internal::AlgorithmTable()) {
    if (!menu.empty()) menu += ", ";
    menu += entry.name;
  }
  return Status::NotFound("unknown algorithm '" + name + "'; expected one of: " +
                          menu);
}

inline StatusOr<std::unique_ptr<DpcAlgorithm>> MakeAlgorithmByName(
    const std::string& name) {
  return MakeAlgorithmByName(name, OptionsMap{});
}

}  // namespace dpc

#endif  // DPC_CORE_REGISTRY_H_
