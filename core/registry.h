// Name-based algorithm factory for CLIs and config-driven pipelines.
// Names mirror the paper's algorithm menu; every entry is implemented.
// Adding an algorithm means adding one table slot here (and a registry
// test run picks it up automatically).
#ifndef DPC_CORE_REGISTRY_H_
#define DPC_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/cfsfdp_a.h"
#include "baselines/lsh_ddp.h"
#include "baselines/scan_dpc.h"
#include "core/approx_dpc.h"
#include "core/dpc.h"
#include "core/ex_dpc.h"
#include "core/s_approx_dpc.h"
#include "core/status.h"

namespace dpc {

namespace internal {

struct AlgorithmEntry {
  const char* name;
  std::unique_ptr<DpcAlgorithm> (*factory)();
};

/// Single source of truth: landing an algorithm means adding one slot
/// here.
inline const std::vector<AlgorithmEntry>& AlgorithmTable() {
  static const std::vector<AlgorithmEntry> kTable = {
      {"ex-dpc", [] { return std::unique_ptr<DpcAlgorithm>(std::make_unique<ExDpc>()); }},
      {"approx-dpc",
       [] { return std::unique_ptr<DpcAlgorithm>(std::make_unique<ApproxDpc>()); }},
      {"s-approx-dpc",
       [] { return std::unique_ptr<DpcAlgorithm>(std::make_unique<SApproxDpc>()); }},
      {"scan", [] { return std::unique_ptr<DpcAlgorithm>(std::make_unique<ScanDpc>()); }},
      {"rtree-scan",
       [] { return std::unique_ptr<DpcAlgorithm>(std::make_unique<RtreeScanDpc>()); }},
      {"lsh-ddp",
       [] { return std::unique_ptr<DpcAlgorithm>(std::make_unique<LshDdp>()); }},
      {"cfsfdp-a",
       [] { return std::unique_ptr<DpcAlgorithm>(std::make_unique<CfsfdpA>()); }},
  };
  return kTable;
}

}  // namespace internal

/// Names accepted by MakeAlgorithmByName, the paper's algorithms first.
inline std::vector<std::string> RegisteredAlgorithmNames() {
  std::vector<std::string> names;
  for (const auto& entry : internal::AlgorithmTable()) names.emplace_back(entry.name);
  return names;
}

inline StatusOr<std::unique_ptr<DpcAlgorithm>> MakeAlgorithmByName(
    const std::string& name) {
  for (const auto& entry : internal::AlgorithmTable()) {
    if (name == entry.name) return entry.factory();
  }
  std::string menu;
  for (const auto& entry : internal::AlgorithmTable()) {
    if (!menu.empty()) menu += ", ";
    menu += entry.name;
  }
  return Status::NotFound("unknown algorithm '" + name + "'; expected one of: " +
                          menu);
}

}  // namespace dpc

#endif  // DPC_CORE_REGISTRY_H_
