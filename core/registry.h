// Name-based algorithm factory for CLIs and config-driven pipelines.
// Names mirror the paper's algorithm menu; entries whose implementation
// lands in a later PR (the scan/LSH baselines, S-Approx-DPC) are
// registered but report UNIMPLEMENTED so callers get a precise error
// instead of a typo-shaped NOT_FOUND.
#ifndef DPC_CORE_REGISTRY_H_
#define DPC_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/approx_dpc.h"
#include "core/dpc.h"
#include "core/ex_dpc.h"
#include "core/status.h"

namespace dpc {

namespace internal {

struct AlgorithmEntry {
  const char* name;
  std::unique_ptr<DpcAlgorithm> (*factory)();  ///< nullptr = planned
};

/// Single source of truth: implemented entries carry a factory, planned
/// ones a nullptr. Landing an algorithm means filling in one slot here.
inline const std::vector<AlgorithmEntry>& AlgorithmTable() {
  static const std::vector<AlgorithmEntry> kTable = {
      {"ex-dpc", [] { return std::unique_ptr<DpcAlgorithm>(std::make_unique<ExDpc>()); }},
      {"approx-dpc",
       [] { return std::unique_ptr<DpcAlgorithm>(std::make_unique<ApproxDpc>()); }},
      {"scan", nullptr},
      {"rtree-scan", nullptr},
      {"lsh-ddp", nullptr},
      {"cfsfdp-a", nullptr},
      {"s-approx-dpc", nullptr},
  };
  return kTable;
}

}  // namespace internal

/// Names accepted by MakeAlgorithmByName, implemented ones first.
inline std::vector<std::string> RegisteredAlgorithmNames() {
  std::vector<std::string> names;
  for (const auto& entry : internal::AlgorithmTable()) names.emplace_back(entry.name);
  return names;
}

inline StatusOr<std::unique_ptr<DpcAlgorithm>> MakeAlgorithmByName(
    const std::string& name) {
  for (const auto& entry : internal::AlgorithmTable()) {
    if (name != entry.name) continue;
    if (entry.factory == nullptr) {
      return Status::Unimplemented(
          "algorithm '" + name +
          "' is planned but not built yet (tracked for the baselines/"
          "S-Approx-DPC PRs; build with -DDPC_BUILD_BENCH=ON once it lands)");
    }
    return entry.factory();
  }
  std::string menu;
  for (const auto& entry : internal::AlgorithmTable()) {
    if (!menu.empty()) menu += ", ";
    menu += entry.name;
  }
  return Status::NotFound("unknown algorithm '" + name + "'; expected one of: " +
                          menu);
}

}  // namespace dpc

#endif  // DPC_CORE_REGISTRY_H_
