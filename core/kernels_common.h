// Types shared by every implementation of the batched distance kernels:
// the public header (core/kernels.h), the runtime-dispatch table
// (core/kernels_dispatch.h), and the per-tier translation units that
// include core/kernels_tier_impl.inc. Lives in its own header so the
// dispatch layer can name MinResult without pulling in the kernel
// bodies (and vice versa).
#ifndef DPC_CORE_KERNELS_COMMON_H_
#define DPC_CORE_KERNELS_COMMON_H_

#include <limits>

#include "core/dpc.h"

#if defined(__GNUC__) || defined(__clang__)
#define DPC_KERNELS_RESTRICT __restrict__
#else
#define DPC_KERNELS_RESTRICT
#endif

namespace dpc::kernels {

/// Result of MinDistanceBatch: the SoA position of the closest point and
/// its squared distance. Ties resolve to the LOWEST position (identical
/// to an ascending scalar scan with a strict '<' update).
struct MinResult {
  PointId pos = -1;
  double d_sq = std::numeric_limits<double>::infinity();
};

}  // namespace dpc::kernels

#endif  // DPC_CORE_KERNELS_COMMON_H_
