// The avx2 dispatch tier: the same column kernels auto-vectorized at
// 256-bit width (4 doubles per lane-set). This TU is compiled with
// -mavx2 -mfma -ffp-contract=off (per-file flags, root CMakeLists):
// the wide registers come from vectorizing ACROSS points, and contract
// =off keeps the compiler from fusing the accumulate path's mul+add
// into FMA (one rounding instead of two), which would break the
// bit-identity contract against the scalar reference.
//
// Nothing outside the tier TUs may be compiled with wide-arch flags;
// these functions are only reachable through the dispatch table after
// core/cpu_features.h proved the host executes AVX2 (CPUID + XGETBV).
#include <algorithm>
#include <limits>

#include "core/kernels_dispatch.h"

#define DPC_TIER_NS avx2
#define DPC_TIER_LINKAGE
#define DPC_TIER_DEFINE_TABLE 1
#include "core/kernels_tier_impl.inc"
#undef DPC_TIER_DEFINE_TABLE
#undef DPC_TIER_LINKAGE
#undef DPC_TIER_NS
