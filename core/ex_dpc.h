// Ex-DPC: the paper's exact kd-tree algorithm (§3).
//
//   rho   — exact range count on the kd-tree (self excluded).
//   delta — exact nearest-denser-neighbor search: a kd-tree NN query that
//           only accepts candidates ranking denser under DenserThan().
//           The globally densest point gets delta = +inf.
//   label — center selection by (rho_min, delta_min), then propagation
//           along dependency chains in density order.
//
// Both per-point phases are embarrassingly parallel over the immutable
// tree; num_threads workers split the id range statically.
#ifndef DPC_CORE_EX_DPC_H_
#define DPC_CORE_EX_DPC_H_

#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/parallel_for.h"
#include "index/kdtree.h"

namespace dpc {

class ExDpc : public DpcAlgorithm {
 public:
  std::string_view name() const override { return "Ex-DPC"; }

  DpcResult Run(const PointSet& points, const DpcParams& params) override {
    DpcResult result;
    const PointId n = points.size();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    KdTree tree;
    tree.Build(points);
    result.stats.build_seconds = phase.Lap();
    result.stats.index_memory_bytes = tree.MemoryBytes();

    // rho: range count minus the point itself.
    internal::ParallelFor(n, params.num_threads, [&](PointId begin, PointId end) {
      for (PointId i = begin; i < end; ++i) {
        result.rho[static_cast<size_t>(i)] = static_cast<double>(
            tree.RangeCount(points[i], params.d_cut) - 1);
      }
    });
    result.stats.rho_seconds = phase.Lap();

    // delta: exact nearest denser neighbor.
    ComputeExactDeltas(points, tree, result.rho, params.num_threads,
                       &result.delta, &result.dependency);
    result.stats.delta_seconds = phase.Lap();

    FinalizeClusters(params, &result);
    result.stats.label_seconds = phase.Lap();
    result.stats.total_seconds = total.Seconds();
    return result;
  }

  /// Exact delta/dependency for every point (used by Approx-DPC for cell
  /// peaks as well; pass `only` to restrict the computation to a subset).
  static void ComputeExactDeltas(const PointSet& points, const KdTree& tree,
                                 const std::vector<double>& rho, int num_threads,
                                 std::vector<double>* delta,
                                 std::vector<PointId>* dependency,
                                 const std::vector<PointId>* only = nullptr) {
    const PointId count =
        only != nullptr ? static_cast<PointId>(only->size()) : points.size();
    internal::ParallelFor(count, num_threads, [&](PointId begin, PointId end) {
      for (PointId k = begin; k < end; ++k) {
        const PointId i = only != nullptr ? (*only)[static_cast<size_t>(k)] : k;
        const double rho_i = rho[static_cast<size_t>(i)];
        double dist = std::numeric_limits<double>::infinity();
        const PointId nn = tree.NearestAccepted(
            points[i],
            [&rho, rho_i, i](PointId j) {
              return DenserThan(rho[static_cast<size_t>(j)], j, rho_i, i);
            },
            &dist);
        (*delta)[static_cast<size_t>(i)] = dist;
        (*dependency)[static_cast<size_t>(i)] = nn;
      }
    });
  }
};

}  // namespace dpc

#endif  // DPC_CORE_EX_DPC_H_
