// Ex-DPC: the paper's exact kd-tree algorithm (§3).
//
//   rho   — exact range count on the kd-tree (self excluded).
//   delta — exact nearest-denser-neighbor search: a kd-tree NN query that
//           only accepts candidates ranking denser under DenserThan().
//           The globally densest point gets delta = +inf.
//
// Labeling is NOT part of the algorithm: SolveImpl produces the
// DpcSolution and any ThresholdSpec is applied downstream
// (FinalizeSolution / the Run shim).
//
// Both per-point phases are embarrassingly parallel over the immutable
// tree. Under the default cost-guided strategy they iterate grid cells
// partitioned by the §4.5 LPT scheduler (cost = |P(c)|); static/dynamic
// strategies split the plain id range instead. Either way each point's
// slot is written exactly once, so results are strategy- and
// thread-count independent.
#ifndef DPC_CORE_EX_DPC_H_
#define DPC_CORE_EX_DPC_H_

#include <cmath>
#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/options.h"
#include "core/sharded_dpc.h"
#include "index/grid.h"
#include "index/kdtree.h"
#include "parallel/parallel_for.h"

namespace dpc {

struct ExDpcOptions {
  /// Loop scheduling override; unset inherits the ExecutionContext's
  /// strategy (default cost-guided, §4.5).
  std::optional<ScheduleStrategy> scheduler;
  /// `sharding=region` solves grid-region shards concurrently and merges
  /// across halo boundaries (core/sharded_dpc.h) — bit-identical labels,
  /// so the solution cache treats it as the same configuration.
  ShardingOptions sharding;

  static StatusOr<ExDpcOptions> FromOptions(const OptionsMap& map) {
    ExDpcOptions options;
    OptionsReader reader(map);
    reader.Strategy("scheduler", &options.scheduler);
    if (Status s = options.sharding.Consume(reader); !s.ok()) return s;
    if (Status s = reader.status(); !s.ok()) return s;
    return options;
  }
};

class ExDpc : public DpcAlgorithm {
 public:
  ExDpc() = default;
  explicit ExDpc(ExDpcOptions options) : options_(options) {}

  std::string_view name() const override { return "Ex-DPC"; }

 protected:
  DpcSolution SolveImpl(const PointSet& points, const ComputeParams& compute,
                        const ExecutionContext& ctx) override {
    ExecutionContext exec =
        options_.scheduler ? ctx.WithStrategy(*options_.scheduler) : ctx;
    if (options_.sharding.enabled()) {
      return SolveExDpcSharded(points, compute, exec,
                               options_.sharding.Resolve(exec));
    }

    DpcSolution result;
    const PointId n = points.size();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    KdTree tree;
    tree.Build(points);

    // Cost-guided scheduling partitions whole grid cells by population
    // (§4.5). The grid is pure scheduling metadata — only built when a
    // parallel region will actually form (several threads, enough work),
    // and never charged to the index-memory stat (the paper's Ex-DPC
    // carries a kd-tree only).
    const bool cost_guided =
        exec.strategy() == ScheduleStrategy::kCostGuided &&
        exec.threads() > 1 && n >= internal::kMinParallelIterations;
    UniformGrid grid;
    std::vector<double> cell_costs;
    if (cost_guided) {
      grid.Build(points,
                 compute.d_cut / std::sqrt(static_cast<double>(points.dim())));
      cell_costs = grid.CellCosts();
    }
    result.stats.build_seconds = phase.Lap();
    result.stats.index_memory_bytes = tree.MemoryBytes();

    // rho: range count minus the point itself.
    auto rho_for = [&](PointId i) {
      result.rho[static_cast<size_t>(i)] =
          static_cast<double>(tree.RangeCount(points[i], compute.d_cut) - 1);
    };
    if (cost_guided) {
      ParallelForWithCosts(exec, cell_costs, [&](int64_t cell) {
        for (const PointId i : grid.members(cell)) rho_for(i);
      });
    } else {
      ParallelFor(exec, n, [&](PointId begin, PointId end) {
        for (PointId i = begin; i < end; ++i) rho_for(i);
      });
    }
    result.stats.rho_seconds = phase.Lap();
    if (internal::Interrupted(exec, &result)) {
      result.stats.total_seconds = total.Seconds();
      return result;
    }

    // delta: exact nearest denser neighbor.
    if (cost_guided) {
      ParallelForWithCosts(exec, cell_costs, [&](int64_t cell) {
        for (const PointId i : grid.members(cell)) {
          ExactDeltaFor(points, tree, result.rho, i, &result.delta,
                        &result.dependency);
        }
      });
    } else {
      ComputeExactDeltas(points, tree, result.rho, exec, &result.delta,
                         &result.dependency);
    }
    result.stats.delta_seconds = phase.Lap();
    internal::Interrupted(exec, &result);
    result.stats.total_seconds = total.Seconds();
    return result;
  }

 public:
  /// Exact delta/dependency for one point: the nearest neighbor ranking
  /// denser under DenserThan.
  static void ExactDeltaFor(const PointSet& points, const KdTree& tree,
                            const std::vector<double>& rho, PointId i,
                            std::vector<double>* delta,
                            std::vector<PointId>* dependency) {
    const double rho_i = rho[static_cast<size_t>(i)];
    double dist = std::numeric_limits<double>::infinity();
    const PointId nn = tree.NearestAccepted(
        points[i],
        [&rho, rho_i, i](PointId j) {
          return DenserThan(rho[static_cast<size_t>(j)], j, rho_i, i);
        },
        &dist);
    (*delta)[static_cast<size_t>(i)] = dist;
    (*dependency)[static_cast<size_t>(i)] = nn;
  }

  /// Exact delta/dependency for every point (LSH-DDP reuses this for its
  /// refinement round; pass `only` to restrict to a subset).
  static void ComputeExactDeltas(const PointSet& points, const KdTree& tree,
                                 const std::vector<double>& rho,
                                 const ExecutionContext& exec,
                                 std::vector<double>* delta,
                                 std::vector<PointId>* dependency,
                                 const std::vector<PointId>* only = nullptr) {
    const PointId count =
        only != nullptr ? static_cast<PointId>(only->size()) : points.size();
    ParallelFor(exec, count, [&](PointId begin, PointId end) {
      for (PointId k = begin; k < end; ++k) {
        const PointId i = only != nullptr ? (*only)[static_cast<size_t>(k)] : k;
        ExactDeltaFor(points, tree, rho, i, delta, dependency);
      }
    });
  }

 private:
  ExDpcOptions options_;
};

}  // namespace dpc

#endif  // DPC_CORE_EX_DPC_H_
