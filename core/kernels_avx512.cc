// The avx512 dispatch tier: the column kernels auto-vectorized at
// 512-bit width (8 doubles per register), compiled with
// -mavx512f -ffp-contract=off per-file flags. Same bit-identity rules
// as the avx2 tier (see core/kernels_avx2.cc and the contract comment
// in core/kernels_tier_impl.inc); reachable only through the dispatch
// table after CPUID/XGETBV proved AVX-512F + ZMM/opmask OS state.
//
// When the configuring toolchain cannot compile -mavx512f, CMake
// defines DPC_KERNELS_AVX512_UNAVAILABLE for the whole dispatch
// library: this TU then compiles the generic-codegen bodies (keeping
// the symbol and table link-valid) and kernels_dispatch.cc drops the
// tier from SupportedTierMask(), so the binary never claims a width it
// does not have.
#include <algorithm>
#include <limits>

#include "core/kernels_dispatch.h"

#define DPC_TIER_NS avx512
#define DPC_TIER_LINKAGE
#define DPC_TIER_DEFINE_TABLE 1
#include "core/kernels_tier_impl.inc"
#undef DPC_TIER_DEFINE_TABLE
#undef DPC_TIER_LINKAGE
#undef DPC_TIER_NS
