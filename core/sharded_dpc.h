// Region-sharded DPC execution: the data-parallel shard mode behind
// `opt sharding=region` (Ex-DPC, Approx-DPC) and the unit of work the
// serve/ layer's concurrent scheduler dispatches onto pool shards.
//
// The grid the paper's approximations already build (§4) cuts space into
// cells; this header groups cells into spatially contiguous SHARDS,
// gives each shard a private kd-tree over its owned points plus a HALO
// (a superset of every point within d_cut of the shard's region), solves
// the per-point phases shard by shard, and merges the cross-shard
// dependent-distance chains so the merged DpcSolution is BIT-IDENTICAL
// to the unsharded solve:
//
//   * rho is an integer range count, and the halo contains every point
//     any owned d_cut-ball can reach, so shard-local counts equal the
//     global counts exactly (extra halo points sit outside every ball
//     and change nothing).
//   * Ex-DPC's delta takes the shard-local nearest denser neighbor as a
//     CANDIDATE, widens its squared distance by one ulp, and re-runs the
//     search on the global tree seeded with that bound. The kd-tree's
//     strict `<` update, `>=` prune, and bound-independent child order
//     make a bound-seeded search return the identical winner (distance
//     ties included) as the unbounded one, so chains that cross a shard
//     boundary resolve exactly; interior points cost one mostly
//     root-pruned probe. Everything stays in the squared domain
//     (KdTree::NearestAcceptedSq) because a sqrt round-trip could drop
//     the bound back below the candidate and break the strict update.
//   * Approx-DPC never splits a cell across shards, so peak election and
//     the non-peak snap are shard-local by construction; the peaks then
//     flow into the usual density-ordered subset search with bit-equal
//     inputs (approx_dpc.h owns that merge).
//
// Shard costs reuse the §4.5 population model (cost = sum |P(c)|), so
// ParallelForWithCosts LPT-balances shards exactly like it balances
// cells, and a serving layer can size pool shards from the same numbers.
#ifndef DPC_CORE_SHARDED_DPC_H_
#define DPC_CORE_SHARDED_DPC_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "core/dpc.h"
#include "core/options.h"
#include "index/grid.h"
#include "index/kdtree.h"
#include "parallel/parallel_for.h"

namespace dpc {

/// The `sharding=` / `shards=` knobs shared by Ex-DPC and Approx-DPC.
/// Sharding is an execution detail: it never changes a solution, so the
/// solution cache strips both keys from its canonical configuration.
struct ShardingOptions {
  std::string mode = "none";  ///< "none" | "region"
  int shards = 0;             ///< 0 = one shard per context thread

  bool enabled() const { return mode == "region"; }
  int Resolve(const ExecutionContext& exec) const {
    return shards > 0 ? shards : exec.threads();
  }

  /// Consumes the shared knobs off a reader; call before reader.status().
  Status Consume(OptionsReader& reader) {
    reader.String("sharding", &mode).Int("shards", &shards);
    if (mode != "none" && mode != "region") {
      return Status::InvalidArgument("option 'sharding': expected none|region, got '" +
                                     mode + "'");
    }
    if (shards < 0) {
      return Status::InvalidArgument("option 'shards': must be >= 0");
    }
    return Status::Ok();
  }
};

/// One shard: a spatially contiguous run of whole grid cells.
struct RegionShard {
  std::vector<CellId> cells;     ///< owned cells (whole cells, never split)
  std::vector<PointId> owned;    ///< ids of owned points, ascending
  std::vector<PointId> halo;     ///< ids within reach but not owned, ascending
};

struct RegionShardPlan {
  std::vector<RegionShard> shards;
  std::vector<double> costs;  ///< |owned| per shard — the §4.5 cost model
};

/// Cuts the grid's cells into `num_shards` spatially contiguous runs
/// (lexicographic integer cell coordinates, cumulative-population-
/// balanced cuts) and attaches each shard's halo. A shard count above
/// the cell count leaves trailing shards empty — the solvers handle
/// empty shards, so any count is valid. Deterministic for a fixed grid.
inline RegionShardPlan BuildRegionShardPlan(const UniformGrid& grid,
                                            double d_cut, int num_shards) {
  RegionShardPlan plan;
  const CellId num_cells = grid.num_cells();
  const int s = std::max(1, num_shards);
  plan.shards.assign(static_cast<size_t>(s), RegionShard{});
  plan.costs.assign(static_cast<size_t>(s), 0.0);
  if (num_cells == 0) return plan;
  const std::vector<UniformGrid::Cell>& cells = grid.cells();

  // First-touch cell order is point-id order — spatially meaningless.
  // Lexicographic integer coordinates give contiguous runs, which keeps
  // halos thin (a random cell assignment would make every halo ~global).
  std::vector<CellId> order(static_cast<size_t>(num_cells));
  for (CellId c = 0; c < num_cells; ++c) order[static_cast<size_t>(c)] = c;
  std::sort(order.begin(), order.end(), [&cells](CellId a, CellId b) {
    return cells[static_cast<size_t>(a)].coords <
           cells[static_cast<size_t>(b)].coords;
  });

  // Contiguous cuts balanced by cumulative population. A giant cell can
  // overshoot several targets; the while then skips shards, leaving them
  // empty (covered by shard_test).
  int64_t total = 0;
  for (const auto& cell : cells) {
    total += static_cast<int64_t>(cell.members.size());
  }
  int64_t cum = 0;
  int k = 0;
  for (const CellId c : order) {
    RegionShard& shard = plan.shards[static_cast<size_t>(k)];
    const std::vector<PointId>& members = cells[static_cast<size_t>(c)].members;
    shard.cells.push_back(c);
    shard.owned.insert(shard.owned.end(), members.begin(), members.end());
    cum += static_cast<int64_t>(members.size());
    while (k + 1 < s && cum * s >= total * (k + 1)) ++k;
  }

  // Halo: members of every cell whose lattice-gap lower bound to the
  // shard's owned region is within d_cut. Two points in cells with
  // integer gap g along an axis are at least (g - 1) * side apart there,
  // so the bound under-estimates true distance by at least one full cell
  // of slack per axis; the epsilon inflation only guards rounding of the
  // multiplies. Over-inclusion is free (a superset halo changes no
  // count), under-inclusion would corrupt rho — always round toward
  // inclusion.
  const int dim = static_cast<int>(cells.front().coords.size());
  const double side = grid.cell_side();
  const double reach_sq = d_cut * d_cut * (1.0 + 1e-9);
  std::vector<char> owned_cell(static_cast<size_t>(num_cells), 0);
  for (int si = 0; si < s; ++si) {
    RegionShard& shard = plan.shards[static_cast<size_t>(si)];
    std::sort(shard.owned.begin(), shard.owned.end());
    plan.costs[static_cast<size_t>(si)] =
        static_cast<double>(shard.owned.size());
    if (shard.cells.empty()) continue;
    std::fill(owned_cell.begin(), owned_cell.end(), 0);
    std::vector<int64_t> lo(static_cast<size_t>(dim),
                            std::numeric_limits<int64_t>::max());
    std::vector<int64_t> hi(static_cast<size_t>(dim),
                            std::numeric_limits<int64_t>::min());
    for (const CellId c : shard.cells) {
      owned_cell[static_cast<size_t>(c)] = 1;
      const UniformGrid::CellCoords& cc = cells[static_cast<size_t>(c)].coords;
      for (int d = 0; d < dim; ++d) {
        lo[static_cast<size_t>(d)] =
            std::min(lo[static_cast<size_t>(d)], cc[static_cast<size_t>(d)]);
        hi[static_cast<size_t>(d)] =
            std::max(hi[static_cast<size_t>(d)], cc[static_cast<size_t>(d)]);
      }
    }
    for (CellId b = 0; b < num_cells; ++b) {
      if (owned_cell[static_cast<size_t>(b)]) continue;
      const UniformGrid::CellCoords& bc = cells[static_cast<size_t>(b)].coords;
      // Cheap prefilter against the owned bounding box (a lower bound on
      // the per-cell test below, so skipping here is safe).
      double box_sq = 0.0;
      for (int d = 0; d < dim; ++d) {
        int64_t gap = 0;
        const int64_t v = bc[static_cast<size_t>(d)];
        if (v < lo[static_cast<size_t>(d)]) {
          gap = lo[static_cast<size_t>(d)] - v - 1;
        } else if (v > hi[static_cast<size_t>(d)]) {
          gap = v - hi[static_cast<size_t>(d)] - 1;
        }
        if (gap > 0) {
          const double g = static_cast<double>(gap) * side;
          box_sq += g * g;
        }
      }
      if (box_sq > reach_sq) continue;
      bool within = false;
      for (const CellId a : shard.cells) {
        const UniformGrid::CellCoords& ac =
            cells[static_cast<size_t>(a)].coords;
        double lb_sq = 0.0;
        for (int d = 0; d < dim; ++d) {
          int64_t diff = ac[static_cast<size_t>(d)] - bc[static_cast<size_t>(d)];
          if (diff < 0) diff = -diff;
          if (diff > 1) {
            const double g = static_cast<double>(diff - 1) * side;
            lb_sq += g * g;
          }
        }
        if (lb_sq <= reach_sq) {
          within = true;
          break;
        }
      }
      if (within) {
        const std::vector<PointId>& bm = cells[static_cast<size_t>(b)].members;
        shard.halo.insert(shard.halo.end(), bm.begin(), bm.end());
      }
    }
    std::sort(shard.halo.begin(), shard.halo.end());
  }
  return plan;
}

namespace internal {

/// A shard's private index: owned ∪ halo copied into a local PointSet
/// (ascending global id) with a kd-tree over it. Coordinates are copied
/// verbatim, so every kernel distance matches the global tree's bit for
/// bit.
struct ShardIndex {
  explicit ShardIndex(int dim) : local(dim) {}
  PointSet local;
  std::vector<PointId> ids;  ///< local row -> global id
  KdTree tree;
};

inline void BuildShardIndex(const PointSet& points, const RegionShard& shard,
                            ShardIndex* out) {
  out->ids.clear();
  out->ids.reserve(shard.owned.size() + shard.halo.size());
  std::merge(shard.owned.begin(), shard.owned.end(), shard.halo.begin(),
             shard.halo.end(), std::back_inserter(out->ids));
  out->local.Reserve(static_cast<PointId>(out->ids.size()));
  for (const PointId g : out->ids) out->local.Add(points[g]);
  out->tree.Build(out->local);
}

}  // namespace internal

/// Builds every shard's local index, LPT-balanced by local size.
inline std::vector<internal::ShardIndex> BuildShardIndexes(
    const PointSet& points, const RegionShardPlan& plan,
    const ExecutionContext& exec) {
  std::vector<internal::ShardIndex> indexes;
  indexes.reserve(plan.shards.size());
  std::vector<double> costs;
  costs.reserve(plan.shards.size());
  for (const RegionShard& shard : plan.shards) {
    indexes.emplace_back(points.dim());
    costs.push_back(static_cast<double>(shard.owned.size() + shard.halo.size()));
  }
  ParallelForWithCosts(exec, costs, [&](int64_t si) {
    // Per-shard span from the worker thread that builds it (a no-op
    // without a trace); the context carries the request's parent id, so
    // cross-thread nesting needs no extra plumbing.
    obs::ScopedSpan span = exec.Span("shard/index-build");
    internal::BuildShardIndex(points, plan.shards[static_cast<size_t>(si)],
                              &indexes[static_cast<size_t>(si)]);
  });
  return indexes;
}

/// rho for every point from its shard's local tree. Bit-identical to the
/// global count: the halo makes every owned ball complete, counts are
/// integers, and per-pair kernel distances don't depend on which tree
/// evaluates them.
inline void ShardedRho(const PointSet& points, double d_cut,
                       const ExecutionContext& exec,
                       const RegionShardPlan& plan,
                       const std::vector<internal::ShardIndex>& indexes,
                       std::vector<double>* rho) {
  ParallelForWithCosts(exec, plan.costs, [&](int64_t si) {
    obs::ScopedSpan span = exec.Span("shard/rho");
    const RegionShard& shard = plan.shards[static_cast<size_t>(si)];
    const internal::ShardIndex& idx = indexes[static_cast<size_t>(si)];
    for (const PointId i : shard.owned) {
      (*rho)[static_cast<size_t>(i)] =
          static_cast<double>(idx.tree.RangeCount(points[i], d_cut) - 1);
    }
  });
}

/// Approx-DPC's peak election + non-peak snap, shard by shard. Cells are
/// never split across shards, so both are shard-local; `peaks` comes
/// back indexed by CellId — the exact vector the unsharded loop builds.
inline void ShardedPeaksAndSnap(const PointSet& points, const UniformGrid& grid,
                                const ExecutionContext& exec,
                                const RegionShardPlan& plan,
                                const std::vector<double>& rho,
                                std::vector<double>* delta,
                                std::vector<PointId>* dependency,
                                std::vector<PointId>* peaks) {
  const int dim = points.dim();
  peaks->assign(static_cast<size_t>(grid.num_cells()), PointId{-1});
  ParallelForWithCosts(exec, plan.costs, [&](int64_t si) {
    obs::ScopedSpan span = exec.Span("shard/peaks-snap");
    for (const CellId c : plan.shards[static_cast<size_t>(si)].cells) {
      const std::vector<PointId>& members = grid.members(c);
      PointId peak = members.front();
      for (const PointId i : members) {
        if (DenserThan(rho[static_cast<size_t>(i)], i,
                       rho[static_cast<size_t>(peak)], peak)) {
          peak = i;
        }
      }
      (*peaks)[static_cast<size_t>(c)] = peak;
      for (const PointId i : members) {
        if (i == peak) continue;
        (*dependency)[static_cast<size_t>(i)] = peak;
        (*delta)[static_cast<size_t>(i)] = Distance(points[i], points[peak], dim);
      }
    }
  });
}

/// The full sharded Ex-DPC solve. Three phases with barriers between
/// them: shard index build, shard-local rho, then the delta merge —
/// shard-local candidate, one-ulp-widened bound, global re-search.
inline DpcSolution SolveExDpcSharded(const PointSet& points,
                                     const ComputeParams& compute,
                                     const ExecutionContext& exec,
                                     int num_shards) {
  DpcSolution result;
  const PointId n = points.size();
  const int dim = points.dim();
  result.rho.assign(static_cast<size_t>(n), 0.0);
  result.delta.assign(static_cast<size_t>(n),
                      std::numeric_limits<double>::infinity());
  result.dependency.assign(static_cast<size_t>(n), PointId{-1});
  if (n == 0) return result;

  internal::WallTimer total;
  internal::WallTimer phase;
  KdTree tree;
  tree.Build(points);
  const UniformGrid grid(points,
                         compute.d_cut / std::sqrt(static_cast<double>(dim)));
  const RegionShardPlan plan =
      BuildRegionShardPlan(grid, compute.d_cut, num_shards);
  const std::vector<internal::ShardIndex> indexes =
      BuildShardIndexes(points, plan, exec);
  result.stats.build_seconds = phase.Lap();
  result.stats.index_memory_bytes = tree.MemoryBytes();

  ShardedRho(points, compute.d_cut, exec, plan, indexes, &result.rho);
  result.stats.rho_seconds = phase.Lap();
  if (internal::Interrupted(exec, &result)) {
    result.stats.total_seconds = total.Seconds();
    return result;
  }

  const double d_cut_sq = compute.d_cut * compute.d_cut;
  ParallelForWithCosts(exec, plan.costs, [&](int64_t si) {
    obs::ScopedSpan span = exec.Span("shard/delta");
    const RegionShard& shard = plan.shards[static_cast<size_t>(si)];
    const internal::ShardIndex& idx = indexes[static_cast<size_t>(si)];
    for (const PointId p : shard.owned) {
      const double rho_p = result.rho[static_cast<size_t>(p)];
      // Shard-local candidate: an upper bound on the true
      // nearest-denser distance (the true winner may sit past the halo).
      double cand_sq = std::numeric_limits<double>::infinity();
      const PointId cand = idx.tree.NearestAcceptedSq(
          points[p],
          [&](PointId lid) {
            const PointId g = idx.ids[static_cast<size_t>(lid)];
            return DenserThan(result.rho[static_cast<size_t>(g)], g, rho_p, p);
          },
          &cand_sq);
      // Halo-complete fast path: the halo contains EVERY point within
      // d_cut of an owned point (cells excluded from owned ∪ halo have a
      // lattice lower bound > d_cut² · (1 + 1e-9)), so when the local
      // candidate clears that margin — cand_sq <= d_cut² — every global
      // point that could beat OR tie it is already in the local tree.
      // The kd-tree's smallest-id tie-break depends only on the candidate
      // set (index/kdtree.h), and idx.ids is ascending, so the local
      // winner IS the global winner: skip the global re-search.
      if (cand >= 0 && cand_sq <= d_cut_sq) {
        result.delta[static_cast<size_t>(p)] = std::sqrt(cand_sq);
        result.dependency[static_cast<size_t>(p)] =
            idx.ids[static_cast<size_t>(cand)];
        continue;
      }
      // Global re-search seeded one ulp past the candidate: returns the
      // identical winner the unbounded search would (see header note),
      // at ~zero cost when the candidate already is the answer.
      const double bound =
          cand >= 0
              ? std::nextafter(cand_sq, std::numeric_limits<double>::infinity())
              : std::numeric_limits<double>::infinity();
      double d_sq = std::numeric_limits<double>::infinity();
      const PointId nn = tree.NearestAcceptedSq(
          points[p],
          [&](PointId j) {
            return DenserThan(result.rho[static_cast<size_t>(j)], j, rho_p, p);
          },
          &d_sq, bound);
      if (nn >= 0) {
        result.delta[static_cast<size_t>(p)] = std::sqrt(d_sq);
        result.dependency[static_cast<size_t>(p)] = nn;
      }
      // else: the globally densest point keeps delta = +inf, dep = -1.
    }
  });
  result.stats.delta_seconds = phase.Lap();
  internal::Interrupted(exec, &result);
  result.stats.total_seconds = total.Seconds();
  return result;
}

}  // namespace dpc

#endif  // DPC_CORE_SHARDED_DPC_H_
