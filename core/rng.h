// Deterministic, platform-independent RNG (splitmix64 seeding a
// xoshiro256** core, Box-Muller Gaussians). std::normal_distribution is
// implementation-defined, which would make "same seed, same dataset"
// depend on the standard library — all generators and samplers use this
// instead so results are bit-identical across gcc/clang and OSes.
#ifndef DPC_CORE_RNG_H_
#define DPC_CORE_RNG_H_

#include <cmath>
#include <cstdint>

namespace dpc {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 to spread low-entropy seeds over the full state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : NextU64() % n; }

  /// Alias for NextBelow, matching the name the bench/ layer uses.
  uint64_t NextBounded(uint64_t n) { return NextBelow(n); }

  /// Standard normal via Box-Muller (one value per call; cache the pair).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    while (u1 <= 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// One splitmix64-mixed uniform double in [0, 1) from (seed, index) — a
/// stateless per-point coin for deterministic subsampling (S-Approx-DPC
/// cell sampling, CFSFDP-A's density sample). Thresholding it yields
/// nested samples: the set kept at a lower rate is a subset of any
/// higher rate's, independent of thread count and iteration order.
inline double HashToUnit(uint64_t seed, uint64_t index) {
  uint64_t z = seed ^ (index + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace dpc

#endif  // DPC_CORE_RNG_H_
