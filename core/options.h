// key=value options plumbing for the per-algorithm options structs
// (ApproxDpcOptions, LshDdpOptions, ...). One OptionsMap flows from
// `dpc_cli --opt k=v` (or any config source) through
// MakeAlgorithmByName(name, options) into the concrete struct's
// FromOptions(), which consumes recognized keys through an OptionsReader;
// unrecognized keys and malformed values fail with InvalidArgument so
// ablation scripts cannot silently misspell a knob.
#ifndef DPC_CORE_OPTIONS_H_
#define DPC_CORE_OPTIONS_H_

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/status.h"
#include "parallel/execution_context.h"

namespace dpc {

using OptionsMap = std::map<std::string, std::string>;

/// Parses "key=value" strings (the CLI's --opt grammar). A missing '=' or
/// empty key is an error; a later duplicate overwrites an earlier one.
inline StatusOr<OptionsMap> ParseOptionList(
    const std::vector<std::string>& items) {
  OptionsMap map;
  for (const std::string& item : items) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("option '" + item +
                                     "' is not of the form key=value");
    }
    map[item.substr(0, eq)] = item.substr(eq + 1);
  }
  return map;
}

/// Normalizes one option value to its canonical spelling: exact integers
/// re-render through int64 (so "08" becomes "8" without the double
/// rounding that would merge distinct values above 2^53 — OptionsReader
/// parses integer options exactly, so the canonical form must too),
/// other finite numbers through %.17g (so "0.50", "5e-1", and ".5" all
/// become "0.5"), boolean words collapse to "1"/"0" (mirroring
/// OptionsReader::Bool's vocabulary), and anything else — enum values
/// like "lpt", paths, names — is preserved byte-for-byte.
inline std::string CanonicalOptionValue(const std::string& value) {
  if (value == "true" || value == "on" || value == "yes") return "1";
  if (value == "false" || value == "off" || value == "no") return "0";
  char* end = nullptr;
  errno = 0;
  const long long as_int = std::strtoll(value.c_str(), &end, 10);
  if (!value.empty() && end == value.c_str() + value.size() &&
      errno != ERANGE) {
    return std::to_string(as_int);
  }
  end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (!value.empty() && end == value.c_str() + value.size() &&
      errno != ERANGE && std::isfinite(parsed)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", parsed);
    return buf;
  }
  return value;
}

/// The map with every value canonicalized (keys are already sorted — the
/// OptionsMap is a std::map), so semantically identical `--opt` spellings
/// compare and hash equal. Used by the serving layer's result-cache key.
inline OptionsMap CanonicalizeOptions(const OptionsMap& map) {
  OptionsMap out;
  for (const auto& [key, value] : map) out[key] = CanonicalOptionValue(value);
  return out;
}

/// "k1=v1,k2=v2" over the canonicalized map — a stable, hashable rendering
/// of the whole option set (empty string for an empty map).
inline std::string CanonicalOptionsString(const OptionsMap& map) {
  std::string out;
  for (const auto& [key, value] : map) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += CanonicalOptionValue(value);
  }
  return out;
}

/// Typed, consume-tracking view over an OptionsMap. Each getter parses
/// its key when present (recording the first parse error) and marks it
/// recognized; status() then also rejects keys nothing asked about.
class OptionsReader {
 public:
  explicit OptionsReader(const OptionsMap& map) : map_(map) {}

  OptionsReader& Bool(const std::string& key, bool* out) {
    if (const std::string* v = Consume(key)) {
      if (*v == "1" || *v == "true" || *v == "on" || *v == "yes") {
        *out = true;
      } else if (*v == "0" || *v == "false" || *v == "off" || *v == "no") {
        *out = false;
      } else {
        Fail(key, *v, "a boolean (true/false/1/0/on/off/yes/no)");
      }
    }
    return *this;
  }

  OptionsReader& Int(const std::string& key, int* out) {
    int64_t wide = 0;
    if (ParseInt64(key, &wide)) {
      if (wide < std::numeric_limits<int>::min() ||
          wide > std::numeric_limits<int>::max()) {
        Fail(key, std::to_string(wide), "an integer in int range");
      } else {
        *out = static_cast<int>(wide);
      }
    }
    return *this;
  }

  OptionsReader& Int64(const std::string& key, int64_t* out) {
    ParseInt64(key, out);
    return *this;
  }

  /// Verbatim string value; the caller validates the vocabulary (and
  /// should Fail-style reject with the accepted menu in its message).
  OptionsReader& String(const std::string& key, std::string* out) {
    if (const std::string* v = Consume(key)) *out = *v;
    return *this;
  }

  OptionsReader& Double(const std::string& key, double* out) {
    if (const std::string* v = Consume(key)) {
      char* end = nullptr;
      errno = 0;
      const double parsed = std::strtod(v->c_str(), &end);
      // Overflow ("1e999" -> inf) must fail, not silently saturate.
      if (v->empty() || end != v->c_str() + v->size() || errno == ERANGE ||
          !std::isfinite(parsed)) {
        Fail(key, *v, "a finite number");
      } else {
        *out = parsed;
      }
    }
    return *this;
  }

  /// static | dynamic | lpt (aliases: cost, cost-guided) | inherit.
  /// "inherit" clears the override so the ExecutionContext decides.
  OptionsReader& Strategy(const std::string& key,
                          std::optional<ScheduleStrategy>* out) {
    if (const std::string* v = Consume(key)) {
      if (*v == "inherit") {
        out->reset();
      } else if (*v == "static") {
        *out = ScheduleStrategy::kStatic;
      } else if (*v == "dynamic") {
        *out = ScheduleStrategy::kDynamic;
      } else if (*v == "lpt" || *v == "cost" || *v == "cost-guided") {
        *out = ScheduleStrategy::kCostGuided;
      } else {
        Fail(key, *v, "one of static|dynamic|lpt|inherit");
      }
    }
    return *this;
  }

  /// The first value error, else the first unrecognized key, else OK.
  Status status() const {
    if (!error_.ok()) return error_;
    for (const auto& [key, value] : map_) {
      (void)value;
      if (recognized_.count(key) == 0) {
        std::string menu;
        for (const std::string& known : recognized_) {
          if (!menu.empty()) menu += ", ";
          menu += known;
        }
        return Status::InvalidArgument(
            "unknown option '" + key + "'" +
            (menu.empty() ? "" : "; recognized: " + menu));
      }
    }
    return Status::Ok();
  }

 private:
  const std::string* Consume(const std::string& key) {
    recognized_.insert(key);
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  bool ParseInt64(const std::string& key, int64_t* out) {
    if (const std::string* v = Consume(key)) {
      char* end = nullptr;
      errno = 0;
      const long long parsed = std::strtoll(v->c_str(), &end, 10);
      // Saturation to INT64_MIN/MAX on overflow must fail, not pass.
      if (v->empty() || end != v->c_str() + v->size() || errno == ERANGE) {
        Fail(key, *v, "an integer in int64 range");
        return false;
      }
      *out = static_cast<int64_t>(parsed);
      return true;
    }
    return false;
  }

  void Fail(const std::string& key, const std::string& value,
            const std::string& expected) {
    if (error_.ok()) {
      error_ = Status::InvalidArgument("option '" + key + "': expected " +
                                       expected + ", got '" + value + "'");
    }
  }

  const OptionsMap& map_;
  std::set<std::string> recognized_;
  Status error_;
};

}  // namespace dpc

#endif  // DPC_CORE_OPTIONS_H_
