// The generic dispatch tier: the column kernels at baseline target
// codegen (SSE2 on x86-64) — the portable floor every host can run and
// the tier DPC_FORCE_KERNEL_TIER=generic pins for fallback testing.
// Compiled with -ffp-contract=off like every tier TU (uniformity; the
// baseline ISA cannot contract anyway).
#include <algorithm>
#include <limits>

#include "core/kernels_dispatch.h"

#define DPC_TIER_NS generic
#define DPC_TIER_LINKAGE
#define DPC_TIER_DEFINE_TABLE 1
#include "core/kernels_tier_impl.inc"
#undef DPC_TIER_DEFINE_TABLE
#undef DPC_TIER_LINKAGE
#undef DPC_TIER_NS
