// S-Approx-DPC: the sampling-based variant of Approx-DPC (paper §5),
// with the epsilon knob trading dependent-phase work for label accuracy.
//
// The skeleton is Approx-DPC's grid (cells of side d_cut/sqrt(dim), cell
// diameter <= d_cut): rho is exact, non-peak points snap to their cell
// peak, and only cell peaks run a nearest-denser-neighbor search. The
// epsilon knob subsamples the CANDIDATE SET of that search: each cell
// contributes its peak unconditionally plus a
//     keep_rate = 1 / (1 + 4 * epsilon)
// fraction of its remaining members (stateless per-point hash, so samples
// are NESTED: a larger epsilon's candidates are a subset of a smaller
// epsilon's). Peaks then search a kd-tree over only the kept points, so
// the dependent phase shrinks roughly linearly in keep_rate.
//
// Accuracy properties, relative to Ex-DPC:
//   * epsilon -> 0 keeps every point, collapsing to Approx-DPC exactly;
//   * a peak's delta is computed over a SUBSET of points, hence is an
//     overestimate that exceeds the exact value by at most d_cut + the
//     distance to the nearest denser CELL PEAK (cell peaks are always
//     candidates);
//   * centers are never lost (delta only grows); a spurious center can
//     appear only when an exact peak delta falls within that margin below
//     delta_min — with the usual delta_min >> d_cut, centers match
//     Ex-DPC's exactly, and only dependency targets (label attachment of
//     non-center peaks) drift with epsilon.
#ifndef DPC_CORE_S_APPROX_DPC_H_
#define DPC_CORE_S_APPROX_DPC_H_

#include <cmath>
#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/kernels.h"
#include "core/options.h"
#include "core/rng.h"
#include "core/soa.h"
#include "index/grid.h"
#include "index/kdtree.h"
#include "parallel/parallel_for.h"

namespace dpc {

struct SApproxDpcOptions {
  /// Loop scheduling override; unset inherits the ExecutionContext's
  /// strategy (default cost-guided, §4.5).
  std::optional<ScheduleStrategy> scheduler;
  /// Seed of the nested per-point sampling coins; fixed by default so
  /// labels are reproducible run to run.
  int64_t sample_seed = 0x5a94d9c;

  static StatusOr<SApproxDpcOptions> FromOptions(const OptionsMap& map) {
    SApproxDpcOptions options;
    OptionsReader reader(map);
    reader.Strategy("scheduler", &options.scheduler);
    reader.Int64("sample_seed", &options.sample_seed);
    if (Status s = reader.status(); !s.ok()) return s;
    return options;
  }
};

class SApproxDpc : public DpcAlgorithm {
 public:
  SApproxDpc() = default;
  explicit SApproxDpc(SApproxDpcOptions options) : options_(options) {}

  std::string_view name() const override { return "S-Approx-DPC"; }

 protected:
  DpcSolution SolveImpl(const PointSet& points, const ComputeParams& compute,
                        const ExecutionContext& ctx) override {
    ExecutionContext exec =
        options_.scheduler ? ctx.WithStrategy(*options_.scheduler) : ctx;

    DpcSolution result;
    const PointId n = points.size();
    const int dim = points.dim();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    KdTree tree;
    tree.Build(points);
    const UniformGrid grid(points,
                           compute.d_cut / std::sqrt(static_cast<double>(dim)));
    const std::vector<double> cell_costs = grid.CellCosts();
    result.stats.build_seconds = phase.Lap();

    // rho: exact range count, cell by cell (LPT-partitioned by default).
    ParallelForWithCosts(exec, cell_costs, [&](int64_t cell) {
      for (const PointId i : grid.members(cell)) {
        result.rho[static_cast<size_t>(i)] = static_cast<double>(
            tree.RangeCount(points[i], compute.d_cut) - 1);
      }
    });
    result.stats.rho_seconds = phase.Lap();
    if (internal::Interrupted(exec, &result)) {
      result.stats.total_seconds = total.Seconds();
      return result;
    }

    // Cell peaks + snapping, exactly as Approx-DPC (including the
    // cell-ordered SoA fast path for the snap distances — see
    // core/approx_dpc.h; sqrt of a bit-identical square is bit-identical
    // to the scalar Distance).
    PointSetSoA cell_soa;
    UniformGrid::Ordering ordering;
    const bool reordered = kernels::SoaCellReorderEnabled() && n > 0;
    if (reordered) {
      ordering = grid.CellOrdering();
      cell_soa.Assign(points, ordering.order.data(), n, /*store_ids=*/false);
    }
    std::vector<double> snap_buf;
    std::vector<uint8_t> is_peak(static_cast<size_t>(n), 0);
    std::vector<PointId> peaks;
    peaks.reserve(static_cast<size_t>(grid.num_cells()));
    for (CellId c = 0; c < grid.num_cells(); ++c) {
      const std::vector<PointId>& members = grid.members(c);
      PointId peak = members.front();
      for (const PointId i : members) {
        if (DenserThan(result.rho[static_cast<size_t>(i)], i,
                       result.rho[static_cast<size_t>(peak)], peak)) {
          peak = i;
        }
      }
      is_peak[static_cast<size_t>(peak)] = 1;
      peaks.push_back(peak);
      if (reordered) {
        snap_buf.resize(members.size());
        kernels::SquaredDistanceBatch(
            cell_soa, ordering.cell_begin[static_cast<size_t>(c)],
            static_cast<PointId>(members.size()), points[peak],
            snap_buf.data());
        for (size_t k = 0; k < members.size(); ++k) {
          const PointId i = members[k];
          if (i == peak) continue;
          result.dependency[static_cast<size_t>(i)] = peak;
          result.delta[static_cast<size_t>(i)] = std::sqrt(snap_buf[k]);
        }
      } else {
        for (const PointId i : members) {
          if (i == peak) continue;
          result.dependency[static_cast<size_t>(i)] = peak;
          result.delta[static_cast<size_t>(i)] =
              Distance(points[i], points[peak], dim);
        }
      }
    }

    // Epsilon-driven cell subsampling: peaks always survive; non-peak
    // members survive at keep_rate via the nested per-point hash.
    const double keep_rate = 1.0 / (1.0 + 4.0 * compute.epsilon);
    const uint64_t seed = static_cast<uint64_t>(options_.sample_seed);
    PointSet candidates(dim);
    std::vector<PointId> candidate_ids;
    candidates.Reserve(static_cast<PointId>(static_cast<double>(n) * keep_rate) +
                       static_cast<PointId>(peaks.size()) + 16);
    for (PointId i = 0; i < n; ++i) {
      if (is_peak[static_cast<size_t>(i)] != 0 ||
          HashToUnit(seed, static_cast<uint64_t>(i)) < keep_rate) {
        candidates.Add(points[i]);
        candidate_ids.push_back(i);
      }
    }
    KdTree candidate_tree;
    candidate_tree.Build(candidates);
    result.stats.index_memory_bytes =
        tree.MemoryBytes() + grid.MemoryBytes() + candidate_tree.MemoryBytes() +
        candidates.raw().capacity() * sizeof(double) +
        candidate_ids.capacity() * sizeof(PointId);

    // Peaks: nearest denser neighbor among the sampled candidates.
    // ParallelForWithCosts dispatches on the strategy itself; under
    // cost-guided, peaks are LPT-partitioned with cost ~ rho (denser
    // peaks accept fewer candidates, so their searches tighten the
    // distance bound later and do more work).
    std::vector<double> peak_costs(peaks.size());
    for (size_t k = 0; k < peaks.size(); ++k) {
      peak_costs[k] = result.rho[static_cast<size_t>(peaks[k])] + 1.0;
    }
    ParallelForWithCosts(exec, peak_costs, [&](int64_t k) {
      const PointId p = peaks[static_cast<size_t>(k)];
      const double rho_p = result.rho[static_cast<size_t>(p)];
      double dist = std::numeric_limits<double>::infinity();
      const PointId nn = candidate_tree.NearestAccepted(
          points[p],
          [&](PointId cj) {
            const PointId j = candidate_ids[static_cast<size_t>(cj)];
            return DenserThan(result.rho[static_cast<size_t>(j)], j, rho_p, p);
          },
          &dist);
      result.delta[static_cast<size_t>(p)] = dist;
      result.dependency[static_cast<size_t>(p)] =
          nn >= 0 ? candidate_ids[static_cast<size_t>(nn)] : PointId{-1};
    });
    result.stats.delta_seconds = phase.Lap();
    internal::Interrupted(exec, &result);
    result.stats.total_seconds = total.Seconds();
    return result;
  }

 private:
  SApproxDpcOptions options_;
};

}  // namespace dpc

#endif  // DPC_CORE_S_APPROX_DPC_H_
