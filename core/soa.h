// Structure-of-arrays (dimension-major) hot-path view of a PointSet.
//
// PointSet stores points row-major (point-major), which is the right
// shape for building indexes and moving whole points around — but the
// wrong shape for the distance kernels every algorithm bottlenecks on:
// evaluating |batch| candidates against one query touches |batch| * dim
// scattered doubles. PointSetSoA transposes a (possibly permuted) set
// into dim contiguous columns, so the batched kernels in core/kernels.h
// stream each coordinate column with unit stride — the layout the
// auto-vectorizer (and the hardware prefetcher) wants.
//
// The view is a copy, not an alias: building one costs one O(n * dim)
// pass and n * dim doubles. Consumers therefore build it once per solve
// (kd-/R-trees build theirs in perm order at Build() so leaf ranges are
// contiguous; the grid algorithms build theirs in cell order so cell
// members are contiguous — see UniformGrid::CellOrdering).
//
// A view built with a permutation remembers it: position j in the view
// maps back to original id IdAt(j). Kernels return positions; callers
// translate to ids at the boundary.
#ifndef DPC_CORE_SOA_H_
#define DPC_CORE_SOA_H_

#include <cstdint>
#include <vector>

#include "core/dpc.h"

namespace dpc {

class PointSetSoA {
 public:
  PointSetSoA() = default;

  /// Identity-order view of the whole set.
  explicit PointSetSoA(const PointSet& points) { Assign(points); }

  void Assign(const PointSet& points) {
    Assign(points, nullptr, points.size(), /*store_ids=*/false);
  }

  /// Permuted view: position j holds points[order[j]]. When the caller
  /// already owns the permutation (kd-tree perm_, grid cell ordering),
  /// store_ids = false skips the redundant id copy and IdAt() must not
  /// be used.
  void Assign(const PointSet& points, const PointId* order, PointId count,
              bool store_ids = true) {
    dim_ = points.dim();
    n_ = count;
    data_.resize(static_cast<size_t>(dim_) * static_cast<size_t>(count));
    const double* raw = points.raw().data();
    const auto dim = static_cast<size_t>(dim_);
    for (int d = 0; d < dim_; ++d) {
      double* col = data_.data() + static_cast<size_t>(d) * static_cast<size_t>(count);
      if (order != nullptr) {
        for (PointId j = 0; j < count; ++j) {
          col[j] = raw[static_cast<size_t>(order[j]) * dim + static_cast<size_t>(d)];
        }
      } else {
        for (PointId j = 0; j < count; ++j) {
          col[j] = raw[static_cast<size_t>(j) * dim + static_cast<size_t>(d)];
        }
      }
    }
    if (order != nullptr && store_ids) {
      ids_.assign(order, order + count);
    } else {
      ids_.clear();
    }
  }

  int dim() const { return dim_; }
  PointId size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Coordinate column d: n() contiguous doubles.
  const double* Column(int d) const {
    return data_.data() + static_cast<size_t>(d) * static_cast<size_t>(n_);
  }

  /// Original id of the point at view position pos (identity when the
  /// view was built without a stored permutation).
  PointId IdAt(PointId pos) const {
    return ids_.empty() ? pos : ids_[static_cast<size_t>(pos)];
  }

  size_t MemoryBytes() const {
    return data_.capacity() * sizeof(double) + ids_.capacity() * sizeof(PointId);
  }

 private:
  int dim_ = 1;
  PointId n_ = 0;
  std::vector<double> data_;  ///< dim columns of n doubles each
  std::vector<PointId> ids_;  ///< position -> original id; empty = identity
};

}  // namespace dpc

#endif  // DPC_CORE_SOA_H_
