// Core vocabulary of the density-peaks clustering (DPC) library
// reproducing Amagata & Hara, "Fast Density-Peaks Clustering:
// Multicore-based Parallelization Approach" (SIGMOD'21).
//
// DPC assigns each point p
//   rho(p)   — local density: |{q != p : dist(p, q) <= d_cut}|
//   delta(p) — dependent distance: distance to the nearest point denser
//              than p (+inf for the globally densest point)
// Centers are the points with rho >= rho_min and delta >= delta_min;
// every other non-noise point joins the cluster of its dependent point
// (its nearest denser neighbor). Points with rho < rho_min are noise.
//
// Ties in rho are broken by point id (smaller id counts as denser), which
// makes every phase — and therefore every label — deterministic for a
// fixed input, independent of thread count.
#ifndef DPC_CORE_DPC_H_
#define DPC_CORE_DPC_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string_view>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "parallel/execution_context.h"

namespace dpc {

using PointId = int64_t;

/// Label values with special meaning in DpcResult::label.
inline constexpr int64_t kNoise = -1;
inline constexpr int64_t kUnassigned = -2;

/// A dense row-major set of dim-dimensional points.
class PointSet {
 public:
  explicit PointSet(int dim) : dim_(dim > 0 ? dim : 1) {}

  PointId size() const {
    return static_cast<PointId>(coords_.size()) / dim_;
  }
  int dim() const { return dim_; }
  bool empty() const { return coords_.empty(); }

  const double* operator[](PointId i) const {
    return coords_.data() + static_cast<size_t>(i) * static_cast<size_t>(dim_);
  }
  double* MutablePoint(PointId i) {
    return coords_.data() + static_cast<size_t>(i) * static_cast<size_t>(dim_);
  }
  double Coord(PointId i, int d) const { return (*this)[i][d]; }

  void Reserve(PointId n) {
    coords_.reserve(static_cast<size_t>(n) * static_cast<size_t>(dim_));
  }
  /// Appends one point; p must hold dim() doubles.
  void Add(const double* p) { coords_.insert(coords_.end(), p, p + dim_); }
  /// Appends one uninitialized point and returns its mutable storage.
  double* AddUninitialized() {
    coords_.resize(coords_.size() + static_cast<size_t>(dim_));
    return coords_.data() + coords_.size() - static_cast<size_t>(dim_);
  }

  /// A deterministic Bernoulli(fraction) subsample (order-preserving).
  PointSet Sample(double fraction, uint64_t seed) const {
    PointSet out(dim_);
    if (fraction >= 1.0) {
      out.coords_ = coords_;
      return out;
    }
    Rng rng(seed);
    const PointId n = size();
    out.Reserve(static_cast<PointId>(static_cast<double>(n) * fraction) + 16);
    for (PointId i = 0; i < n; ++i) {
      if (rng.NextDouble() < fraction) out.Add((*this)[i]);
    }
    return out;
  }

  const std::vector<double>& raw() const { return coords_; }

 private:
  int dim_;
  std::vector<double> coords_;
};

inline double SquaredDistance(const double* a, const double* b, int dim) {
  double s = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

inline double Distance(const double* a, const double* b, int dim) {
  return std::sqrt(SquaredDistance(a, b, dim));
}

/// User-facing knobs, shared by every algorithm.
struct DpcParams {
  double d_cut = 0.0;      ///< density ball radius (> 0)
  double rho_min = 0.0;    ///< points below this density are noise
  double delta_min = 0.0;  ///< center threshold on the decision graph (> d_cut)
  double epsilon = 1.0;    ///< S-Approx-DPC approximation knob (ignored elsewhere)
  /// DEPRECATED: execution policy moved to ExecutionContext (API v2).
  /// Still honored when the context leaves its thread count unspecified —
  /// see EffectiveThreads for the precedence rule. 0 = all hardware
  /// threads.
  int num_threads = 0;

  Status Validate() const {
    if (!(d_cut > 0.0)) {
      return Status::InvalidArgument("d_cut must be positive");
    }
    if (rho_min < 0.0) {
      return Status::InvalidArgument("rho_min must be non-negative");
    }
    if (!(delta_min > d_cut)) {
      return Status::InvalidArgument(
          "delta_min must exceed d_cut (grid-based algorithms guarantee "
          "exact centers only above the cell diameter)");
    }
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    if (num_threads < 0) {
      return Status::InvalidArgument("num_threads must be >= 0");
    }
    return Status::Ok();
  }
};

/// Per-phase wall times plus index footprint, filled by every Run().
struct DpcStats {
  double build_seconds = 0.0;  ///< index (kd-tree / grid) construction
  double rho_seconds = 0.0;    ///< local-density phase
  double delta_seconds = 0.0;  ///< dependent-distance phase
  double label_seconds = 0.0;  ///< center selection + label propagation
  double total_seconds = 0.0;
  size_t index_memory_bytes = 0;
  /// True when the run stopped early at a phase boundary because the
  /// ExecutionContext's deadline passed or RequestCancel() was called;
  /// every label is kUnassigned and later-phase stats are zero.
  bool interrupted = false;
};

/// Full clustering output. rho/delta/dependency are retained so callers
/// can re-threshold (FinalizeClusters) without re-running the expensive
/// phases — the decision-graph workflow of the paper's Figure 1.
struct DpcResult {
  std::vector<int64_t> label;      ///< cluster id, kNoise, or kUnassigned
  std::vector<double> rho;         ///< local density per point
  std::vector<double> delta;       ///< dependent distance (+inf for the peak)
  std::vector<PointId> dependency; ///< nearest denser neighbor (-1 for the peak)
  std::vector<PointId> centers;    ///< point id of each cluster center
  DpcStats stats;

  int64_t num_clusters() const { return static_cast<int64_t>(centers.size()); }
  bool is_noise(PointId i) const { return label[static_cast<size_t>(i)] == kNoise; }
};

/// Thread-count precedence (API v2): an ExecutionContext with an explicit
/// count wins; a context that leaves it unspecified (0) defers to the
/// deprecated DpcParams::num_threads; 0 everywhere means all hardware
/// threads.
inline int EffectiveThreads(const DpcParams& params,
                            const ExecutionContext& ctx) {
  if (ctx.num_threads() > 0) return ctx.num_threads();
  if (params.num_threads > 0) return params.num_threads;
  return HardwareThreads();
}

/// The context with the precedence rule applied — what algorithms
/// actually loop with (shares the caller's pool and cancel flag).
inline ExecutionContext ResolveContext(const DpcParams& params,
                                       const ExecutionContext& ctx) {
  return ctx.WithThreads(EffectiveThreads(params, ctx));
}

class DpcAlgorithm {
 public:
  virtual ~DpcAlgorithm() = default;
  virtual std::string_view name() const = 0;
  /// API v2 entry point: the ExecutionContext carries the execution
  /// policy (thread pool, parallelism degree, schedule strategy,
  /// deadline/cancellation); DpcParams keeps only the clustering knobs.
  virtual DpcResult Run(const PointSet& points, const DpcParams& params,
                        const ExecutionContext& ctx) = 0;
  /// Deprecated two-arg form: a default-context shim. The deprecated
  /// DpcParams::num_threads is honored through EffectiveThreads; the
  /// shared process-wide ThreadPool is reused across calls.
  DpcResult Run(const PointSet& points, const DpcParams& params) {
    return Run(points, params, ExecutionContext());
  }
};

/// True iff q ranks denser than p (rho desc, id asc tie-break). This is
/// the total order used for dependency targets everywhere.
inline bool DenserThan(double rho_q, PointId q, double rho_p, PointId p) {
  return rho_q > rho_p || (rho_q == rho_p && q < p);
}

/// Ids sorted densest-first under DenserThan.
inline std::vector<PointId> DensityOrder(const std::vector<double>& rho) {
  std::vector<PointId> order(rho.size());
  std::iota(order.begin(), order.end(), PointId{0});
  std::sort(order.begin(), order.end(), [&rho](PointId a, PointId b) {
    return DenserThan(rho[static_cast<size_t>(a)], a, rho[static_cast<size_t>(b)], b);
  });
  return order;
}

/// (Re)derives centers and labels from rho/delta/dependency — the cheap
/// final phase, shared by all algorithms and by decision-graph
/// re-thresholding. Requires rho/delta/dependency to be filled.
inline void FinalizeClusters(const DpcParams& params, DpcResult* result) {
  const size_t n = result->rho.size();
  result->centers.clear();
  result->label.assign(n, kNoise);
  const std::vector<PointId> order = DensityOrder(result->rho);
  for (const PointId id : order) {
    const size_t i = static_cast<size_t>(id);
    if (result->rho[i] < params.rho_min) continue;  // noise
    if (result->delta[i] >= params.delta_min) {
      result->label[i] = static_cast<int64_t>(result->centers.size());
      result->centers.push_back(id);
    } else {
      const PointId dep = result->dependency[i];
      // dep is denser than id, hence already labeled and never noise
      // (rho[dep] >= rho[id] >= rho_min); dep == -1 only for the global
      // peak, whose delta is +inf >= delta_min.
      result->label[i] = dep >= 0 ? result->label[static_cast<size_t>(dep)] : kNoise;
    }
  }
}

namespace internal {

/// Phase-boundary cancellation/deadline check shared by every algorithm:
/// when the context says stop, marks the result interrupted and leaves
/// every point unassigned (rho/delta keep whatever phases completed).
inline bool Interrupted(const ExecutionContext& ctx, DpcResult* result) {
  if (!ctx.ShouldStop()) return false;
  result->stats.interrupted = true;
  result->label.assign(result->rho.size(), kUnassigned);
  result->centers.clear();
  return true;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  double Lap() {
    const auto now = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace internal

}  // namespace dpc

#endif  // DPC_CORE_DPC_H_
