// Core vocabulary of the density-peaks clustering (DPC) library
// reproducing Amagata & Hara, "Fast Density-Peaks Clustering:
// Multicore-based Parallelization Approach" (SIGMOD'21).
//
// DPC assigns each point p
//   rho(p)   — local density: |{q != p : dist(p, q) <= d_cut}|
//   delta(p) — dependent distance: distance to the nearest point denser
//              than p (+inf for the globally densest point)
// Centers are the points with rho >= rho_min and delta >= delta_min;
// every other non-noise point joins the cluster of its dependent point
// (its nearest denser neighbor). Points with rho < rho_min are noise.
//
// The pipeline splits into two phases with wildly different costs, and
// the split is first-class in the API:
//
//   compute   — rho/delta/dependency. Depends only on ComputeParams
//               (d_cut, epsilon) and dominates the runtime: this is what
//               the paper parallelizes. An algorithm's canonical output
//               is a DpcSolution, the reusable artifact of this phase.
//   threshold — center selection + label propagation from a
//               ThresholdSpec (rho_min, delta_min). A pure O(n) pass
//               over a solution (LabelSolution / FinalizeSolution), so
//               decision-graph exploration — many thresholds against one
//               compute — never re-runs the expensive phase.
//
// The legacy Run(points, DpcParams) -> DpcResult entry point remains as
// a shim composing the two.
//
// Ties in rho are broken by point id (smaller id counts as denser), which
// makes every phase — and therefore every label — deterministic for a
// fixed input, independent of thread count.
#ifndef DPC_CORE_DPC_H_
#define DPC_CORE_DPC_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "core/rng.h"
#include "core/status.h"
#include "parallel/execution_context.h"

namespace dpc {

using PointId = int64_t;

/// Label values with special meaning in DpcResult::label.
inline constexpr int64_t kNoise = -1;
inline constexpr int64_t kUnassigned = -2;

/// A dense row-major set of dim-dimensional points.
class PointSet {
 public:
  explicit PointSet(int dim) : dim_(dim > 0 ? dim : 1) {}

  PointId size() const {
    return static_cast<PointId>(coords_.size()) / dim_;
  }
  int dim() const { return dim_; }
  bool empty() const { return coords_.empty(); }

  const double* operator[](PointId i) const {
    return coords_.data() + static_cast<size_t>(i) * static_cast<size_t>(dim_);
  }
  double* MutablePoint(PointId i) {
    return coords_.data() + static_cast<size_t>(i) * static_cast<size_t>(dim_);
  }
  double Coord(PointId i, int d) const { return (*this)[i][d]; }

  void Reserve(PointId n) {
    coords_.reserve(static_cast<size_t>(n) * static_cast<size_t>(dim_));
  }
  /// Appends one point; p must hold dim() doubles.
  void Add(const double* p) { coords_.insert(coords_.end(), p, p + dim_); }
  /// Appends one uninitialized point and returns its mutable storage.
  double* AddUninitialized() {
    coords_.resize(coords_.size() + static_cast<size_t>(dim_));
    return coords_.data() + coords_.size() - static_cast<size_t>(dim_);
  }

  /// A deterministic Bernoulli(fraction) subsample (order-preserving).
  PointSet Sample(double fraction, uint64_t seed) const {
    PointSet out(dim_);
    if (fraction >= 1.0) {
      out.coords_ = coords_;
      return out;
    }
    Rng rng(seed);
    const PointId n = size();
    out.Reserve(static_cast<PointId>(static_cast<double>(n) * fraction) + 16);
    for (PointId i = 0; i < n; ++i) {
      if (rng.NextDouble() < fraction) out.Add((*this)[i]);
    }
    return out;
  }

  const std::vector<double>& raw() const { return coords_; }

 private:
  int dim_;
  std::vector<double> coords_;
};

/// Content hash of a point set: two sets fingerprint equal iff they hold
/// the same coordinates in the same order at the same dimensionality.
/// Identifies the input a DpcSolution was computed from — and keys the
/// serving layer's caches — without retaining the points themselves.
inline uint64_t FingerprintPoints(const PointSet& points) {
  const int32_t dim = points.dim();
  const int64_t n = points.size();
  uint64_t h = Fnv1aBytes(&dim, sizeof(dim));
  h = Fnv1aBytes(&n, sizeof(n), h);
  return Fnv1aBytes(points.raw().data(), points.raw().size() * sizeof(double),
                    h);
}

inline double SquaredDistance(const double* a, const double* b, int dim) {
  double s = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

inline double Distance(const double* a, const double* b, int dim) {
  return std::sqrt(SquaredDistance(a, b, dim));
}

/// Knobs of the expensive compute phase. Everything rho/delta/dependency
/// depend on (besides the points and the per-algorithm options) lives
/// here; two runs sharing ComputeParams share their DpcSolution.
struct ComputeParams {
  double d_cut = 0.0;    ///< density ball radius (> 0)
  double epsilon = 1.0;  ///< S-Approx-DPC approximation knob (ignored elsewhere)

  Status Validate() const {
    if (!(d_cut > 0.0)) {
      return Status::InvalidArgument("d_cut must be positive");
    }
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    return Status::Ok();
  }
};

/// Knobs of the cheap threshold phase: how labels are derived from a
/// DpcSolution's decision graph. Changing these never requires recompute.
struct ThresholdSpec {
  double rho_min = 0.0;    ///< points below this density are noise
  double delta_min = 0.0;  ///< center threshold on the decision graph (> d_cut)
  /// Also derive the cluster core/halo split downstream (core/halo.h) —
  /// carried here so tools can treat it as part of the labeling request.
  bool halo = false;

  /// d_cut is the compute-phase radius the thresholds must respect:
  /// grid-based algorithms guarantee exact centers only above the cell
  /// diameter (= d_cut).
  Status Validate(double d_cut) const {
    if (rho_min < 0.0) {
      return Status::InvalidArgument("rho_min must be non-negative");
    }
    if (!(delta_min > d_cut)) {
      return Status::InvalidArgument(
          "delta_min must exceed d_cut (grid-based algorithms guarantee "
          "exact centers only above the cell diameter)");
    }
    return Status::Ok();
  }
};

/// User-facing knobs, shared by every algorithm: the legacy flat bundle,
/// now a composition of ComputeParams and ThresholdSpec (see compute() /
/// threshold()). Kept flat for source compatibility with callers that
/// assign params.d_cut etc. directly.
struct DpcParams {
  double d_cut = 0.0;      ///< density ball radius (> 0)
  double rho_min = 0.0;    ///< points below this density are noise
  double delta_min = 0.0;  ///< center threshold on the decision graph (> d_cut)
  double epsilon = 1.0;    ///< S-Approx-DPC approximation knob (ignored elsewhere)
  /// DEPRECATED: execution policy moved to ExecutionContext (API v2).
  /// Still honored when the context leaves its thread count unspecified —
  /// see EffectiveThreads for the precedence rule. 0 = all hardware
  /// threads.
  int num_threads = 0;

  /// The compute-phase projection of these params.
  ComputeParams compute() const { return ComputeParams{d_cut, epsilon}; }
  /// The threshold-phase projection of these params.
  ThresholdSpec threshold() const {
    return ThresholdSpec{rho_min, delta_min, false};
  }

  Status Validate() const {
    if (const Status s = compute().Validate(); !s.ok()) return s;
    if (const Status s = threshold().Validate(d_cut); !s.ok()) return s;
    if (num_threads < 0) {
      return Status::InvalidArgument("num_threads must be >= 0");
    }
    return Status::Ok();
  }
};

/// The flat bundle reassembled from its two phases.
inline DpcParams ComposeParams(const ComputeParams& compute,
                               const ThresholdSpec& threshold) {
  DpcParams params;
  params.d_cut = compute.d_cut;
  params.epsilon = compute.epsilon;
  params.rho_min = threshold.rho_min;
  params.delta_min = threshold.delta_min;
  return params;
}

/// Per-phase wall times plus index footprint, filled by every Run().
struct DpcStats {
  double build_seconds = 0.0;  ///< index (kd-tree / grid) construction
  double rho_seconds = 0.0;    ///< local-density phase
  double delta_seconds = 0.0;  ///< dependent-distance phase
  double label_seconds = 0.0;  ///< center selection + label propagation
  double total_seconds = 0.0;
  size_t index_memory_bytes = 0;
  /// True when the run stopped early because the ExecutionContext's
  /// deadline passed or RequestCancel() was called; every label is
  /// kUnassigned and later-phase stats are zero.
  bool interrupted = false;
};

/// True iff q ranks denser than p (rho desc, id asc tie-break). This is
/// the total order used for dependency targets everywhere.
inline bool DenserThan(double rho_q, PointId q, double rho_p, PointId p) {
  return rho_q > rho_p || (rho_q == rho_p && q < p);
}

/// Ids sorted densest-first under DenserThan.
inline std::vector<PointId> DensityOrder(const std::vector<double>& rho) {
  std::vector<PointId> order(rho.size());
  std::iota(order.begin(), order.end(), PointId{0});
  std::sort(order.begin(), order.end(), [&rho](PointId a, PointId b) {
    return DenserThan(rho[static_cast<size_t>(a)], a, rho[static_cast<size_t>(b)], b);
  });
  return order;
}

/// The compute phase's reusable artifact: everything the expensive
/// phases produced, plus the metadata that identifies which (points,
/// algorithm, compute params) it answers for and what it cost. Any
/// ThresholdSpec can be applied to it with LabelSolution /
/// FinalizeSolution at O(n) — the paper's decision-graph workflow.
struct DpcSolution {
  std::string algorithm;            ///< producing DpcAlgorithm::name()
  uint64_t points_fingerprint = 0;  ///< FingerprintPoints of the input
  ComputeParams compute;            ///< params the phases ran under

  std::vector<double> rho;          ///< local density per point
  std::vector<double> delta;        ///< dependent distance (+inf for the peak)
  std::vector<PointId> dependency;  ///< nearest denser neighbor (-1 for the peak)
  /// Ids densest-first (DensityOrder(rho)), precomputed once so every
  /// re-threshold is a sort-free O(n) pass. Empty for interrupted solves.
  std::vector<PointId> density_order;

  DpcStats stats;  ///< compute phases only; label_seconds stays 0
  /// Wall cost of producing this solution (build + rho + delta) — what a
  /// cache gives back per hit, and what cost-aware eviction weighs.
  double compute_cost_seconds = 0.0;

  PointId size() const { return static_cast<PointId>(rho.size()); }
  bool interrupted() const { return stats.interrupted; }
};

/// Full clustering output. rho/delta/dependency are retained so callers
/// can re-threshold (FinalizeClusters) without re-running the expensive
/// phases — the decision-graph workflow of the paper's Figure 1.
struct DpcResult {
  std::vector<int64_t> label;      ///< cluster id, kNoise, or kUnassigned
  std::vector<double> rho;         ///< local density per point
  std::vector<double> delta;       ///< dependent distance (+inf for the peak)
  std::vector<PointId> dependency; ///< nearest denser neighbor (-1 for the peak)
  std::vector<PointId> centers;    ///< point id of each cluster center
  DpcStats stats;

  int64_t num_clusters() const { return static_cast<int64_t>(centers.size()); }
  bool is_noise(PointId i) const { return label[static_cast<size_t>(i)] == kNoise; }
};

/// Labels + centers alone — what the threshold phase produces when the
/// caller already holds the solution (serving-layer label memos).
struct Labeling {
  std::vector<int64_t> label;
  std::vector<PointId> centers;
};

namespace internal {

/// The shared labeling pass: center selection by (rho_min, delta_min),
/// then propagation along dependency chains in density order. `order`
/// must be DensityOrder(rho).
inline void LabelWithOrder(const std::vector<double>& rho,
                           const std::vector<double>& delta,
                           const std::vector<PointId>& dependency,
                           const std::vector<PointId>& order,
                           const ThresholdSpec& spec,
                           std::vector<int64_t>* label,
                           std::vector<PointId>* centers) {
  centers->clear();
  label->assign(rho.size(), kNoise);
  for (const PointId id : order) {
    const size_t i = static_cast<size_t>(id);
    if (rho[i] < spec.rho_min) continue;  // noise
    if (delta[i] >= spec.delta_min) {
      (*label)[i] = static_cast<int64_t>(centers->size());
      centers->push_back(id);
    } else {
      const PointId dep = dependency[i];
      // dep is denser than id, hence already labeled and never noise
      // (rho[dep] >= rho[id] >= rho_min); dep == -1 only for the global
      // peak, whose delta is +inf >= delta_min.
      (*label)[i] = dep >= 0 ? (*label)[static_cast<size_t>(dep)] : kNoise;
    }
  }
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  double Lap() {
    const auto now = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Phase-boundary cancellation/deadline check shared by every algorithm:
/// when the context says stop, marks the solution interrupted (rho/delta
/// keep whatever phases completed; labeling never runs on it).
inline bool Interrupted(const ExecutionContext& ctx, DpcSolution* solution) {
  if (!ctx.ShouldStop()) return false;
  solution->stats.interrupted = true;
  return true;
}

/// Re-tiles a solve's phase laps as back-to-back child spans. Every
/// algorithm times its phases with consecutive WallTimer::Lap() calls
/// from the top of SolveImpl, so [solve_start, solve_start + build),
/// [.., + rho), [.., + delta) reconstructs the real phase intervals to
/// lap precision — which is how ALL SEVEN algorithms emit per-phase
/// spans from one integration point (DpcAlgorithm::Solve) with zero
/// instrumentation inside their bodies. An interrupted run only emits
/// the phases that actually accumulated time.
inline void RecordSolvePhaseSpans(obs::Trace* trace, uint64_t parent,
                                  uint64_t solve_start_ns,
                                  const DpcStats& stats) {
  const struct {
    const char* name;
    double seconds;
  } phases[] = {{"solve/build", stats.build_seconds},
                {"solve/rho", stats.rho_seconds},
                {"solve/delta", stats.delta_seconds}};
  uint64_t t = solve_start_ns;
  for (const auto& [name, seconds] : phases) {
    if (seconds <= 0.0) continue;
    const uint64_t end = t + static_cast<uint64_t>(seconds * 1e9);
    trace->RecordComplete(name, parent, t, end);
    t = end;
  }
}

}  // namespace internal

/// The threshold phase over a solution: labels + centers at O(n) (the
/// solution's precomputed density order makes it sort-free). For an
/// interrupted solution every label is kUnassigned.
inline Labeling LabelSolution(const DpcSolution& solution,
                              const ThresholdSpec& spec) {
  Labeling out;
  if (solution.interrupted()) {
    out.label.assign(solution.rho.size(), kUnassigned);
    return out;
  }
  if (solution.density_order.size() == solution.rho.size()) {
    internal::LabelWithOrder(solution.rho, solution.delta, solution.dependency,
                             solution.density_order, spec, &out.label,
                             &out.centers);
  } else {
    internal::LabelWithOrder(solution.rho, solution.delta, solution.dependency,
                             DensityOrder(solution.rho), spec, &out.label,
                             &out.centers);
  }
  return out;
}

/// A full DpcResult assembled from a solution and a threshold — the
/// bridge from the two-phase API back to the legacy result shape. Label
/// time is measured into stats.label_seconds / total_seconds.
inline DpcResult FinalizeSolution(const DpcSolution& solution,
                                  const ThresholdSpec& spec) {
  DpcResult result;
  result.rho = solution.rho;
  result.delta = solution.delta;
  result.dependency = solution.dependency;
  result.stats = solution.stats;
  internal::WallTimer timer;
  Labeling labeling = LabelSolution(solution, spec);
  result.label = std::move(labeling.label);
  result.centers = std::move(labeling.centers);
  if (!solution.interrupted()) {
    result.stats.label_seconds = timer.Seconds();
    result.stats.total_seconds += result.stats.label_seconds;
  }
  return result;
}

/// (Re)derives centers and labels from rho/delta/dependency — the cheap
/// final phase, shared by all algorithms and by decision-graph
/// re-thresholding. Requires rho/delta/dependency to be filled.
inline void FinalizeClusters(const DpcParams& params, DpcResult* result) {
  internal::LabelWithOrder(result->rho, result->delta, result->dependency,
                           DensityOrder(result->rho), params.threshold(),
                           &result->label, &result->centers);
}

/// Thread-count precedence (API v2): an ExecutionContext with an explicit
/// count wins; a context that leaves it unspecified (0) defers to the
/// deprecated DpcParams::num_threads; 0 everywhere means all hardware
/// threads.
inline int EffectiveThreads(const DpcParams& params,
                            const ExecutionContext& ctx) {
  if (ctx.num_threads() > 0) return ctx.num_threads();
  if (params.num_threads > 0) return params.num_threads;
  return HardwareThreads();
}

/// The context with the precedence rule applied — what algorithms
/// actually loop with (shares the caller's pool and cancel flag).
inline ExecutionContext ResolveContext(const DpcParams& params,
                                       const ExecutionContext& ctx) {
  return ctx.WithThreads(EffectiveThreads(params, ctx));
}

/// Params-free resolution for the Solve entry point: an unspecified
/// thread count means all hardware threads. Idempotent on contexts the
/// DpcParams overload already resolved.
inline ExecutionContext ResolveContext(const ExecutionContext& ctx) {
  return ctx.num_threads() > 0 ? ctx : ctx.WithThreads(HardwareThreads());
}

class DpcAlgorithm {
 public:
  virtual ~DpcAlgorithm() = default;
  virtual std::string_view name() const = 0;

  /// The compute phase: produces this algorithm's DpcSolution (rho /
  /// delta / dependency + metadata). The ExecutionContext carries the
  /// execution policy (thread pool, parallelism degree, schedule
  /// strategy, deadline/cancellation). Callers that already hold the
  /// input's content fingerprint (the serving layer's dataset registry)
  /// pass it to skip the O(n·dim) re-hash; 0 means "compute it here".
  DpcSolution Solve(const PointSet& points, const ComputeParams& compute,
                    const ExecutionContext& ctx,
                    uint64_t points_fingerprint = 0) {
    obs::Trace* const trace = ctx.trace();
    const uint64_t solve_start_ns = trace != nullptr ? obs::Trace::NowNs() : 0;
    DpcSolution solution = SolveImpl(points, compute, ResolveContext(ctx));
    const uint64_t impl_end_ns = trace != nullptr ? obs::Trace::NowNs() : 0;
    solution.algorithm = std::string(name());
    solution.compute = compute;
    solution.points_fingerprint = points_fingerprint != 0
                                      ? points_fingerprint
                                      : FingerprintPoints(points);
    solution.compute_cost_seconds = solution.stats.build_seconds +
                                    solution.stats.rho_seconds +
                                    solution.stats.delta_seconds;
    if (!solution.interrupted()) {
      solution.density_order = DensityOrder(solution.rho);
    }
    if (trace != nullptr) {
      internal::RecordSolvePhaseSpans(trace, ctx.span_parent(), solve_start_ns,
                                      solution.stats);
      // The metadata stamping above (fingerprint hash when not provided,
      // density-order sort) is real wall time too; spanning it keeps the
      // children of a "solve" span summing to its wall.
      trace->RecordComplete("solve/stamp", ctx.span_parent(), impl_end_ns,
                            obs::Trace::NowNs());
    }
    return solution;
  }

  /// Legacy one-shot entry point (API v2 signature): the compute phase
  /// under params.compute() followed by the threshold phase under
  /// params.threshold(). Goes straight to SolveImpl: the solution is
  /// finalized and discarded here, so the artifact metadata Solve stamps
  /// (the O(n·dim) fingerprint hash, the density-order precompute) would
  /// be pure overhead — FinalizeSolution's fallback sorts inside its own
  /// timer, exactly like the pre-split label phase did.
  DpcResult Run(const PointSet& points, const DpcParams& params,
                const ExecutionContext& ctx) {
    const DpcSolution solution =
        SolveImpl(points, params.compute(), ResolveContext(params, ctx));
    return FinalizeSolution(solution, params.threshold());
  }
  /// Deprecated two-arg form: a default-context shim. The deprecated
  /// DpcParams::num_threads is honored through EffectiveThreads; the
  /// shared process-wide ThreadPool is reused across calls.
  DpcResult Run(const PointSet& points, const DpcParams& params) {
    return Run(points, params, ExecutionContext());
  }

 protected:
  /// Algorithm body: fill rho/delta/dependency and the phase stats. The
  /// context arrives resolved (threads >= 1); Solve stamps the metadata
  /// (name, fingerprint, compute params, cost, density order) afterward.
  virtual DpcSolution SolveImpl(const PointSet& points,
                                const ComputeParams& compute,
                                const ExecutionContext& ctx) = 0;
};

}  // namespace dpc

#endif  // DPC_CORE_DPC_H_
