// Runtime CPU feature detection for the kernel dispatch layer
// (core/kernels_dispatch.h): CPUID leaves 1 and 7 for AVX/FMA/AVX2/
// AVX-512F, plus XGETBV to confirm the OS actually saves the wide
// register state — an AVX2 bit without OSXSAVE+YMM-state enablement
// means executing a VEX instruction faults, so both sides are required
// before a wide tier may be selected.
//
// Header-only and dependency-free; compiles to "no features" on
// non-x86 targets, which degrades the dispatcher to the generic tier.
#ifndef DPC_CORE_CPU_FEATURES_H_
#define DPC_CORE_CPU_FEATURES_H_

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define DPC_CPU_X86 1
#endif

namespace dpc {

/// The instruction-set facts the kernel tiers care about. `avx2`/`fma`/
/// `avx512f` are raw CPUID bits; `os_avx`/`os_avx512` fold in the
/// XGETBV check that the OS context-switches the matching register
/// state. A tier is usable only when both the CPU and the OS sides
/// hold (see Avx2TierUsable / Avx512TierUsable).
struct CpuFeatures {
  bool osxsave = false;   ///< CPUID.1:ECX.OSXSAVE — XGETBV executable
  bool avx = false;       ///< CPUID.1:ECX.AVX
  bool fma = false;       ///< CPUID.1:ECX.FMA
  bool avx2 = false;      ///< CPUID.7.0:EBX.AVX2
  bool avx512f = false;   ///< CPUID.7.0:EBX.AVX512F
  bool os_avx = false;    ///< XCR0 saves XMM+YMM state
  bool os_avx512 = false; ///< XCR0 additionally saves opmask+ZMM state
};

inline CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#if defined(DPC_CPU_X86)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  // Leaf 1 ECX: FMA bit 12, OSXSAVE bit 27, AVX bit 28. Literal masks —
  // the bit_* macros in <cpuid.h> vary across toolchain vintages.
  f.fma = (ecx & (1u << 12)) != 0;
  f.osxsave = (ecx & (1u << 27)) != 0;
  f.avx = (ecx & (1u << 28)) != 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    // Leaf 7.0 EBX: AVX2 bit 5, AVX512F bit 16.
    f.avx2 = (ebx & (1u << 5)) != 0;
    f.avx512f = (ebx & (1u << 16)) != 0;
  }
  if (f.osxsave) {
    // XGETBV(0) — encoded directly so no -mxsave target flag is needed;
    // only executed behind the OSXSAVE check above.
    uint32_t xcr0_lo = 0, xcr0_hi = 0;
    __asm__ __volatile__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    const uint64_t xcr0 =
        (static_cast<uint64_t>(xcr0_hi) << 32) | static_cast<uint64_t>(xcr0_lo);
    f.os_avx = (xcr0 & 0x6) == 0x6;  // bits 1 (SSE) + 2 (AVX)
    // Bits 5..7: opmask, ZMM_Hi256, Hi16_ZMM — all three or AVX-512
    // instructions fault.
    f.os_avx512 = f.os_avx && (xcr0 & 0xE0) == 0xE0;
  }
#endif
  return f;
}

/// The avx2 kernel tier needs AVX2 + FMA present and YMM state saved.
/// (FMA is detected and required for uniformity with real AVX2 parts;
/// the accumulate path never contracts into it — see the bit-identity
/// rule in core/kernels_tier_impl.inc.)
inline bool Avx2TierUsable(const CpuFeatures& f) {
  return f.avx && f.avx2 && f.fma && f.os_avx;
}

/// The avx512 kernel tier needs AVX-512F and full ZMM/opmask state on
/// top of everything the avx2 tier needs.
inline bool Avx512TierUsable(const CpuFeatures& f) {
  return Avx2TierUsable(f) && f.avx512f && f.os_avx512;
}

}  // namespace dpc

#endif  // DPC_CORE_CPU_FEATURES_H_
