// Runtime CPU dispatch for the batched distance kernels (the
// DPC_KERNEL_DISPATCH=runtime mode, the default build).
//
// One fat, portable binary carries three differently-compiled copies of
// the column kernels — per-tier translation units with per-file arch
// flags (see the root CMakeLists):
//
//   generic  core/kernels_generic.cc   baseline x86-64 (SSE2) codegen
//   avx2     core/kernels_avx2.cc      -mavx2 -mfma  -ffp-contract=off
//   avx512   core/kernels_avx512.cc    -mavx512f     -ffp-contract=off
//
// and a once-initialized function-pointer table routes every public
// kernel (core/kernels.h) to the best tier the host can execute
// (core/cpu_features.h: CPUID + XGETBV). All tiers are bit-identical to
// the scalar reference — see the contract comment in
// core/kernels_tier_impl.inc — so switching tiers (even mid-process)
// changes speed only, never a distance, a label, or a tie-break.
//
// Overriding: the environment variable DPC_FORCE_KERNEL_TIER
// (generic|avx2|avx512, read once at first kernel use) pins the tier
// for testing; naming a tier the host cannot execute (or an unknown
// name) falls back to the best supported tier and sets
// TierOverrideFellBack(). SetActiveTier() is the in-process equivalent
// for tier sweeps in benches and tests.
#ifndef DPC_CORE_KERNELS_DISPATCH_H_
#define DPC_CORE_KERNELS_DISPATCH_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/dpc.h"
#include "core/kernels_common.h"
#include "core/soa.h"

namespace dpc::kernels {

/// The dispatch tiers, in ascending width order. Values double as bits
/// in the supported-tier mask (1 << tier).
enum class KernelTier : int { kGeneric = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr int kNumKernelTiers = 3;

/// One tier's implementation of every public kernel. POD of function
/// pointers so a tier switch is a single atomic pointer store.
struct KernelTable {
  void (*sqdist)(const PointSetSoA&, PointId, PointId, const double*, double*);
  PointId (*range_count)(const PointSetSoA&, PointId, PointId, const double*,
                         double);
  MinResult (*min_distance)(const PointSetSoA&, PointId, PointId,
                            const double*);
  void (*dot)(const PointSetSoA&, PointId, PointId, const double*, double*);
  void (*gather)(const PointSet&, const PointId*, PointId, const double*,
                 double*);
};

namespace tiers {
namespace generic {
extern const KernelTable kTable;
}
namespace avx2 {
extern const KernelTable kTable;
}
namespace avx512 {
extern const KernelTable kTable;
}
}  // namespace tiers

/// "generic" / "avx2" / "avx512".
const char* TierName(KernelTier tier);

/// Bit i set = tier i executable on this host AND compiled into this
/// binary (a toolchain without -mavx512f support drops that tier at
/// build time). Bit kGeneric is always set. Detected once, cached.
uint32_t SupportedTierMask();

/// Pure tier-selection policy, exposed for tests: `forced` is the
/// DPC_FORCE_KERNEL_TIER value (nullptr/empty = no override),
/// `supported_mask` a SupportedTierMask()-shaped bitmask. Returns the
/// forced tier when it names a supported tier, otherwise the widest
/// supported tier; *fell_back reports whether a non-empty override was
/// ignored (unknown name or unsupported tier).
KernelTier ChooseTier(const char* forced, uint32_t supported_mask,
                      bool* fell_back);

/// The supported tiers in ascending width order (always starts with
/// kGeneric).
std::vector<KernelTier> SupportedTiers();

/// The tier the kernels currently route to.
KernelTier ActiveTier();
const char* ActiveTierName();

/// Re-points the dispatch table at `tier`; returns false (and changes
/// nothing) when the tier is unsupported on this host/binary. Safe at
/// any time — every tier computes bit-identical results, so in-flight
/// solves only change speed — but intended for tier sweeps in benches
/// and tests.
bool SetActiveTier(KernelTier tier);

/// True when DPC_FORCE_KERNEL_TIER named an unknown or unsupported
/// tier and the dispatcher fell back to the best supported one.
bool TierOverrideFellBack();

namespace internal {

/// The published table pointer. A function-local static in an inline
/// function so the header needs no out-of-line storage; null until the
/// first kernel call resolves detection + override.
inline std::atomic<const KernelTable*>& ActiveSlot() {
  static std::atomic<const KernelTable*> slot{nullptr};
  return slot;
}

/// First-use initialization: detection, env override, publish. Defined
/// in core/kernels_dispatch.cc; thread-safe (idempotent publish).
const KernelTable* InitActiveTable();

}  // namespace internal

/// The table every public kernel routes through. Hot-path cost is one
/// relaxed-ish atomic load + indirect call per batch (hundreds to
/// thousands of points), noise next to the kernel body itself.
inline const KernelTable& Active() {
  const KernelTable* table =
      internal::ActiveSlot().load(std::memory_order_acquire);
  if (table == nullptr) table = internal::InitActiveTable();
  return *table;
}

}  // namespace dpc::kernels

#endif  // DPC_CORE_KERNELS_DISPATCH_H_
