// Cluster core/halo split, from the original CFSFDP paper (Rodriguez &
// Laio) that AmagataH21 accelerates: a cluster's border region is the set
// of its members within d_cut of a member of another cluster; the border
// density is the highest rho in that region; members below it form the
// halo (assignment is unreliable there), the rest the core.
#ifndef DPC_CORE_HALO_H_
#define DPC_CORE_HALO_H_

#include <cstdint>
#include <vector>

#include "core/dpc.h"
#include "index/kdtree.h"

namespace dpc {

struct HaloResult {
  std::vector<int64_t> halo_size;       ///< per cluster
  std::vector<double> border_density;   ///< per cluster (0 if no border)
  std::vector<uint8_t> in_halo;         ///< per point (noise is never halo)
};

inline HaloResult ComputeHalo(const PointSet& points, const DpcResult& result,
                              double d_cut) {
  HaloResult out;
  const size_t k = static_cast<size_t>(result.num_clusters());
  const PointId n = points.size();
  out.halo_size.assign(k, 0);
  out.border_density.assign(k, 0.0);
  out.in_halo.assign(static_cast<size_t>(n), 0);
  if (k == 0) return out;

  KdTree tree;
  tree.Build(points);
  std::vector<PointId> neighbors;
  for (PointId i = 0; i < n; ++i) {
    const int64_t c = result.label[static_cast<size_t>(i)];
    if (c < 0) continue;
    neighbors.clear();
    tree.RangeReport(points[i], d_cut, &neighbors);
    for (const PointId j : neighbors) {
      const int64_t cj = result.label[static_cast<size_t>(j)];
      if (cj >= 0 && cj != c) {
        // i sits in the border region of its cluster.
        auto& bd = out.border_density[static_cast<size_t>(c)];
        if (result.rho[static_cast<size_t>(i)] > bd) {
          bd = result.rho[static_cast<size_t>(i)];
        }
        break;
      }
    }
  }
  for (PointId i = 0; i < n; ++i) {
    const int64_t c = result.label[static_cast<size_t>(i)];
    if (c < 0) continue;
    if (result.rho[static_cast<size_t>(i)] <
        out.border_density[static_cast<size_t>(c)]) {
      out.in_halo[static_cast<size_t>(i)] = 1;
      ++out.halo_size[static_cast<size_t>(c)];
    }
  }
  return out;
}

}  // namespace dpc

#endif  // DPC_CORE_HALO_H_
