// Tier selection for the runtime kernel dispatch: CPUID/XGETBV
// detection (core/cpu_features.h), the DPC_FORCE_KERNEL_TIER override,
// and the published table pointer the kernels route through. Compiled
// with NO wide-arch flags — this TU only takes addresses of the tier
// tables, it never executes wide code itself.
#include "core/kernels_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/cpu_features.h"

namespace dpc::kernels {

namespace {

const KernelTable* TableFor(KernelTier tier) {
  switch (tier) {
    case KernelTier::kGeneric:
      return &tiers::generic::kTable;
    case KernelTier::kAvx2:
      return &tiers::avx2::kTable;
    case KernelTier::kAvx512:
      return &tiers::avx512::kTable;
  }
  return &tiers::generic::kTable;
}

std::atomic<int>& ActiveTierSlot() {
  static std::atomic<int> tier{static_cast<int>(KernelTier::kGeneric)};
  return tier;
}

bool& FellBackFlag() {
  static bool fell_back = false;
  return fell_back;
}

KernelTier WidestSupported(uint32_t mask) {
  for (int t = kNumKernelTiers - 1; t > 0; --t) {
    if ((mask & (1u << t)) != 0) return static_cast<KernelTier>(t);
  }
  return KernelTier::kGeneric;
}

}  // namespace

const char* TierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kGeneric:
      return "generic";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "?";
}

uint32_t SupportedTierMask() {
  static const uint32_t mask = [] {
    uint32_t m = 1u << static_cast<int>(KernelTier::kGeneric);
    const CpuFeatures f = DetectCpuFeatures();
    if (Avx2TierUsable(f)) m |= 1u << static_cast<int>(KernelTier::kAvx2);
#if !defined(DPC_KERNELS_AVX512_UNAVAILABLE)
    if (Avx512TierUsable(f)) m |= 1u << static_cast<int>(KernelTier::kAvx512);
#endif
    return m;
  }();
  return mask;
}

KernelTier ChooseTier(const char* forced, uint32_t supported_mask,
                      bool* fell_back) {
  if (fell_back != nullptr) *fell_back = false;
  if (forced != nullptr && forced[0] != '\0') {
    for (int t = 0; t < kNumKernelTiers; ++t) {
      const auto tier = static_cast<KernelTier>(t);
      if (std::strcmp(forced, TierName(tier)) == 0) {
        if ((supported_mask & (1u << t)) != 0) return tier;
        break;  // known name, unsupported tier -> fall back
      }
    }
    if (fell_back != nullptr) *fell_back = true;
  }
  return WidestSupported(supported_mask);
}

std::vector<KernelTier> SupportedTiers() {
  std::vector<KernelTier> out;
  const uint32_t mask = SupportedTierMask();
  for (int t = 0; t < kNumKernelTiers; ++t) {
    if ((mask & (1u << t)) != 0) out.push_back(static_cast<KernelTier>(t));
  }
  return out;
}

KernelTier ActiveTier() {
  Active();  // force first-use resolution
  return static_cast<KernelTier>(
      ActiveTierSlot().load(std::memory_order_relaxed));
}

const char* ActiveTierName() { return TierName(ActiveTier()); }

bool SetActiveTier(KernelTier tier) {
  if ((SupportedTierMask() & (1u << static_cast<int>(tier))) == 0) {
    return false;
  }
  Active();  // resolve the override first so it cannot clobber this later
  ActiveTierSlot().store(static_cast<int>(tier), std::memory_order_relaxed);
  internal::ActiveSlot().store(TableFor(tier), std::memory_order_release);
  return true;
}

bool TierOverrideFellBack() {
  Active();  // the flag is set during first-use resolution
  return FellBackFlag();
}

namespace internal {

const KernelTable* InitActiveTable() {
  // Detection and the env read are idempotent, and every thread that
  // races here publishes the same table pointer — the benign-race-free
  // pattern: compute, then a single release store.
  static const KernelTable* const resolved = [] {
    bool fell_back = false;
    const KernelTier tier = ChooseTier(std::getenv("DPC_FORCE_KERNEL_TIER"),
                                       SupportedTierMask(), &fell_back);
    FellBackFlag() = fell_back;
    ActiveTierSlot().store(static_cast<int>(tier), std::memory_order_relaxed);
    return TableFor(tier);
  }();
  ActiveSlot().store(resolved, std::memory_order_release);
  return resolved;
}

}  // namespace internal

}  // namespace dpc::kernels
