// Batched distance kernels over SoA views — the raw-speed substrate
// every algorithm's range/density loops run on.
//
// Every kernel evaluates one query point against a contiguous run of
// SoA positions and is BIT-IDENTICAL to calling the scalar reference
// (core/dpc.h SquaredDistance) per point: both accumulate each point's
// per-dimension squares in ascending dimension order, so the only thing
// the batch changes is which point's partial sum is in flight — never
// the rounding of any individual result. That identity is what lets the
// fast path ship without perturbing a single label (tests/kernels_test,
// and the determinism suite under every dispatch mode).
//
// Three implementations, selected at configure time via the CMake
// option DPC_KERNEL_DISPATCH (see the root CMakeLists):
//
//   runtime (default) — one portable fat binary carrying the column
//     kernels compiled three times (generic/SSE2, AVX2, AVX-512F) in
//     per-tier translation units with per-file arch flags; a
//     once-initialized function-pointer table routes every call to the
//     widest tier CPUID/XGETBV proves the host can execute
//     (core/kernels_dispatch.h, core/cpu_features.h). Overridable with
//     DPC_FORCE_KERNEL_TIER=generic|avx2|avx512 or SetActiveTier().
//   vectorized (-DDPC_KERNEL_DISPATCH=vectorized, macro
//     DPC_KERNELS_VECTORIZED) — the same column loops inlined at
//     baseline target codegen, no dispatch indirection: for each
//     dimension, stream the coordinate column with unit stride and
//     accumulate into a per-point array. `#pragma omp simd` (enabled by
//     -fopenmp-simd, no runtime dependency) marks the loops.
//   portable (-DDPC_KERNEL_DISPATCH=portable, macro
//     DPC_KERNELS_PORTABLE) — point-major scalar loops in reference
//     order; the fallback for compilers/targets where the column form
//     pessimizes, and the oracle the CI matrix keeps compiled and
//     bit-compared.
//
// Cell-local reordering: the grid algorithms optionally build their SoA
// views in UniformGrid cell order so one cell's members are contiguous
// (UniformGrid::CellOrdering). SetSoaCellReorder(false) disables that
// layout choice process-wide — values never change (the determinism
// suite asserts labels are bit-identical either way); only locality does.
#ifndef DPC_CORE_KERNELS_H_
#define DPC_CORE_KERNELS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/dpc.h"
#include "core/kernels_common.h"
#include "core/soa.h"

#if defined(DPC_KERNELS_RUNTIME)
#include "core/kernels_dispatch.h"
#endif

namespace dpc::kernels {

/// True when the portable scalar fallback was selected at configure time.
inline constexpr bool kPortable =
#if defined(DPC_KERNELS_PORTABLE)
    true;
#else
    false;
#endif

/// True when the runtime CPU-dispatch mode was selected at configure time.
inline constexpr bool kRuntimeDispatch =
#if defined(DPC_KERNELS_RUNTIME)
    true;
#else
    false;
#endif

/// The compiled dispatch mode, for banners and BENCH_*.json config blocks.
inline const char* DispatchName() {
  return kRuntimeDispatch ? "runtime" : (kPortable ? "portable" : "vectorized");
}

#if !defined(DPC_KERNELS_RUNTIME)
// Uniform tier-introspection surface for the configure-time modes, so
// banners, stats lines, and tier sweeps compile against one API in
// every build. Without runtime dispatch there is exactly one compiled
// implementation and nothing to switch: SupportedTiers() is empty
// (nothing to sweep) and the "active tier" is the dispatch mode itself.
enum class KernelTier : int { kGeneric = 0, kAvx2 = 1, kAvx512 = 2 };
inline const char* TierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kGeneric:
      return "generic";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "?";
}
inline std::vector<KernelTier> SupportedTiers() { return {}; }
inline const char* ActiveTierName() { return DispatchName(); }
inline bool SetActiveTier(KernelTier) { return false; }
inline bool TierOverrideFellBack() { return false; }
#endif

/// One human-readable line for startup banners: dispatch mode, the tier
/// the kernels route to, and (runtime mode) every host-supported tier.
inline std::string DescribeKernels() {
  std::string out = DispatchName();
  out += " dispatch";
  if (kRuntimeDispatch) {
    out += ", tier ";
    out += ActiveTierName();
    out += " (supported:";
    for (const KernelTier tier : SupportedTiers()) {
      out += ' ';
      out += TierName(tier);
    }
    out += ')';
    if (TierOverrideFellBack()) {
      out += " [DPC_FORCE_KERNEL_TIER not usable; fell back]";
    }
  }
  return out;
}

namespace internal {

inline std::atomic<bool>& CellReorderFlag() {
  static std::atomic<bool> flag{true};
  return flag;
}

}  // namespace internal

/// Whether grid algorithms lay their SoA views out in cell order
/// (contiguous cell members). Purely a memory-layout choice: labels are
/// bit-identical on or off. Default on.
inline bool SoaCellReorderEnabled() {
  return internal::CellReorderFlag().load(std::memory_order_relaxed);
}
inline void SetSoaCellReorder(bool enabled) {
  internal::CellReorderFlag().store(enabled, std::memory_order_relaxed);
}

#if defined(DPC_KERNELS_VECTORIZED_INLINE)
#error "DPC_KERNELS_VECTORIZED_INLINE is an internal macro"
#endif

#if !defined(DPC_KERNELS_RUNTIME) && !defined(DPC_KERNELS_PORTABLE)
// Configure-time "vectorized" mode: inline the column-kernel bodies at
// the default target arch. Shares core/kernels_tier_impl.inc with the
// runtime tiers so there is exactly one copy of the loop bodies in the
// tree.
#define DPC_TIER_NS header_fused
#define DPC_TIER_LINKAGE inline
}  // namespace dpc::kernels
#include "core/kernels_tier_impl.inc"
namespace dpc::kernels {
#undef DPC_TIER_LINKAGE
#undef DPC_TIER_NS
#endif

/// out[j] = SquaredDistance(q, soa[begin + j]) for j in [0, count).
inline void SquaredDistanceBatch(const PointSetSoA& soa, PointId begin,
                                 PointId count, const double* q, double* out) {
#if defined(DPC_KERNELS_RUNTIME)
  Active().sqdist(soa, begin, count, q, out);
#elif defined(DPC_KERNELS_PORTABLE)
  const int dim = soa.dim();
  const PointId stride = soa.size();
  const double* base = soa.Column(0) + begin;
  for (PointId j = 0; j < count; ++j) {
    double s = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = base[static_cast<size_t>(d) * static_cast<size_t>(stride) +
                               static_cast<size_t>(j)] -
                          q[d];
      s += diff * diff;
    }
    out[j] = s;
  }
#else
  tiers::header_fused::SquaredDistanceBatch(soa, begin, count, q, out);
#endif
}

/// |{j in [0, count) : SquaredDistance(q, soa[begin + j]) <= r_sq}| —
/// the rho primitive. The query itself counts when it is in the range
/// (distance 0); callers subtract the self-hit.
inline PointId RangeCountBatch(const PointSetSoA& soa, PointId begin,
                               PointId count, const double* q, double r_sq) {
#if defined(DPC_KERNELS_RUNTIME)
  return Active().range_count(soa, begin, count, q, r_sq);
#elif defined(DPC_KERNELS_PORTABLE)
  const int dim = soa.dim();
  const PointId stride = soa.size();
  const double* base = soa.Column(0) + begin;
  PointId hits = 0;
  for (PointId j = 0; j < count; ++j) {
    double s = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = base[static_cast<size_t>(d) * static_cast<size_t>(stride) +
                               static_cast<size_t>(j)] -
                          q[d];
      s += diff * diff;
    }
    if (s <= r_sq) ++hits;
  }
  return hits;
#else
  return tiers::header_fused::RangeCountBatch(soa, begin, count, q, r_sq);
#endif
}

/// argmin_j SquaredDistance(q, soa[begin + j]) over [0, count) — the
/// delta primitive for predicate-free nearest-neighbor scans.
inline MinResult MinDistanceBatch(const PointSetSoA& soa, PointId begin,
                                  PointId count, const double* q) {
#if defined(DPC_KERNELS_RUNTIME)
  return Active().min_distance(soa, begin, count, q);
#elif defined(DPC_KERNELS_PORTABLE)
  MinResult best;
  const int dim = soa.dim();
  const PointId stride = soa.size();
  const double* base = soa.Column(0) + begin;
  for (PointId j = 0; j < count; ++j) {
    double s = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = base[static_cast<size_t>(d) * static_cast<size_t>(stride) +
                               static_cast<size_t>(j)] -
                          q[d];
      s += diff * diff;
    }
    if (s < best.d_sq) {
      best.d_sq = s;
      best.pos = begin + j;
    }
  }
  return best;
#else
  return tiers::header_fused::MinDistanceBatch(soa, begin, count, q);
#endif
}

/// out[j] = sum_d a[d] * soa[begin + j][d] — the projection primitive of
/// the LSH build (accumulation in ascending dimension order, matching a
/// scalar dot product bit for bit).
inline void DotBatch(const PointSetSoA& soa, PointId begin, PointId count,
                     const double* a, double* out) {
#if defined(DPC_KERNELS_RUNTIME)
  Active().dot(soa, begin, count, a, out);
#elif defined(DPC_KERNELS_PORTABLE)
  const int dim = soa.dim();
  const PointId stride = soa.size();
  const double* base = soa.Column(0) + begin;
  for (PointId j = 0; j < count; ++j) {
    double s = 0.0;
    for (int d = 0; d < dim; ++d) {
      s += a[d] * base[static_cast<size_t>(d) * static_cast<size_t>(stride) +
                       static_cast<size_t>(j)];
    }
    out[j] = s;
  }
#else
  tiers::header_fused::DotBatch(soa, begin, count, a, out);
#endif
}

/// out[k] = SquaredDistance(q, points[ids[k]]) — the gather fallback for
/// loops whose candidates are scattered ids (LSH buckets, dynamic-tree
/// leaf buckets) where a transposed view cannot pay for itself. Row-major
/// reads; per-point arithmetic is the scalar reference verbatim.
inline void SquaredDistanceGather(const PointSet& points, const PointId* ids,
                                  PointId count, const double* q, double* out) {
#if defined(DPC_KERNELS_RUNTIME)
  Active().gather(points, ids, count, q, out);
#else
  const int dim = points.dim();
  for (PointId k = 0; k < count; ++k) {
    out[k] = SquaredDistance(q, points[ids[k]], dim);
  }
#endif
}

}  // namespace dpc::kernels

#endif  // DPC_CORE_KERNELS_H_
