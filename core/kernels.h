// Batched distance kernels over SoA views — the raw-speed substrate
// every algorithm's range/density loops run on.
//
// Every kernel evaluates one query point against a contiguous run of
// SoA positions and is BIT-IDENTICAL to calling the scalar reference
// (core/dpc.h SquaredDistance) per point: both accumulate each point's
// per-dimension squares in ascending dimension order, so the only thing
// the batch changes is which point's partial sum is in flight — never
// the rounding of any individual result. That identity is what lets the
// fast path ship without perturbing a single label (tests/kernels_test,
// and the determinism suite under both dispatch modes).
//
// Two implementations, selected at configure time via the CMake option
// DPC_KERNEL_DISPATCH (see the root CMakeLists):
//
//   vectorized (default) — column-major loops: for each dimension,
//     stream the coordinate column with unit stride and accumulate into
//     a per-point array. Dependence-free across points, so the
//     auto-vectorizer turns each pass into packed SIMD; counting and
//     min-reduction scans are branchless. `#pragma omp simd` (enabled
//     by -fopenmp-simd, no runtime dependency) marks the loops.
//   portable (-DDPC_KERNEL_DISPATCH=portable, macro DPC_KERNELS_PORTABLE)
//     — point-major scalar loops in reference order; the fallback for
//     compilers/targets where the column form pessimizes, and the
//     oracle the CI matrix keeps compiled and bit-compared.
//
// Cell-local reordering: the grid algorithms optionally build their SoA
// views in UniformGrid cell order so one cell's members are contiguous
// (UniformGrid::CellOrdering). SetSoaCellReorder(false) disables that
// layout choice process-wide — values never change (the determinism
// suite asserts labels are bit-identical either way); only locality does.
#ifndef DPC_CORE_KERNELS_H_
#define DPC_CORE_KERNELS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>

#include "core/dpc.h"
#include "core/soa.h"

#if defined(__GNUC__) || defined(__clang__)
#define DPC_KERNELS_RESTRICT __restrict__
#else
#define DPC_KERNELS_RESTRICT
#endif

namespace dpc::kernels {

/// True when the portable scalar fallback was selected at configure time.
inline constexpr bool kPortable =
#if defined(DPC_KERNELS_PORTABLE)
    true;
#else
    false;
#endif

/// The compiled dispatch mode, for banners and BENCH_*.json config blocks.
inline const char* DispatchName() { return kPortable ? "portable" : "vectorized"; }

namespace internal {

inline std::atomic<bool>& CellReorderFlag() {
  static std::atomic<bool> flag{true};
  return flag;
}

}  // namespace internal

/// Whether grid algorithms lay their SoA views out in cell order
/// (contiguous cell members). Purely a memory-layout choice: labels are
/// bit-identical on or off. Default on.
inline bool SoaCellReorderEnabled() {
  return internal::CellReorderFlag().load(std::memory_order_relaxed);
}
inline void SetSoaCellReorder(bool enabled) {
  internal::CellReorderFlag().store(enabled, std::memory_order_relaxed);
}

/// out[j] = SquaredDistance(q, soa[begin + j]) for j in [0, count).
inline void SquaredDistanceBatch(const PointSetSoA& soa, PointId begin,
                                 PointId count, const double* q, double* out) {
  const int dim = soa.dim();
#if defined(DPC_KERNELS_PORTABLE)
  const PointId stride = soa.size();
  const double* base = soa.Column(0) + begin;
  for (PointId j = 0; j < count; ++j) {
    double s = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = base[static_cast<size_t>(d) * static_cast<size_t>(stride) +
                               static_cast<size_t>(j)] -
                          q[d];
      s += diff * diff;
    }
    out[j] = s;
  }
#else
  // Low dimensions get fused single-pass loops: one traversal of the
  // columns, no intermediate-buffer traffic. The per-point sum is still
  // d0*d0 + d1*d1 (+ d2*d2) in ascending dimension order — the same
  // additions in the same order as the scalar reference (x + 0 is exact),
  // so results stay bit-identical.
  if (dim == 2) {
    const double q0 = q[0], q1 = q[1];
    const double* DPC_KERNELS_RESTRICT c0 = soa.Column(0) + begin;
    const double* DPC_KERNELS_RESTRICT c1 = soa.Column(1) + begin;
    double* DPC_KERNELS_RESTRICT o = out;
#pragma omp simd
    for (PointId j = 0; j < count; ++j) {
      const double d0 = c0[j] - q0;
      const double d1 = c1[j] - q1;
      o[j] = d0 * d0 + d1 * d1;
    }
    return;
  }
  if (dim == 3) {
    const double q0 = q[0], q1 = q[1], q2 = q[2];
    const double* DPC_KERNELS_RESTRICT c0 = soa.Column(0) + begin;
    const double* DPC_KERNELS_RESTRICT c1 = soa.Column(1) + begin;
    const double* DPC_KERNELS_RESTRICT c2 = soa.Column(2) + begin;
    double* DPC_KERNELS_RESTRICT o = out;
#pragma omp simd
    for (PointId j = 0; j < count; ++j) {
      const double d0 = c0[j] - q0;
      const double d1 = c1[j] - q1;
      const double d2 = c2[j] - q2;
      o[j] = (d0 * d0 + d1 * d1) + d2 * d2;
    }
    return;
  }
  if (dim == 1) {
    const double q0 = q[0];
    const double* DPC_KERNELS_RESTRICT c0 = soa.Column(0) + begin;
    double* DPC_KERNELS_RESTRICT o = out;
#pragma omp simd
    for (PointId j = 0; j < count; ++j) {
      const double d0 = c0[j] - q0;
      o[j] = d0 * d0;
    }
    return;
  }
  // General dimensions: column passes into the output buffer, two
  // dimensions fused per pass to halve the buffer round-trips. The fused
  // update o[j] = (o[j] + dA*dA) + dB*dB adds the squares in ascending
  // dimension order — the scalar reference's exact association.
  {
    const double q0 = q[0], q1 = q[1];
    const double* DPC_KERNELS_RESTRICT c0 = soa.Column(0) + begin;
    const double* DPC_KERNELS_RESTRICT c1 = soa.Column(1) + begin;
    double* DPC_KERNELS_RESTRICT o = out;
#pragma omp simd
    for (PointId j = 0; j < count; ++j) {
      const double d0 = c0[j] - q0;
      const double d1 = c1[j] - q1;
      o[j] = d0 * d0 + d1 * d1;
    }
  }
  int d = 2;
  for (; d + 1 < dim; d += 2) {
    const double qa = q[d], qb = q[d + 1];
    const double* DPC_KERNELS_RESTRICT ca = soa.Column(d) + begin;
    const double* DPC_KERNELS_RESTRICT cb = soa.Column(d + 1) + begin;
    double* DPC_KERNELS_RESTRICT o = out;
#pragma omp simd
    for (PointId j = 0; j < count; ++j) {
      const double da = ca[j] - qa;
      const double db = cb[j] - qb;
      o[j] = (o[j] + da * da) + db * db;
    }
  }
  if (d < dim) {
    const double qd = q[d];
    const double* DPC_KERNELS_RESTRICT col = soa.Column(d) + begin;
    double* DPC_KERNELS_RESTRICT o = out;
#pragma omp simd
    for (PointId j = 0; j < count; ++j) {
      const double diff = col[j] - qd;
      o[j] += diff * diff;
    }
  }
#endif
}

/// |{j in [0, count) : SquaredDistance(q, soa[begin + j]) <= r_sq}| —
/// the rho primitive. The query itself counts when it is in the range
/// (distance 0); callers subtract the self-hit.
inline PointId RangeCountBatch(const PointSetSoA& soa, PointId begin,
                               PointId count, const double* q, double r_sq) {
#if defined(DPC_KERNELS_PORTABLE)
  const int dim = soa.dim();
  const PointId stride = soa.size();
  const double* base = soa.Column(0) + begin;
  PointId hits = 0;
  for (PointId j = 0; j < count; ++j) {
    double s = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = base[static_cast<size_t>(d) * static_cast<size_t>(stride) +
                               static_cast<size_t>(j)] -
                          q[d];
      s += diff * diff;
    }
    if (s <= r_sq) ++hits;
  }
  return hits;
#else
  // Low dimensions: fully fused — distance and branchless count in one
  // pass, no intermediate buffer. Same ascending-dimension sums as the
  // scalar reference, and a count is order-insensitive, so the result is
  // exactly the reference's.
  const int dim = soa.dim();
  if (dim == 2) {
    const double q0 = q[0], q1 = q[1];
    const double* DPC_KERNELS_RESTRICT c0 = soa.Column(0) + begin;
    const double* DPC_KERNELS_RESTRICT c1 = soa.Column(1) + begin;
    int64_t local = 0;
#pragma omp simd reduction(+ : local)
    for (PointId j = 0; j < count; ++j) {
      const double d0 = c0[j] - q0;
      const double d1 = c1[j] - q1;
      local += (d0 * d0 + d1 * d1) <= r_sq ? 1 : 0;
    }
    return static_cast<PointId>(local);
  }
  if (dim == 3) {
    const double q0 = q[0], q1 = q[1], q2 = q[2];
    const double* DPC_KERNELS_RESTRICT c0 = soa.Column(0) + begin;
    const double* DPC_KERNELS_RESTRICT c1 = soa.Column(1) + begin;
    const double* DPC_KERNELS_RESTRICT c2 = soa.Column(2) + begin;
    int64_t local = 0;
#pragma omp simd reduction(+ : local)
    for (PointId j = 0; j < count; ++j) {
      const double d0 = c0[j] - q0;
      const double d1 = c1[j] - q1;
      const double d2 = c2[j] - q2;
      local += ((d0 * d0 + d1 * d1) + d2 * d2) <= r_sq ? 1 : 0;
    }
    return static_cast<PointId>(local);
  }
  constexpr PointId kTile = 512;
  double buf[kTile];
  PointId hits = 0;
  for (PointId t0 = 0; t0 < count; t0 += kTile) {
    const PointId len = std::min<PointId>(kTile, count - t0);
    SquaredDistanceBatch(soa, begin + t0, len, q, buf);
    int64_t local = 0;
#pragma omp simd reduction(+ : local)
    for (PointId j = 0; j < len; ++j) {
      local += buf[j] <= r_sq ? 1 : 0;
    }
    hits += static_cast<PointId>(local);
  }
  return hits;
#endif
}

/// Result of MinDistanceBatch: the SoA position of the closest point and
/// its squared distance. Ties resolve to the LOWEST position (identical
/// to an ascending scalar scan with a strict '<' update).
struct MinResult {
  PointId pos = -1;
  double d_sq = std::numeric_limits<double>::infinity();
};

/// argmin_j SquaredDistance(q, soa[begin + j]) over [0, count) — the
/// delta primitive for predicate-free nearest-neighbor scans.
inline MinResult MinDistanceBatch(const PointSetSoA& soa, PointId begin,
                                  PointId count, const double* q) {
  MinResult best;
#if defined(DPC_KERNELS_PORTABLE)
  const int dim = soa.dim();
  const PointId stride = soa.size();
  const double* base = soa.Column(0) + begin;
  for (PointId j = 0; j < count; ++j) {
    double s = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = base[static_cast<size_t>(d) * static_cast<size_t>(stride) +
                               static_cast<size_t>(j)] -
                          q[d];
      s += diff * diff;
    }
    if (s < best.d_sq) {
      best.d_sq = s;
      best.pos = begin + j;
    }
  }
#else
  constexpr PointId kTile = 512;
  double buf[kTile];
  for (PointId t0 = 0; t0 < count; t0 += kTile) {
    const PointId len = std::min<PointId>(kTile, count - t0);
    SquaredDistanceBatch(soa, begin + t0, len, q, buf);
    double m = std::numeric_limits<double>::infinity();
#pragma omp simd reduction(min : m)
    for (PointId j = 0; j < len; ++j) {
      m = buf[j] < m ? buf[j] : m;
    }
    // Strict '<' keeps the earliest tile on cross-tile ties; the inner
    // find keeps the earliest position within the tile — together,
    // exactly the ascending scalar scan's answer.
    if (m < best.d_sq) {
      for (PointId j = 0; j < len; ++j) {
        if (buf[j] == m) {
          best.d_sq = m;
          best.pos = begin + t0 + j;
          break;
        }
      }
    }
  }
#endif
  return best;
}

/// out[j] = sum_d a[d] * soa[begin + j][d] — the projection primitive of
/// the LSH build (accumulation in ascending dimension order, matching a
/// scalar dot product bit for bit).
inline void DotBatch(const PointSetSoA& soa, PointId begin, PointId count,
                     const double* a, double* out) {
  const int dim = soa.dim();
#if defined(DPC_KERNELS_PORTABLE)
  const PointId stride = soa.size();
  const double* base = soa.Column(0) + begin;
  for (PointId j = 0; j < count; ++j) {
    double s = 0.0;
    for (int d = 0; d < dim; ++d) {
      s += a[d] * base[static_cast<size_t>(d) * static_cast<size_t>(stride) +
                       static_cast<size_t>(j)];
    }
    out[j] = s;
  }
#else
  {
    const double ad = a[0];
    const double* DPC_KERNELS_RESTRICT col = soa.Column(0) + begin;
    double* DPC_KERNELS_RESTRICT o = out;
#pragma omp simd
    for (PointId j = 0; j < count; ++j) o[j] = ad * col[j];
  }
  for (int d = 1; d < dim; ++d) {
    const double ad = a[d];
    const double* DPC_KERNELS_RESTRICT col = soa.Column(d) + begin;
    double* DPC_KERNELS_RESTRICT o = out;
#pragma omp simd
    for (PointId j = 0; j < count; ++j) o[j] += ad * col[j];
  }
#endif
}

/// out[k] = SquaredDistance(q, points[ids[k]]) — the gather fallback for
/// loops whose candidates are scattered ids (LSH buckets, dynamic-tree
/// leaf buckets) where a transposed view cannot pay for itself. Row-major
/// reads; per-point arithmetic is the scalar reference verbatim.
inline void SquaredDistanceGather(const PointSet& points, const PointId* ids,
                                  PointId count, const double* q, double* out) {
  const int dim = points.dim();
  for (PointId k = 0; k < count; ++k) {
    out[k] = SquaredDistance(q, points[ids[k]], dim);
  }
}

}  // namespace dpc::kernels

#endif  // DPC_CORE_KERNELS_H_
