// Minimal Status / StatusOr error-handling vocabulary used across the
// library boundary (I/O, the algorithm registry, CLI plumbing). Hot paths
// never touch these; they exist so examples and tools can report failures
// without exceptions.
#ifndef DPC_CORE_STATUS_H_
#define DPC_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace dpc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
};

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case StatusCode::kOk:
        name = "OK";
        break;
      case StatusCode::kInvalidArgument:
        name = "INVALID_ARGUMENT";
        break;
      case StatusCode::kNotFound:
        name = "NOT_FOUND";
        break;
      case StatusCode::kIoError:
        name = "IO_ERROR";
        break;
      case StatusCode::kUnimplemented:
        name = "UNIMPLEMENTED";
        break;
      case StatusCode::kInternal:
        name = "INTERNAL";
        break;
      case StatusCode::kDeadlineExceeded:
        name = "DEADLINE_EXCEEDED";
        break;
      case StatusCode::kCancelled:
        name = "CANCELLED";
        break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error. Callers must check ok() before value().
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}            // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}    // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dpc

#endif  // DPC_CORE_STATUS_H_
