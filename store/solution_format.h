// Versioned binary encoding of DpcSolution — the unit the solution log
// stores and the buffer pool caches.
//
// Layout (little-endian, raw doubles, same idiom as data/io.h SaveBinary):
//
//   magic[4] = "DPSN"     | format version u32
//   points_fingerprint u64
//   d_cut f64 | epsilon f64 | compute_cost_seconds f64 | flags u32
//   algorithm: len u32 + bytes
//   rho:           count i64 + count f64
//   delta:         count i64 + count f64
//   dependency:    count i64 + count i64
//   density_order: count i64 + count i64   (empty for interrupted solves)
//   checksum u64 = FNV-1a over every preceding byte
//
// The checksum makes a record self-verifying independent of the log's
// framing checksum, so a payload spliced out of a compacted log is still
// checkable. Doubles round-trip bit-exactly (raw bytes), which is what
// makes the serve-layer promotion path bit-identical to in-memory.
//
// SerializedSolutionBytes() computes the encoded size WITHOUT encoding —
// the serve-layer cache uses it for byte-accurate GreedyDual accounting.

#ifndef DPC_STORE_SOLUTION_FORMAT_H_
#define DPC_STORE_SOLUTION_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/hash.h"
#include "core/dpc.h"
#include "core/status.h"

namespace dpc::store {

inline constexpr char kSolutionMagic[4] = {'D', 'P', 'S', 'N'};
inline constexpr uint32_t kSolutionFormatVersion = 1;

namespace internal {

/// Solution flags (bit set) persisted in the header.
inline constexpr uint32_t kFlagInterrupted = 1u;

template <typename T>
inline void AppendRaw(const T& v, std::string* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
inline void AppendArray(const std::vector<T>& v, std::string* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendRaw(static_cast<int64_t>(v.size()), out);
  if (!v.empty()) {
    out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
  }
}

/// Bounds-checked sequential reader over an encoded buffer.
class Reader {
 public:
  Reader(const char* data, size_t size) : p_(data), left_(size) {}

  template <typename T>
  bool Read(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (left_ < sizeof(T)) return false;
    std::memcpy(v, p_, sizeof(T));
    p_ += sizeof(T);
    left_ -= sizeof(T);
    return true;
  }

  template <typename T>
  bool ReadArray(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    int64_t count = 0;
    if (!Read(&count) || count < 0) return false;
    const uint64_t bytes = static_cast<uint64_t>(count) * sizeof(T);
    if (bytes > left_) return false;
    v->resize(static_cast<size_t>(count));
    if (count > 0) std::memcpy(v->data(), p_, bytes);
    p_ += bytes;
    left_ -= bytes;
    return true;
  }

  bool ReadBytes(std::string* out, size_t n) {
    if (left_ < n) return false;
    out->assign(p_, n);
    p_ += n;
    left_ -= n;
    return true;
  }

  size_t left() const { return left_; }

 private:
  const char* p_;
  size_t left_;
};

}  // namespace internal

/// Exact EncodeSolution output size — keep in sync with EncodeSolution
/// (store_test asserts equality).
inline size_t SerializedSolutionBytes(const DpcSolution& s) {
  size_t bytes = sizeof(kSolutionMagic) + sizeof(uint32_t);  // magic + version
  bytes += sizeof(uint64_t);                                 // fingerprint
  bytes += 3 * sizeof(double) + sizeof(uint32_t);  // params, cost, flags
  bytes += sizeof(uint32_t) + s.algorithm.size();  // algorithm
  bytes += 4 * sizeof(int64_t);                    // the four array counts
  bytes += (s.rho.size() + s.delta.size()) * sizeof(double);
  bytes += (s.dependency.size() + s.density_order.size()) * sizeof(PointId);
  bytes += sizeof(uint64_t);  // checksum
  return bytes;
}

inline void EncodeSolution(const DpcSolution& s, std::string* out) {
  out->clear();
  out->reserve(SerializedSolutionBytes(s));
  out->append(kSolutionMagic, sizeof(kSolutionMagic));
  internal::AppendRaw(kSolutionFormatVersion, out);
  internal::AppendRaw(s.points_fingerprint, out);
  internal::AppendRaw(s.compute.d_cut, out);
  internal::AppendRaw(s.compute.epsilon, out);
  internal::AppendRaw(s.compute_cost_seconds, out);
  const uint32_t flags = s.interrupted() ? internal::kFlagInterrupted : 0u;
  internal::AppendRaw(flags, out);
  internal::AppendRaw(static_cast<uint32_t>(s.algorithm.size()), out);
  out->append(s.algorithm);
  internal::AppendArray(s.rho, out);
  internal::AppendArray(s.delta, out);
  internal::AppendArray(s.dependency, out);
  internal::AppendArray(s.density_order, out);
  const uint64_t checksum = Fnv1aBytes(out->data(), out->size());
  internal::AppendRaw(checksum, out);
}

inline StatusOr<DpcSolution> DecodeSolution(const char* data, size_t size) {
  if (size < sizeof(kSolutionMagic) + sizeof(uint32_t) + sizeof(uint64_t)) {
    return Status::InvalidArgument("solution record too short");
  }
  // Verify the trailing checksum before trusting any field.
  uint64_t stored = 0;
  std::memcpy(&stored, data + size - sizeof(uint64_t), sizeof(uint64_t));
  if (Fnv1aBytes(data, size - sizeof(uint64_t)) != stored) {
    return Status::InvalidArgument("solution record checksum mismatch");
  }
  internal::Reader r(data, size - sizeof(uint64_t));
  char magic[sizeof(kSolutionMagic)];
  if (!r.Read(&magic) ||
      std::memcmp(magic, kSolutionMagic, sizeof(kSolutionMagic)) != 0) {
    return Status::InvalidArgument("bad solution record magic");
  }
  uint32_t version = 0;
  if (!r.Read(&version)) {
    return Status::InvalidArgument("solution record truncated");
  }
  if (version != kSolutionFormatVersion) {
    return Status::InvalidArgument("unsupported solution format version " +
                                   std::to_string(version));
  }
  DpcSolution s;
  uint32_t flags = 0;
  uint32_t algo_len = 0;
  if (!r.Read(&s.points_fingerprint) || !r.Read(&s.compute.d_cut) ||
      !r.Read(&s.compute.epsilon) || !r.Read(&s.compute_cost_seconds) ||
      !r.Read(&flags) || !r.Read(&algo_len) ||
      !r.ReadBytes(&s.algorithm, algo_len) || !r.ReadArray(&s.rho) ||
      !r.ReadArray(&s.delta) || !r.ReadArray(&s.dependency) ||
      !r.ReadArray(&s.density_order) || r.left() != 0) {
    return Status::InvalidArgument("solution record truncated");
  }
  if (s.delta.size() != s.rho.size() || s.dependency.size() != s.rho.size() ||
      (!s.density_order.empty() && s.density_order.size() != s.rho.size())) {
    return Status::InvalidArgument("solution record arrays disagree on n");
  }
  s.stats.interrupted = (flags & internal::kFlagInterrupted) != 0;
  return s;
}

inline StatusOr<DpcSolution> DecodeSolution(const std::string& buf) {
  return DecodeSolution(buf.data(), buf.size());
}

}  // namespace dpc::store

#endif  // DPC_STORE_SOLUTION_FORMAT_H_
