// SolutionStore — the persistence facade the serve layer talks to:
//
//   Put(key, solution)  encode → append to the log → directory points at
//                       the new record (old one is superseded in place,
//                       reclaimed at the next compaction)
//   Fetch(key)          buffer pool hit, else log read + decode (admitted
//                       to the pool); null on absent or damaged records —
//                       a damaged key goes cold, it never throws
//   Erase(key)          tombstone append + directory/pool removal
//   Compact()           rewrite live records to <path>.compact, atomic
//                       rename over the log, rebuild offsets
//
// Disk budget: when the log grows past disk_budget_bytes, the oldest puts
// are evicted until the LIVE set fits, then a compaction materializes the
// reclaim. Put never fails for budget reasons — the budget bounds the
// file between enforcement points, not mid-append.
//
// Thread safety: one mutex over directory + pool + compaction (the log
// has its own for raw appends/reads). Fetch holds it across the disk
// read — promotion convoys serialize on the store, never on the serve
// cache's lock (serve/solution_cache.h calls the store OUTSIDE its own
// critical sections).

#ifndef DPC_STORE_SOLUTION_STORE_H_
#define DPC_STORE_SOLUTION_STORE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/dpc.h"
#include "core/status.h"
#include "store/buffer_pool.h"
#include "store/directory.h"
#include "store/solution_format.h"
#include "store/solution_log.h"

namespace dpc::store {

struct SolutionStoreOptions {
  /// Log-size ceiling; 0 = unbounded. Enforced by oldest-first eviction
  /// plus compaction whenever an append pushes the file past it.
  uint64_t disk_budget_bytes = 0;
  /// Budget for the pool of deserialized solutions (decode-once reads).
  size_t buffer_pool_bytes = 8u << 20;
  /// Appends per group commit; 1 (default) flushes every append.
  size_t group_commit_appends = 1;
};

class SolutionStore {
 public:
  struct Stats {
    uint64_t puts = 0;
    uint64_t erases = 0;
    uint64_t fetches = 0;
    uint64_t pool_hits = 0;         ///< fetches served without touching disk
    uint64_t log_reads = 0;         ///< fetches that read + decoded the log
    uint64_t decode_failures = 0;   ///< damaged records dropped at fetch
    uint64_t compactions = 0;
    uint64_t budget_evictions = 0;  ///< keys dropped by the disk budget
    uint64_t log_bytes = 0;         ///< current on-disk file size
    uint64_t live_solutions = 0;    ///< directory size
    uint64_t live_payload_bytes = 0;
    uint64_t pool_bytes_in_use = 0;
  };

  /// Opens (creating if absent) the store whose log lives at `path`,
  /// replaying the log to rebuild the directory. Torn tails are
  /// truncated; a file that is not a solution log is an IoError.
  static StatusOr<std::unique_ptr<SolutionStore>> Open(
      const std::string& path, const SolutionStoreOptions& options = {}) {
    std::vector<LogRecord> records;
    auto log = SolutionLog::Open(path, options.group_commit_appends, &records);
    if (!log.ok()) return log.status();
    std::unique_ptr<SolutionStore> s(
        new SolutionStore(path, options, std::move(log).value()));
    for (const LogRecord& rec : records) {
      if (rec.type == kRecordPut) {
        s->dir_.Put(rec.key, DirectoryEntry{rec.payload_offset,
                                            rec.payload_bytes, s->next_seq_++});
      } else {
        s->dir_.Erase(rec.key);
      }
    }
    return s;
  }

  /// Durably records `solution` under `key` (write-through: the record is
  /// in the OS page cache when this returns under the default group of 1).
  Status Put(const std::string& key, const DpcSolution& solution) {
    std::string payload;
    EncodeSolution(solution, &payload);
    std::lock_guard<std::mutex> lock(mu_);
    auto offset = log_->Append(kRecordPut, key, payload);
    if (!offset.ok()) return offset.status();
    dir_.Put(key, DirectoryEntry{offset.value(),
                                 static_cast<uint64_t>(payload.size()),
                                 next_seq_++});
    pool_.Erase(key);  // a superseded pooled copy must not be served
    ++puts_;
    return EnforceDiskBudgetLocked();
  }

  /// Returns the stored solution or null (absent, or damaged — the
  /// damaged key is dropped so the caller simply goes cold for it).
  std::shared_ptr<const DpcSolution> Fetch(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    ++fetches_;
    if (auto pooled = pool_.Get(key)) {
      ++pool_hits_;
      return pooled;
    }
    const DirectoryEntry* entry = dir_.Find(key);
    if (entry == nullptr) return nullptr;
    std::string payload;
    Status read = log_->ReadPayload(entry->offset, entry->payload_bytes,
                                    &payload);
    if (read.ok()) ++log_reads_;
    StatusOr<DpcSolution> decoded =
        read.ok() ? DecodeSolution(payload)
                  : StatusOr<DpcSolution>(read);
    if (!decoded.ok()) {
      ++decode_failures_;
      dir_.Erase(key);
      return nullptr;
    }
    auto sp = std::make_shared<const DpcSolution>(std::move(decoded).value());
    pool_.Put(key, sp, payload.size());
    return sp;
  }

  bool Contains(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return dir_.Find(key) != nullptr;
  }

  /// Tombstones `key`; the payload is reclaimed at the next compaction.
  Status Erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    if (dir_.Find(key) == nullptr) return Status::Ok();
    auto offset = log_->Append(kRecordErase, key, std::string());
    if (!offset.ok()) return offset.status();
    dir_.Erase(key);
    pool_.Erase(key);
    ++erases_;
    return Status::Ok();
  }

  /// Forces any pending group commit to the OS.
  Status Flush() { return log_->Commit(); }

  /// Rewrites the log keeping only live records (newest version of each
  /// directory key; tombstoned, superseded and budget-evicted records
  /// are dropped), then atomically renames it into place.
  Status Compact() {
    std::lock_guard<std::mutex> lock(mu_);
    return CompactLocked();
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    Stats out;
    out.puts = puts_;
    out.erases = erases_;
    out.fetches = fetches_;
    out.pool_hits = pool_hits_;
    out.log_reads = log_reads_;
    out.decode_failures = decode_failures_;
    out.compactions = compactions_;
    out.budget_evictions = budget_evictions_;
    out.log_bytes = log_->size_bytes();
    out.live_solutions = dir_.size();
    out.live_payload_bytes = dir_.live_payload_bytes();
    out.pool_bytes_in_use = pool_.bytes_in_use();
    return out;
  }

  const std::string& path() const { return path_; }

 private:
  SolutionStore(std::string path, const SolutionStoreOptions& options,
                std::unique_ptr<SolutionLog> log)
      : path_(std::move(path)),
        options_(options),
        log_(std::move(log)),
        pool_(options.buffer_pool_bytes) {}

  /// On-disk bytes the live set would occupy in a fresh log.
  uint64_t LiveFileBytesLocked() const {
    uint64_t bytes = SolutionLog::kHeaderBytes;
    dir_.ForEach([&](const std::string& key, const DirectoryEntry& entry) {
      bytes += SolutionLog::RecordBytes(key.size(), entry.payload_bytes);
    });
    return bytes;
  }

  Status EnforceDiskBudgetLocked() {
    if (options_.disk_budget_bytes == 0 ||
        log_->size_bytes() <= options_.disk_budget_bytes) {
      return Status::Ok();
    }
    // Evict oldest puts until the live set fits, then materialize the
    // reclaim. Keep at least the newest record: a budget smaller than one
    // solution still stores the latest (the bound is then best-effort).
    while (dir_.size() > 1 &&
           LiveFileBytesLocked() > options_.disk_budget_bytes) {
      dir_.Erase(dir_.OldestKey());
      ++budget_evictions_;
    }
    return CompactLocked();
  }

  Status CompactLocked() {
    const std::string tmp_path = path_ + ".compact";
    std::remove(tmp_path.c_str());
    // Snapshot live payloads from the old log before touching the file.
    std::vector<std::pair<std::string, std::string>> live;
    live.reserve(dir_.size());
    Status failed = Status::Ok();
    dir_.ForEach([&](const std::string& key, const DirectoryEntry& entry) {
      if (!failed.ok()) return;
      std::string payload;
      Status read =
          log_->ReadPayload(entry.offset, entry.payload_bytes, &payload);
      if (!read.ok()) {
        failed = read;
        return;
      }
      live.emplace_back(key, std::move(payload));
    });
    if (!failed.ok()) return failed;
    {
      std::vector<LogRecord> none;
      auto tmp = SolutionLog::Open(tmp_path, /*group_commit_appends=*/
                                   live.size() + 1, &none);
      if (!tmp.ok()) return tmp.status();
      for (const auto& [key, payload] : live) {
        auto offset = tmp.value()->Append(kRecordPut, key, payload);
        if (!offset.ok()) return offset.status();
      }
      Status commit = tmp.value()->Commit();
      if (!commit.ok()) return commit;
      // tmp's FILE closes here, before the rename.
    }
    log_.reset();  // close the old log before renaming over it
    if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
      return Status::IoError("solution log compaction rename failed: " +
                             path_);
    }
    std::vector<LogRecord> records;
    auto reopened =
        SolutionLog::Open(path_, options_.group_commit_appends, &records);
    if (!reopened.ok()) return reopened.status();
    log_ = std::move(reopened).value();
    Directory fresh;
    for (const LogRecord& rec : records) {
      fresh.Put(rec.key, DirectoryEntry{rec.payload_offset, rec.payload_bytes,
                                        next_seq_++});
    }
    dir_ = std::move(fresh);
    ++compactions_;
    return Status::Ok();
  }

  const std::string path_;
  const SolutionStoreOptions options_;
  mutable std::mutex mu_;
  std::unique_ptr<SolutionLog> log_;
  Directory dir_;
  BufferPool pool_;
  uint64_t next_seq_ = 0;
  uint64_t puts_ = 0;
  uint64_t erases_ = 0;
  uint64_t fetches_ = 0;
  uint64_t pool_hits_ = 0;
  uint64_t log_reads_ = 0;
  uint64_t decode_failures_ = 0;
  uint64_t compactions_ = 0;
  uint64_t budget_evictions_ = 0;
};

}  // namespace dpc::store

#endif  // DPC_STORE_SOLUTION_STORE_H_
