// Fingerprint-keyed in-memory directory over the solution log: maps a
// solution key (serve/solution_cache.h MakeSolutionKey — fingerprint,
// algorithm, canonical options, compute params) to the offset of its
// newest payload. Rebuilt from scratch by log replay at startup; a later
// put for the same key supersedes the earlier record (the stale one is
// dropped at the next compaction), a tombstone removes the key.
//
// Not internally locked — SolutionStore's mutex owns it (same discipline
// as the rest of the store internals).

#ifndef DPC_STORE_DIRECTORY_H_
#define DPC_STORE_DIRECTORY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dpc::store {

struct DirectoryEntry {
  uint64_t offset = 0;         ///< byte offset of the payload in the log
  uint64_t payload_bytes = 0;  ///< encoded solution size
  uint64_t seq = 0;            ///< monotone put sequence (age for eviction)
};

class Directory {
 public:
  /// Inserts or supersedes. live_payload_bytes() tracks the delta.
  void Put(const std::string& key, const DirectoryEntry& entry) {
    auto [it, inserted] = map_.try_emplace(key, entry);
    if (!inserted) {
      live_bytes_ -= it->second.payload_bytes;
      it->second = entry;
    }
    live_bytes_ += entry.payload_bytes;
  }

  bool Erase(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    live_bytes_ -= it->second.payload_bytes;
    map_.erase(it);
    return true;
  }

  const DirectoryEntry* Find(const std::string& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Sum of live payload bytes — the store's occupancy if it were
  /// perfectly compacted (log framing overhead excluded).
  uint64_t live_payload_bytes() const { return live_bytes_; }

  /// Key of the oldest put (smallest seq), or empty when the directory
  /// is. Disk-budget eviction drops in this order.
  std::string OldestKey() const {
    std::string oldest;
    uint64_t best = ~0ull;
    for (const auto& [key, entry] : map_) {
      if (entry.seq < best) {
        best = entry.seq;
        oldest = key;
      }
    }
    return oldest;
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, entry] : map_) fn(key, entry);
  }

 private:
  std::unordered_map<std::string, DirectoryEntry> map_;
  uint64_t live_bytes_ = 0;
};

}  // namespace dpc::store

#endif  // DPC_STORE_DIRECTORY_H_
