// Append-only solution log: the durable half of the solution store.
//
// File layout:
//
//   header: magic[8] = "DPCLOG1\n"
//   record: magic u32 = 0x44504352 ("RCPD" on disk, little-endian)
//           type u8 (1 = put, 2 = erase/tombstone)
//           key_len u32 | payload_len u64
//           key bytes | payload bytes
//           checksum u64 = FNV-1a over type..payload (everything after
//                          the record magic, before the checksum)
//
// Appends are buffered and flushed to the OS every group_commit_appends
// records (group commit): a kill -9 between flushes loses at most one
// group, never corrupts earlier records. The default group of 1 makes
// every append process-crash durable the moment Append returns (the page
// cache survives the process; fsync-against-power-loss is the OS's job
// on close and is deliberately not on the serving path).
//
// Open() replays the file front to back. The first record that fails any
// check — short read, bad magic, absurd length, checksum mismatch — ends
// the replay: everything before it is served, the torn tail is truncated
// away so the next append starts on a clean boundary. A damaged file
// never fails Open; it just comes back shorter.

#ifndef DPC_STORE_SOLUTION_LOG_H_
#define DPC_STORE_SOLUTION_LOG_H_

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/hash.h"
#include "core/status.h"

namespace dpc::store {

inline constexpr char kLogMagic[8] = {'D', 'P', 'C', 'L', 'O', 'G', '1', '\n'};
inline constexpr uint32_t kRecordMagic = 0x44504352u;
inline constexpr uint8_t kRecordPut = 1;
inline constexpr uint8_t kRecordErase = 2;

/// Framing sanity bounds: a length field past these is treated as torn,
/// not honored (a corrupt u64 must not drive a multi-GB resize).
inline constexpr uint32_t kMaxKeyBytes = 1u << 20;
inline constexpr uint64_t kMaxPayloadBytes = 1ull << 32;

/// One replayed record: what Open() hands back so the owner can rebuild
/// its directory without re-reading payloads.
struct LogRecord {
  uint8_t type = kRecordPut;
  std::string key;
  uint64_t payload_offset = 0;
  uint64_t payload_bytes = 0;
};

class SolutionLog {
 public:
  SolutionLog(const SolutionLog&) = delete;
  SolutionLog& operator=(const SolutionLog&) = delete;

  ~SolutionLog() {
    if (file_ != nullptr) {
      std::fflush(file_);
      std::fclose(file_);
    }
  }

  /// Opens (creating if absent) the log at `path`, replays every valid
  /// record into *replayed, and truncates any torn tail.
  static StatusOr<std::unique_ptr<SolutionLog>> Open(
      const std::string& path, size_t group_commit_appends,
      std::vector<LogRecord>* replayed) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    const bool fresh = f == nullptr;
    if (fresh) f = std::fopen(path.c_str(), "w+b");
    if (f == nullptr) {
      return Status::IoError("cannot open solution log: " + path);
    }
    std::unique_ptr<SolutionLog> log(
        new SolutionLog(path, f, group_commit_appends));
    if (fresh) {
      if (std::fwrite(kLogMagic, 1, sizeof(kLogMagic), f) !=
          sizeof(kLogMagic)) {
        return Status::IoError("cannot write solution log header: " + path);
      }
      std::fflush(f);
      log->end_offset_ = sizeof(kLogMagic);
      replayed->clear();
      return log;
    }
    Status replay = log->Replay(replayed);
    if (!replay.ok()) return replay;
    return log;
  }

  /// Appends one record and returns the byte offset of its payload.
  /// Flushes every group_commit_appends-th append; call Commit() to
  /// force the pending group out early (e.g. before handing a response
  /// to a client).
  StatusOr<uint64_t> Append(uint8_t type, const std::string& key,
                            const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    if (key.size() > kMaxKeyBytes || payload.size() > kMaxPayloadBytes) {
      return Status::InvalidArgument("solution log record too large");
    }
    if (std::fseek(file_, static_cast<long>(end_offset_), SEEK_SET) != 0) {
      return Status::IoError("solution log seek failed");
    }
    // Frame head + body staged in one buffer so a record hits the FILE
    // buffer as a unit.
    std::string rec;
    rec.reserve(kRecordHeadBytes + key.size() + payload.size() +
                sizeof(uint64_t));
    AppendRaw(kRecordMagic, &rec);
    AppendRaw(type, &rec);
    AppendRaw(static_cast<uint32_t>(key.size()), &rec);
    AppendRaw(static_cast<uint64_t>(payload.size()), &rec);
    rec.append(key);
    rec.append(payload);
    const uint64_t checksum =
        Fnv1aBytes(rec.data() + sizeof(kRecordMagic),
                   rec.size() - sizeof(kRecordMagic));
    AppendRaw(checksum, &rec);
    if (std::fwrite(rec.data(), 1, rec.size(), file_) != rec.size()) {
      return Status::IoError("solution log append failed");
    }
    const uint64_t payload_offset =
        end_offset_ + kRecordHeadBytes + key.size();
    end_offset_ += rec.size();
    if (++pending_appends_ >= group_commit_appends_) CommitLocked();
    return payload_offset;
  }

  /// Flushes any pending group to the OS.
  Status Commit() {
    std::lock_guard<std::mutex> lock(mu_);
    CommitLocked();
    return Status::Ok();
  }

  /// Reads `bytes` payload bytes at `offset` (an offset Append or Open
  /// returned). Safe against in-flight groups: the write buffer is
  /// flushed before reading.
  Status ReadPayload(uint64_t offset, uint64_t bytes, std::string* out) {
    std::lock_guard<std::mutex> lock(mu_);
    CommitLocked();
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IoError("solution log seek failed");
    }
    out->resize(static_cast<size_t>(bytes));
    if (bytes > 0 &&
        std::fread(out->data(), 1, out->size(), file_) != out->size()) {
      return Status::IoError("solution log short read");
    }
    return Status::Ok();
  }

  /// Total file size in bytes (header + all records, committed or not).
  uint64_t size_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return end_offset_;
  }

  const std::string& path() const { return path_; }

  /// Exact on-disk footprint of one record with this key/payload size —
  /// what disk-budget accounting charges per live entry.
  static uint64_t RecordBytes(size_t key_bytes, uint64_t payload_bytes) {
    return kRecordHeadBytes + key_bytes + payload_bytes + sizeof(uint64_t);
  }

  static constexpr uint64_t kHeaderBytes = sizeof(kLogMagic);

 private:
  static constexpr uint64_t kRecordHeadBytes =
      sizeof(uint32_t) + sizeof(uint8_t) + sizeof(uint32_t) + sizeof(uint64_t);

  SolutionLog(std::string path, std::FILE* file, size_t group_commit_appends)
      : path_(std::move(path)),
        file_(file),
        group_commit_appends_(group_commit_appends == 0
                                  ? 1
                                  : group_commit_appends) {}

  template <typename T>
  static void AppendRaw(const T& v, std::string* out) {
    out->append(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  void CommitLocked() {
    if (pending_appends_ > 0) std::fflush(file_);
    pending_appends_ = 0;
  }

  /// Front-to-back replay; stops at the first invalid record and
  /// truncates the file there.
  Status Replay(std::vector<LogRecord>* replayed) {
    replayed->clear();
    std::rewind(file_);
    char magic[sizeof(kLogMagic)];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kLogMagic, sizeof(kLogMagic)) != 0) {
      return Status::IoError("not a solution log (bad header): " + path_);
    }
    uint64_t valid_end = sizeof(kLogMagic);
    for (;;) {
      LogRecord rec;
      std::string body;  // type..payload — the checksummed span
      uint32_t rec_magic = 0;
      uint32_t key_len = 0;
      uint64_t payload_len = 0;
      uint64_t stored_checksum = 0;
      if (!ReadRaw(&rec_magic) || rec_magic != kRecordMagic) break;
      if (!ReadRaw(&rec.type) ||
          (rec.type != kRecordPut && rec.type != kRecordErase)) {
        break;
      }
      if (!ReadRaw(&key_len) || key_len > kMaxKeyBytes) break;
      if (!ReadRaw(&payload_len) || payload_len > kMaxPayloadBytes) break;
      rec.key.resize(key_len);
      if (key_len > 0 &&
          std::fread(rec.key.data(), 1, key_len, file_) != key_len) {
        break;
      }
      rec.payload_offset = valid_end + kRecordHeadBytes + key_len;
      rec.payload_bytes = payload_len;
      body.resize(static_cast<size_t>(payload_len));
      if (payload_len > 0 &&
          std::fread(body.data(), 1, body.size(), file_) != body.size()) {
        break;
      }
      if (!ReadRaw(&stored_checksum)) break;
      uint64_t h = Fnv1aBytes(&rec.type, sizeof(rec.type));
      h = Fnv1aBytes(&key_len, sizeof(key_len), h);
      h = Fnv1aBytes(&payload_len, sizeof(payload_len), h);
      h = Fnv1aBytes(rec.key.data(), rec.key.size(), h);
      h = Fnv1aBytes(body.data(), body.size(), h);
      if (h != stored_checksum) break;
      valid_end = rec.payload_offset + payload_len + sizeof(uint64_t);
      replayed->push_back(std::move(rec));
    }
    // Drop the torn tail so the next append starts on a record boundary.
    if (ftruncate(fileno(file_), static_cast<off_t>(valid_end)) != 0) {
      return Status::IoError("solution log truncate failed: " + path_);
    }
    std::fseek(file_, 0, SEEK_END);
    end_offset_ = valid_end;
    return Status::Ok();
  }

  template <typename T>
  bool ReadRaw(T* v) {
    return std::fread(v, 1, sizeof(T), file_) == sizeof(T);
  }

  const std::string path_;
  std::FILE* file_ = nullptr;
  const size_t group_commit_appends_;
  mutable std::mutex mu_;
  uint64_t end_offset_ = 0;
  size_t pending_appends_ = 0;
};

}  // namespace dpc::store

#endif  // DPC_STORE_SOLUTION_LOG_H_
