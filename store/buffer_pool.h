// Fixed-budget pool of deserialized solutions, fronting the log: a Fetch
// that hits the pool skips the disk read AND the decode. Plain LRU with
// byte-accurate accounting (an entry is charged its encoded size, the
// same number the serve-layer cache charges, so the two tiers' budgets
// speak the same unit).
//
// Not internally locked — SolutionStore's mutex owns it.

#ifndef DPC_STORE_BUFFER_POOL_H_
#define DPC_STORE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/dpc.h"

namespace dpc::store {

class BufferPool {
 public:
  explicit BufferPool(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

  /// Returns the pooled solution (refreshing its recency) or null.
  std::shared_ptr<const DpcSolution> Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->solution;
  }

  /// Admits `solution`, evicting least-recently-used entries until it
  /// fits. An entry larger than the whole budget is not admitted (the
  /// caller still has its shared_ptr; the pool just won't retain it).
  void Put(const std::string& key, std::shared_ptr<const DpcSolution> solution,
           size_t bytes) {
    Erase(key);
    if (bytes > budget_bytes_) return;
    while (bytes_in_use_ + bytes > budget_bytes_ && !lru_.empty()) {
      EvictBack();
    }
    lru_.push_front(Node{key, std::move(solution), bytes});
    index_[key] = lru_.begin();
    bytes_in_use_ += bytes;
    ++insertions_;
  }

  void Erase(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    bytes_in_use_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }

  size_t bytes_in_use() const { return bytes_in_use_; }
  size_t budget_bytes() const { return budget_bytes_; }
  size_t entries() const { return index_.size(); }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const { return Stats{hits_, misses_, insertions_, evictions_}; }

 private:
  struct Node {
    std::string key;
    std::shared_ptr<const DpcSolution> solution;
    size_t bytes = 0;
  };

  void EvictBack() {
    const Node& victim = lru_.back();
    bytes_in_use_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }

  const size_t budget_bytes_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  size_t bytes_in_use_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace dpc::store

#endif  // DPC_STORE_BUFFER_POOL_H_
