// Stand-ins for the paper's four real datasets (§6.1). The originals
// (Airline, Household, PAMAP2, Sensor) cannot ship with the repo, so each
// spec records the published dimensionality, cardinality, and default
// d_cut, and MakeRealLike() synthesizes a clustered distribution with the
// same shape parameters on the paper's normalized [0, 1e5] domain. Every
// spec is deterministic: the same (spec, n) always yields the same bytes.
#ifndef DPC_DATA_REAL_LIKE_H_
#define DPC_DATA_REAL_LIKE_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/dpc.h"
#include "data/generators.h"

namespace dpc::data {

struct RealDatasetSpec {
  std::string name;
  int dim = 2;
  double domain = 1e5;
  PointId default_cardinality = 0;  ///< the paper's full dataset size
  double default_d_cut = 1000.0;    ///< the paper's default cutoff
  int num_modes = 24;               ///< mixture components in the stand-in
  uint64_t seed = 0;
};

/// The four workloads, in the paper's order.
inline const std::vector<RealDatasetSpec>& RealDatasetSpecs() {
  static const std::vector<RealDatasetSpec> kSpecs = {
      {"Airline", 3, 1e5, 5810462, 1000.0, 32, 101},
      {"Household", 7, 1e5, 2049280, 1000.0, 24, 102},
      {"PAMAP2", 4, 1e5, 3850505, 1000.0, 28, 103},
      {"Sensor", 8, 1e5, 2219803, 5000.0, 20, 104},
  };
  return kSpecs;
}

/// Fallible lookup for user-supplied names; nullptr when unknown.
inline const RealDatasetSpec* FindRealDatasetSpec(const std::string& name) {
  for (const auto& spec : RealDatasetSpecs()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

/// Fail-fast lookup for names fixed at compile time (benches, examples).
inline const RealDatasetSpec& RealDatasetSpecByName(const std::string& name) {
  if (const RealDatasetSpec* spec = FindRealDatasetSpec(name)) return *spec;
  std::fprintf(stderr, "real_like: unknown dataset '%s' (expected Airline, "
               "Household, PAMAP2, or Sensor)\n", name.c_str());
  std::abort();
}

/// n points shaped like the spec'd dataset: a Gaussian mixture whose mode
/// count, spread, and noise floor are fixed per dataset. seed/noise_rate
/// default to the spec's values (keeping "same spec, same bytes") but can
/// be overridden for variance experiments; negative noise_rate means
/// "use the spec default".
inline PointSet MakeRealLike(const RealDatasetSpec& spec, PointId n,
                             uint64_t seed = 0, double noise_rate = -1.0) {
  GaussianBenchmarkParams params;
  params.num_points = n;
  params.num_clusters = spec.num_modes;
  params.dim = spec.dim;
  params.domain = spec.domain;
  // Spread scales with d_cut so the default parameters produce the dense,
  // multi-modal neighborhoods the paper's defaults were tuned for. The
  // 2/dim factor compensates for chi^2_dim concentration: a pair of
  // cluster mates sits at distance ~ sigma * sqrt(2 * chi^2_dim), and in
  // high dimension chi^2_dim masses tightly around dim — the earlier
  // sqrt(2/dim) factor equalized the MEAN pair distance across
  // dimensionalities but left the within-d_cut PROBABILITY collapsing
  // with dim (P[chi^2_8 <= 0.9] ~ 6e-4), which is why the 7/8-dim
  // stand-ins (Sensor at its default d_cut = 5000 in particular) came
  // out all-noise. With 2/dim the within-d_cut mass stays ~8-10% of a
  // cluster in every spec, so the paper's default parameters yield
  // non-degenerate clusterings (asserted in generators_test).
  params.overlap = 0.015 * (spec.default_d_cut / 1000.0) * (2.0 / spec.dim);
  params.noise_rate = noise_rate >= 0.0 ? noise_rate : 0.01;
  params.seed = seed != 0 ? seed : spec.seed;
  return GaussianBenchmark(params);
}

}  // namespace dpc::data

#endif  // DPC_DATA_REAL_LIKE_H_
