// Synthetic workload generators. Two families from the paper's §6 setup:
//
//   * GaussianBenchmark — k Gaussian blobs plus uniform noise (the
//     S1..S4-style datasets; `overlap` is the blob sigma as a fraction of
//     the domain, so larger values bridge neighboring clusters).
//   * RandomWalk — the 2-d "Syn" dataset of Figure 6: a random walk whose
//     visited locations form elongated, arbitrarily-shaped dense regions.
//
// All generators are bit-deterministic for a fixed seed (core/rng.h) and
// can emit the generating ground-truth labels for quality scoring.
#ifndef DPC_DATA_GENERATORS_H_
#define DPC_DATA_GENERATORS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/dpc.h"
#include "core/rng.h"

namespace dpc::data {

struct GaussianBenchmarkParams {
  PointId num_points = 10000;
  int num_clusters = 10;
  int dim = 2;
  double domain = 1e5;       ///< coordinates span [0, domain] per dimension
  double overlap = 0.02;     ///< cluster sigma as a fraction of the domain
  double noise_rate = 0.0;   ///< fraction of uniform background points
  uint64_t seed = 1;
};

/// Gaussian mixture + uniform noise. When truth != nullptr it receives the
/// generating component per point (kNoise for background noise).
inline PointSet GaussianBenchmark(const GaussianBenchmarkParams& params,
                                  std::vector<int64_t>* truth = nullptr) {
  Rng rng(params.seed);
  const int dim = params.dim;
  PointSet points(dim);
  points.Reserve(params.num_points);
  if (truth != nullptr) {
    truth->clear();
    truth->reserve(static_cast<size_t>(params.num_points));
  }

  // Cluster centers: rejection-sampled for pairwise separation so the
  // planted structure is recoverable at low overlap; under heavy packing
  // the requirement relaxes until placement always succeeds.
  const int k = std::max(params.num_clusters, 1);
  const double sigma = params.overlap * params.domain;
  std::vector<std::vector<double>> centers;
  centers.reserve(static_cast<size_t>(k));
  double min_sep = params.domain / (1.0 + std::sqrt(static_cast<double>(k)));
  for (int c = 0; c < k; ++c) {
    std::vector<double> center(static_cast<size_t>(dim));
    for (int attempt = 0;; ++attempt) {
      for (int d = 0; d < dim; ++d) {
        center[static_cast<size_t>(d)] =
            rng.Uniform(0.08 * params.domain, 0.92 * params.domain);
      }
      bool far_enough = true;
      for (const auto& other : centers) {
        if (Distance(center.data(), other.data(), dim) < min_sep) {
          far_enough = false;
          break;
        }
      }
      if (far_enough) break;
      if (attempt > 0 && attempt % 64 == 0) min_sep *= 0.8;
    }
    centers.push_back(center);
  }

  std::vector<double> p(static_cast<size_t>(dim));
  for (PointId i = 0; i < params.num_points; ++i) {
    if (rng.NextDouble() < params.noise_rate) {
      for (int d = 0; d < dim; ++d) {
        p[static_cast<size_t>(d)] = rng.Uniform(0.0, params.domain);
      }
      if (truth != nullptr) truth->push_back(kNoise);
    } else {
      const int c = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(k)));
      const auto& center = centers[static_cast<size_t>(c)];
      for (int d = 0; d < dim; ++d) {
        const double x = center[static_cast<size_t>(d)] + sigma * rng.NextGaussian();
        p[static_cast<size_t>(d)] = std::clamp(x, 0.0, params.domain);
      }
      if (truth != nullptr) truth->push_back(c);
    }
    points.Add(p.data());
  }
  return points;
}

struct RandomWalkParams {
  PointId num_points = 100000;
  int dim = 2;
  double domain = 1e5;
  double step_sigma = 50.0;  ///< per-coordinate step scale of the walk
  double noise_rate = 0.01;  ///< fraction of uniform background points
  uint64_t seed = 1;
};

/// A reflected random walk over [0, domain]^dim plus uniform noise —
/// dense, snake-shaped regions that reward arbitrary-shape clustering.
inline PointSet RandomWalk(const RandomWalkParams& params) {
  Rng rng(params.seed);
  const int dim = params.dim;
  PointSet points(dim);
  points.Reserve(params.num_points);
  std::vector<double> pos(static_cast<size_t>(dim), params.domain * 0.5);
  std::vector<double> p(static_cast<size_t>(dim));
  for (PointId i = 0; i < params.num_points; ++i) {
    if (rng.NextDouble() < params.noise_rate) {
      for (int d = 0; d < dim; ++d) {
        p[static_cast<size_t>(d)] = rng.Uniform(0.0, params.domain);
      }
      points.Add(p.data());
      continue;
    }
    for (int d = 0; d < dim; ++d) {
      double x = pos[static_cast<size_t>(d)] + params.step_sigma * rng.NextGaussian();
      // Reflect at the domain walls.
      if (x < 0.0) x = -x;
      if (x > params.domain) x = 2.0 * params.domain - x;
      pos[static_cast<size_t>(d)] = std::clamp(x, 0.0, params.domain);
    }
    points.Add(pos.data());
  }
  return points;
}

}  // namespace dpc::data

#endif  // DPC_DATA_GENERATORS_H_
