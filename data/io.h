// Point-set persistence: headerless CSV (interoperable with plotting
// tools) and a little-endian binary format ("DPCB") for large dumps. A
// labeled-CSV writer pairs coordinates with cluster ids for external
// visualization.
#ifndef DPC_DATA_IO_H_
#define DPC_DATA_IO_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/dpc.h"
#include "core/status.h"

namespace dpc::data {

inline Status SaveCsv(const PointSet& points, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path + " for writing");
  const PointId n = points.size();
  const int dim = points.dim();
  for (PointId i = 0; i < n; ++i) {
    const double* p = points[i];
    for (int d = 0; d < dim; ++d) {
      std::fprintf(f, d + 1 < dim ? "%.17g," : "%.17g\n", p[d]);
    }
  }
  if (std::fclose(f) != 0) return Status::IoError("error closing " + path);
  return Status::Ok();
}

inline Status SaveLabeledCsv(const PointSet& points,
                             const std::vector<int64_t>& label,
                             const std::string& path) {
  if (static_cast<PointId>(label.size()) != points.size()) {
    return Status::InvalidArgument("label count does not match point count");
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path + " for writing");
  const PointId n = points.size();
  const int dim = points.dim();
  for (PointId i = 0; i < n; ++i) {
    const double* p = points[i];
    for (int d = 0; d < dim; ++d) std::fprintf(f, "%.17g,", p[d]);
    std::fprintf(f, "%lld\n", static_cast<long long>(label[static_cast<size_t>(i)]));
  }
  if (std::fclose(f) != 0) return Status::IoError("error closing " + path);
  return Status::Ok();
}

inline constexpr char kBinaryMagic[4] = {'D', 'P', 'C', 'B'};

inline Status SaveBinary(const PointSet& points, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path + " for writing");
  const int32_t dim = points.dim();
  const int64_t n = points.size();
  bool ok = std::fwrite(kBinaryMagic, 1, 4, f) == 4;
  ok = ok && std::fwrite(&dim, sizeof(dim), 1, f) == 1;
  ok = ok && std::fwrite(&n, sizeof(n), 1, f) == 1;
  const size_t count = points.raw().size();
  ok = ok && std::fwrite(points.raw().data(), sizeof(double), count, f) == count;
  if (std::fclose(f) != 0 || !ok) return Status::IoError("error writing " + path);
  return Status::Ok();
}

inline StatusOr<PointSet> LoadBinary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  char magic[4];
  int32_t dim = 0;
  int64_t n = 0;
  if (std::fread(magic, 1, 4, f) != 4 || std::memcmp(magic, kBinaryMagic, 4) != 0 ||
      std::fread(&dim, sizeof(dim), 1, f) != 1 ||
      std::fread(&n, sizeof(n), 1, f) != 1 || dim <= 0 || n < 0) {
    std::fclose(f);
    return Status::IoError(path + " is not a DPCB point file");
  }
  PointSet points(dim);
  points.Reserve(n);
  std::vector<double> row(static_cast<size_t>(dim));
  for (int64_t i = 0; i < n; ++i) {
    if (std::fread(row.data(), sizeof(double), row.size(), f) != row.size()) {
      std::fclose(f);
      return Status::IoError(path + " is truncated");
    }
    points.Add(row.data());
  }
  std::fclose(f);
  return points;
}

/// CSV of coordinates; the first data row fixes the dimensionality. A
/// first row that is not fully numeric (e.g. "x,y,z", or column names
/// with numeric prefixes like "2d_x" or "nanoseconds") is treated as a
/// header and skipped, so exports from pandas/spreadsheets load without
/// preprocessing. Exactly one row can be skipped this way, and the
/// inherent ambiguity lives there too: a *corrupt first* row is
/// indistinguishable from a header and is skipped like one. From the
/// first data row on, non-numeric and non-finite (nan/inf) fields are
/// errors with their line number, never silent data loss.
inline StatusOr<PointSet> LoadCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  PointSet points(1);
  std::vector<double> row;
  std::string line;
  char buf[4096];
  int dim = 0;
  int64_t line_no = 0;
  bool eof = false;
  bool header_allowed = true;
  while (!eof) {
    line.clear();
    while (true) {
      if (std::fgets(buf, sizeof(buf), f) == nullptr) {
        eof = true;
        break;
      }
      line += buf;
      if (!line.empty() && line.back() == '\n') break;
    }
    ++line_no;
    // Strip trailing newline/CR and skip blanks.
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    row.clear();
    const char* s = line.c_str();
    bool header = false;
    while (*s != '\0') {
      char* end = nullptr;
      const double v = std::strtod(s, &end);
      // Non-finite parses catch both literal nan/inf fields and column
      // names strtod half-eats ("nanoseconds" -> nan + "oseconds").
      if (end == s || !std::isfinite(v)) {
        // A failure on the first non-blank row marks the whole line as
        // the (single skippable) header; any later failure is an error.
        if (dim == 0 && header_allowed) {
          header = true;
          break;
        }
        std::fclose(f);
        return Status::IoError(path + ":" + std::to_string(line_no) +
                               ": not a finite number: '" + s + "'");
      }
      row.push_back(v);
      s = end;
      while (*s == ',' || *s == ' ' || *s == '\t') ++s;
    }
    if (header) {
      header_allowed = false;
      continue;
    }
    if (dim == 0) {
      dim = static_cast<int>(row.size());
      points = PointSet(dim);
    } else if (static_cast<int>(row.size()) != dim) {
      std::fclose(f);
      return Status::IoError(path + ":" + std::to_string(line_no) + ": expected " +
                             std::to_string(dim) + " columns, got " +
                             std::to_string(row.size()));
    }
    points.Add(row.data());
  }
  std::fclose(f);
  if (points.size() == 0) return Status::IoError(path + " contains no points");
  return points;
}

}  // namespace dpc::data

#endif  // DPC_DATA_IO_H_
