// Decision-graph walkthrough (the Figure 1 workflow of the paper).
//
// DPC's selling point: users pick cluster centers *visually*. This
// example builds an S2-like dataset (15 Gaussian clusters), runs Ex-DPC
// with a permissive threshold, prints the top of the decision graph —
// where exactly 15 points tower above everything else — and shows how
// the automatic threshold helpers recover the same selection headlessly.
//
// Build & run:  ./build/examples/decision_graph [output.csv]
#include <cmath>
#include <cstdio>
#include <string>

#include "core/decision_graph.h"
#include "core/ex_dpc.h"
#include "data/generators.h"
#include "eval/rand_index.h"

int main(int argc, char** argv) {
  // S2-like: 15 Gaussians, mild overlap.
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 15000;
  gen.num_clusters = 15;
  gen.dim = 2;
  gen.domain = 1e5;
  gen.overlap = 0.025;
  gen.noise_rate = 0.01;
  gen.seed = 16;  // S2 flavor
  std::vector<int64_t> truth;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen, &truth);

  dpc::DpcParams params;
  params.d_cut = 1200.0;
  params.rho_min = 4.0;
  params.delta_min = params.d_cut * 1.01;  // permissive: graph first, centers later
  params.num_threads = 0;

  dpc::ExDpc algo;
  dpc::DpcResult result = algo.Run(points, params);

  const auto graph = dpc::BuildDecisionGraph(result);
  std::printf("Decision graph (top 20 of %zu points by dependent distance):\n",
              graph.size());
  std::printf("%-8s %-12s %-12s\n", "id", "rho", "delta");
  for (size_t i = 0; i < graph.size() && i < 20; ++i) {
    std::printf("%-8lld %-12.1f %-12.1f\n", static_cast<long long>(graph[i].id),
                graph[i].rho, std::isinf(graph[i].delta) ? 99999.0 : graph[i].delta);
  }
  std::printf("... points 1-15 have delta in the tens of thousands, point 16 "
              "onward collapses to ~d_cut: the visual gap of Figure 1(b).\n\n");

  // Headless selection: ask for exactly 15 centers, or find the knee.
  const double for_k = dpc::SuggestDeltaMinForK(result, params, 15);
  const double by_gap = dpc::SuggestDeltaMinByGap(result, params);
  std::printf("suggested delta_min for k=15 : %.1f\n", for_k);
  std::printf("suggested delta_min by gap   : %.1f\n", by_gap);

  dpc::DpcParams final_params = params;
  final_params.delta_min = for_k;
  dpc::FinalizeClusters(final_params, &result);
  std::printf("clusters at suggested threshold: %lld\n",
              static_cast<long long>(result.num_clusters()));
  std::printf("Rand index vs generating mixture: %.4f\n",
              dpc::eval::RandIndex(result.label, truth));

  if (argc > 1) {
    const std::string path = argv[1];
    const dpc::Status s = dpc::WriteDecisionGraphCsv(graph, path);
    std::printf("decision graph written to %s (%s)\n", path.c_str(),
                s.ToString().c_str());
  }
  return 0;
}
