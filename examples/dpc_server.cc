// dpc_server — a line-protocol driver for the serve/ layer: register
// datasets once, then fire clustering requests at the shared engine and
// read per-request responses (cache hits, deadline outcomes, timings).
//
// Usage:
//   dpc_server [--batch FILE] [--threads N] [--cache-mb N] [--max-batch N]
//              [--batch-window-ms N] [--store PATH] [--store-mb N]
//
// --store points at a persistent solution log (store/solution_store.h):
// computed solutions write through to it, cache evictions demote to it
// instead of discarding, and a RESTARTED server replays it so
// rethreshold/graph requests against pre-restart compute configurations
// are answered warm (finalize-only, zero recomputes). --cache-mb bounds
// the in-memory tier in megabytes (0 disables caching), --store-mb
// bounds the on-disk log (0 = unbounded).
//
// Commands are read from FILE (one per line; '#' starts a comment) or
// interactively from stdin:
//
//   load NAME PATH            register a dataset from CSV (header row ok)
//                             or DPCB binary (by .bin/.dpcb extension)
//   gen NAME N [CLUSTERS] [SEED]
//                             register a generated Gaussian benchmark
//   drop NAME                 unregister a dataset handle
//   run NAME ALGO k=v ...     submit a clustering request. Keys:
//                               d_cut= rho_min= delta_min= epsilon=
//                               deadline_ms= priority= opt.KEY=VALUE
//                             delta_min defaults to 2*d_cut, rho_min to 10.
//   rethreshold NAME ALGO k=v ...
//                             threshold-only request against the cached
//                             solution of the same compute configuration
//                             (same keys as run); answered synchronously
//                             without touching the thread pool, NOT_FOUND
//                             when the solution cache is cold.
//   graph NAME ALGO k=v ...   top-k gamma = rho*delta points of the cached
//                             solution's decision graph; extra key top_k=
//                             (default 10). Same warm-only contract.
//   wait                      resolve pending requests, print responses
//   stats                     one JSON line: server + cache counters from
//                             ONE coherent snapshot, and the store under
//                             "store" (null without --store)
//   store                     one JSON line of persistent-store occupancy
//                             (log bytes, live solutions, puts, ...)
//   metrics [json]            the server's MetricRegistry: Prometheus
//                             text format (counters, gauges, request-
//                             latency histograms with _p50/_p99/_p999
//                             convenience gauges), or one JSON line with
//                             `json`
//   trace on|off|dump FILE    per-request span tracing: `on` attaches a
//                             fresh trace (queue-wait, cache-probe,
//                             lease-wait, solve with per-phase children,
//                             finalize), `off` detaches it, `dump`
//                             writes everything collected so far as
//                             Chrome trace-event JSON (chrome://tracing)
//   quit                      drain, shut down, exit
//
// Submissions are asynchronous: issuing several `run` lines before `wait`
// is what exercises batched admission (and within-batch cache
// coalescing). EOF implies `wait` + `quit`.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/kernels.h"
#include "core/options.h"
#include "data/generators.h"
#include "data/io.h"
#include "eval/bench_json.h"
#include "eval/cluster_stats.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace {

struct Pending {
  uint64_t id = 0;
  dpc::serve::RequestKind kind = dpc::serve::RequestKind::kCluster;
  std::string dataset;
  std::string algorithm;
  std::future<dpc::serve::ClusterResponse> future;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--batch FILE] [--threads N] [--cache-mb N] "
               "[--max-batch N] [--batch-window-ms N] [--store PATH] "
               "[--store-mb N]\n"
               "commands: load NAME PATH | gen NAME N [CLUSTERS] [SEED] | "
               "drop NAME |\n"
               "          run NAME ALGO k=v ... | rethreshold NAME ALGO "
               "k=v ... |\n"
               "          graph NAME ALGO k=v ... top_k=N | wait | stats | "
               "store |\n"
               "          metrics [json] | trace on|off|dump FILE | quit\n",
               argv0);
  return 2;
}

/// Splits a command line on whitespace runs.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t begin = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

void PrintResponse(const Pending& p, const dpc::serve::ClusterResponse& r) {
  const char* kind = dpc::serve::ToString(p.kind);
  if (!r.status.ok()) {
    std::printf("#%llu %s %s %s -> %s (queue %.1fms)\n",
                static_cast<unsigned long long>(p.id), kind, p.dataset.c_str(),
                p.algorithm.c_str(), r.status.ToString().c_str(),
                r.queue_seconds * 1e3);
    return;
  }
  if (p.kind == dpc::serve::RequestKind::kGraph) {
    std::printf("#%llu %s %s %s -> ok: %zu gamma points%s\n",
                static_cast<unsigned long long>(p.id), kind, p.dataset.c_str(),
                p.algorithm.c_str(), r.graph.size(),
                r.cache_hit ? " [cache hit]" : "");
    for (size_t rank = 0; rank < r.graph.size(); ++rank) {
      const dpc::GammaEntry& e = r.graph[rank];
      std::printf("  %2zu. id=%lld rho=%.1f delta=%.6g gamma=%.6g\n", rank + 1,
                  static_cast<long long>(e.id), e.rho, e.delta, e.gamma);
    }
    return;
  }
  const dpc::eval::ClusterSummary summary = dpc::eval::Summarize(*r.result);
  std::printf(
      "#%llu %s %s %s -> ok: %s%s (queue %.1fms, run %.1fms)\n",
      static_cast<unsigned long long>(p.id), kind, p.dataset.c_str(),
      p.algorithm.c_str(), dpc::eval::ToString(summary).c_str(),
      r.cache_hit ? " [cache hit]" : "", r.queue_seconds * 1e3,
      r.run_seconds * 1e3);
}

/// The `stats` line: ONE ServerStats snapshot (whose cache block is one
/// coherent SolutionCache copy — hits + warm + misses == lookups holds
/// in the printed object) rendered as a single JSON line with a fixed
/// key order, so CI sessions parse it instead of grepping free text.
std::string StatsJson(const dpc::serve::ClusterServer& server) {
  const dpc::serve::ServerStats s = server.stats();
  const dpc::serve::SolutionCache::Stats& c = s.cache;
  char buf[1024];
  std::string out;
  std::snprintf(
      buf, sizeof(buf),
      "{\"server\":{\"submitted\":%llu,\"completed\":%llu,"
      "\"cache_hits\":%llu,\"recomputes\":%llu,\"rethreshold_served\":%llu,"
      "\"deadline_exceeded\":%llu,\"errors\":%llu,\"peak_concurrency\":%llu,"
      "\"leases_granted\":%llu,\"lease_width_total\":%llu,"
      "\"kernel_dispatch\":\"%s\",\"kernel_tier\":\"%s\"},",
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.recomputes),
      static_cast<unsigned long long>(s.rethreshold_served),
      static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.errors),
      static_cast<unsigned long long>(s.peak_concurrency),
      static_cast<unsigned long long>(s.leases_granted),
      static_cast<unsigned long long>(s.lease_width_total),
      dpc::kernels::DispatchName(), dpc::kernels::ActiveTierName());
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "\"cache\":{\"lookups\":%llu,\"solution_hits\":%llu,"
      "\"solution_misses\":%llu,\"warm_misses\":%llu,\"promotions\":%llu,"
      "\"demotions\":%llu,\"insertions\":%llu,\"evictions\":%llu,"
      "\"label_hits\":%llu,\"finalizations\":%llu,\"entries\":%llu,"
      "\"bytes_in_use\":%llu,\"budget_bytes\":%llu},",
      static_cast<unsigned long long>(c.lookups),
      static_cast<unsigned long long>(c.solution_hits),
      static_cast<unsigned long long>(c.solution_misses),
      static_cast<unsigned long long>(c.warm_misses),
      static_cast<unsigned long long>(c.promotions),
      static_cast<unsigned long long>(c.demotions),
      static_cast<unsigned long long>(c.insertions),
      static_cast<unsigned long long>(c.evictions),
      static_cast<unsigned long long>(c.label_hits),
      static_cast<unsigned long long>(c.finalizations),
      static_cast<unsigned long long>(c.entries),
      static_cast<unsigned long long>(c.bytes_in_use),
      static_cast<unsigned long long>(c.budget_bytes));
  out += buf;
  if (server.store() != nullptr) {
    std::snprintf(buf, sizeof(buf), "\"store\":{\"log_bytes\":%llu}}",
                  static_cast<unsigned long long>(s.store_bytes));
    out += buf;
  } else {
    out += "\"store\":null}";
  }
  return out;
}

/// The `store` line: SolutionStore::stats() is already one coherent
/// snapshot under the store's own lock.
std::string StoreJson(const dpc::store::SolutionStore& store) {
  const dpc::store::SolutionStore::Stats t = store.stats();
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"path\":\"%s\",\"log_bytes\":%llu,\"live_solutions\":%llu,"
      "\"live_payload_bytes\":%llu,\"puts\":%llu,\"fetches\":%llu,"
      "\"pool_hits\":%llu,\"log_reads\":%llu,\"decode_failures\":%llu,"
      "\"compactions\":%llu,\"budget_evictions\":%llu,"
      "\"pool_bytes_in_use\":%llu}",
      dpc::eval::JsonEscape(store.path()).c_str(),
      static_cast<unsigned long long>(t.log_bytes),
      static_cast<unsigned long long>(t.live_solutions),
      static_cast<unsigned long long>(t.live_payload_bytes),
      static_cast<unsigned long long>(t.puts),
      static_cast<unsigned long long>(t.fetches),
      static_cast<unsigned long long>(t.pool_hits),
      static_cast<unsigned long long>(t.log_reads),
      static_cast<unsigned long long>(t.decode_failures),
      static_cast<unsigned long long>(t.compactions),
      static_cast<unsigned long long>(t.budget_evictions),
      static_cast<unsigned long long>(t.pool_bytes_in_use));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string batch_path;
  dpc::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--batch" && i + 1 < argc) {
      batch_path = argv[++i];
    } else if (a == "--threads" && i + 1 < argc) {
      options.pool_threads = std::atoi(argv[++i]);
    } else if (a == "--cache-mb" && i + 1 < argc) {
      options.memory_budget_bytes =
          static_cast<size_t>(std::atoll(argv[++i])) << 20;
    } else if (a == "--store" && i + 1 < argc) {
      options.store_path = argv[++i];
    } else if (a == "--store-mb" && i + 1 < argc) {
      options.disk_budget_bytes =
          static_cast<uint64_t>(std::atoll(argv[++i])) << 20;
    } else if (a == "--max-batch" && i + 1 < argc) {
      options.max_batch = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (a == "--batch-window-ms" && i + 1 < argc) {
      options.batch_window = std::chrono::milliseconds(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return Usage(argv[0]);
    }
  }

  std::FILE* in = stdin;
  if (!batch_path.empty()) {
    in = std::fopen(batch_path.c_str(), "r");
    if (in == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", batch_path.c_str());
      return 1;
    }
  }
  // In scripted (batch) mode both command errors and non-OK responses
  // are fatal, so a CI session cannot "pass" with failing requests;
  // interactively everything just prints.
  const bool strict = !batch_path.empty();

  // Banner on stderr: batch-mode stdout stays machine-parseable.
  std::fprintf(stderr, "kernels: %s\n", dpc::kernels::DescribeKernels().c_str());

  dpc::serve::ClusterServer server(options);
  // Survives `trace off` so a later `trace dump` can still export.
  std::shared_ptr<dpc::obs::Trace> trace_handle;
  std::vector<Pending> pending;
  uint64_t next_id = 1;
  int exit_code = 0;

  auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    if (strict) exit_code = 1;
    return strict;  // true = abort the session
  };

  auto wait_all = [&] {
    for (Pending& p : pending) {
      const dpc::serve::ClusterResponse response = p.future.get();
      PrintResponse(p, response);
      if (strict && !response.status.ok()) exit_code = 1;
    }
    pending.clear();
  };

  char buf[4096];
  while (exit_code == 0 && std::fgets(buf, sizeof(buf), in) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    // '#' starts a comment only at the line start or after whitespace,
    // so paths containing '#' survive.
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '#' &&
          (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t')) {
        line.resize(i);
        break;
      }
    }
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& cmd = tokens[0];

    if (cmd == "load" && tokens.size() == 3) {
      const std::string& name = tokens[1];
      const std::string& path = tokens[2];
      auto loaded = path.ends_with(".bin") || path.ends_with(".dpcb")
                        ? dpc::data::LoadBinary(path)
                        : dpc::data::LoadCsv(path);
      if (!loaded.ok()) {
        if (fail(loaded.status().ToString())) break;
        continue;
      }
      dpc::PointSet points = std::move(loaded).value();
      const long long n = points.size();
      const int dim = points.dim();
      const uint64_t fp = server.datasets().Register(name, std::move(points));
      std::printf("loaded %s: n=%lld dim=%d fingerprint=%016llx\n",
                  name.c_str(), n, dim, static_cast<unsigned long long>(fp));
    } else if (cmd == "gen" && (tokens.size() >= 3 && tokens.size() <= 5)) {
      dpc::data::GaussianBenchmarkParams gen;
      gen.num_points = std::atoll(tokens[2].c_str());
      gen.num_clusters = tokens.size() > 3 ? std::atoi(tokens[3].c_str()) : 15;
      gen.seed = tokens.size() > 4
                     ? static_cast<uint64_t>(std::atoll(tokens[4].c_str()))
                     : 42;
      if (gen.num_points <= 0 || gen.num_clusters <= 0) {
        if (fail("gen needs positive N and CLUSTERS")) break;
        continue;
      }
      const uint64_t fp = server.datasets().Register(
          tokens[1], dpc::data::GaussianBenchmark(gen));
      std::printf("generated %s: n=%lld clusters=%d fingerprint=%016llx\n",
                  tokens[1].c_str(), static_cast<long long>(gen.num_points),
                  gen.num_clusters, static_cast<unsigned long long>(fp));
    } else if (cmd == "drop" && tokens.size() == 2) {
      std::printf("drop %s: %s\n", tokens[1].c_str(),
                  server.datasets().Unregister(tokens[1]) ? "ok" : "unknown");
    } else if ((cmd == "run" || cmd == "rethreshold" || cmd == "graph") &&
               tokens.size() >= 3) {
      dpc::serve::ClusterRequest request;
      request.kind = cmd == "run" ? dpc::serve::RequestKind::kCluster
                     : cmd == "rethreshold"
                         ? dpc::serve::RequestKind::kRethreshold
                         : dpc::serve::RequestKind::kGraph;
      request.dataset = tokens[1];
      request.algorithm = tokens[2];
      request.params.rho_min = 10.0;
      request.params.delta_min = 0.0;  // defaulted below once d_cut is known
      std::string bad;
      for (size_t t = 3; t < tokens.size(); ++t) {
        const size_t eq = tokens[t].find('=');
        if (eq == std::string::npos || eq == 0) {
          bad = "'" + tokens[t] + "' is not key=value";
          break;
        }
        const std::string key = tokens[t].substr(0, eq);
        const std::string value = tokens[t].substr(eq + 1);
        if (key == "d_cut") {
          request.params.d_cut = std::atof(value.c_str());
        } else if (key == "rho_min") {
          request.params.rho_min = std::atof(value.c_str());
        } else if (key == "delta_min") {
          request.params.delta_min = std::atof(value.c_str());
        } else if (key == "epsilon") {
          request.params.epsilon = std::atof(value.c_str());
        } else if (key == "deadline_ms") {
          request.deadline = std::chrono::milliseconds(std::atoll(value.c_str()));
        } else if (key == "priority") {
          request.priority = std::atoi(value.c_str());
        } else if (key == "top_k" &&
                   request.kind == dpc::serve::RequestKind::kGraph) {
          request.graph_top_k = std::atoi(value.c_str());
        } else if (key.rfind("opt.", 0) == 0 && key.size() > 4) {
          request.options[key.substr(4)] = value;
        } else {
          bad = "unknown key '" + key +
                "' (expected d_cut, rho_min, delta_min, epsilon, "
                "deadline_ms, priority, top_k (graph), or opt.KEY)";
          break;
        }
      }
      if (!bad.empty()) {
        if (fail(bad)) break;
        continue;
      }
      if (request.params.delta_min <= 0.0) {
        request.params.delta_min = 2.0 * request.params.d_cut;
      }
      Pending p;
      p.id = next_id++;
      p.kind = request.kind;
      p.dataset = request.dataset;
      p.algorithm = request.algorithm;
      p.future = server.Submit(std::move(request));
      pending.push_back(std::move(p));
    } else if (cmd == "wait" && tokens.size() == 1) {
      wait_all();
    } else if (cmd == "stats" && tokens.size() == 1) {
      std::printf("%s\n", StatsJson(server).c_str());
    } else if (cmd == "store" && tokens.size() == 1) {
      if (server.store() == nullptr) {
        if (fail("no store attached (run with --store PATH)")) break;
        continue;
      }
      std::printf("%s\n", StoreJson(*server.store()).c_str());
    } else if (cmd == "metrics" &&
               (tokens.size() == 1 ||
                (tokens.size() == 2 && tokens[1] == "json"))) {
      const std::vector<dpc::obs::MetricSample> samples =
          server.metrics().Snapshot();
      if (tokens.size() == 2) {
        std::printf("%s\n", dpc::obs::ToJson(samples).c_str());
      } else {
        std::fputs(dpc::obs::ToPrometheusText(samples).c_str(), stdout);
      }
    } else if (cmd == "trace" && tokens.size() >= 2) {
      if (tokens[1] == "on" && tokens.size() == 2) {
        if (trace_handle == nullptr) {
          trace_handle = std::make_shared<dpc::obs::Trace>();
        }
        server.set_trace(trace_handle);
        std::printf("trace on\n");
      } else if (tokens[1] == "off" && tokens.size() == 2) {
        // Keep the handle so `trace dump` still works after `off`.
        server.set_trace(nullptr);
        std::printf("trace off\n");
      } else if (tokens[1] == "dump" && tokens.size() == 3) {
        if (trace_handle == nullptr) {
          if (fail("no trace captured (use `trace on` first)")) break;
          continue;
        }
        const std::string json = trace_handle->ToChromeJson();
        std::FILE* out = std::fopen(tokens[2].c_str(), "w");
        if (out == nullptr) {
          if (fail("cannot open " + tokens[2] + " for writing")) break;
          continue;
        }
        std::fwrite(json.data(), 1, json.size(), out);
        std::fclose(out);
        std::printf("trace dump %s: %zu spans\n", tokens[2].c_str(),
                    trace_handle->size());
      } else {
        if (fail("trace needs on, off, or dump FILE")) break;
      }
    } else if (cmd == "quit" && tokens.size() == 1) {
      break;
    } else {
      if (fail("unknown or malformed command: '" + line + "'")) break;
    }
  }

  wait_all();
  server.Shutdown();
  if (in != stdin) std::fclose(in);
  return exit_code;
}
