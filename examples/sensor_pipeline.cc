// Domain scenario: clustering a high-dimensional sensor feed.
//
// The paper motivates DPC with applications that need clusters of
// arbitrary shape plus explicit noise — e.g. sensor analytics (its Sensor
// dataset is 8-dimensional). This example runs the full pipeline on the
// Sensor-like workload:
//
//   * clusters the feed with S-Approx-DPC at several eps settings,
//   * treats DPC noise (rho < rho_min) as anomalous readings,
//   * shows the speed/accuracy trade-off the eps knob buys (Table 5's
//     mechanism on a realistic workload).
//
// Build & run:  ./build/examples/sensor_pipeline
#include <cstdio>

#include "core/ex_dpc.h"
#include "core/s_approx_dpc.h"
#include "data/real_like.h"
#include "eval/cluster_stats.h"
#include "eval/rand_index.h"

int main() {
  const auto& spec = dpc::data::RealDatasetSpecByName("Sensor");
  const dpc::PointId n = 30000;
  const dpc::PointSet feed = dpc::data::MakeRealLike(spec, n);
  std::printf("sensor feed: %lld readings x %d channels, domain [0, %.0f]\n\n",
              static_cast<long long>(n), spec.dim, spec.domain);

  dpc::DpcParams params;
  params.d_cut = spec.default_d_cut;  // 5000, the paper's Sensor default
  params.rho_min = 8.0;
  params.delta_min = 3.0 * params.d_cut;
  params.num_threads = 0;

  // Exact reference for quality scoring.
  dpc::ExDpc exact;
  const dpc::DpcResult ground = exact.Run(feed, params);
  std::printf("exact reference (Ex-DPC): %lld clusters, %.2f s\n\n",
              static_cast<long long>(ground.num_clusters()), ground.stats.total_seconds);

  std::printf("%-6s %-10s %-10s %-10s %-10s\n", "eps", "clusters", "noise",
              "time[s]", "RandIdx");
  for (const double eps : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    dpc::DpcParams p = params;
    p.epsilon = eps;
    dpc::SApproxDpc algo;
    const dpc::DpcResult r = algo.Run(feed, p);
    const auto s = dpc::eval::Summarize(r);
    std::printf("%-6.1f %-10lld %-10lld %-10.3f %-10.4f\n", eps,
                static_cast<long long>(s.num_clusters),
                static_cast<long long>(s.num_noise + s.num_unassigned),
                r.stats.total_seconds,
                dpc::eval::RandIndex(r.label, ground.label));
  }

  // Anomaly report from the exact run: the sparsest readings.
  const auto summary = dpc::eval::Summarize(ground);
  std::printf("\nanomalous readings (density < rho_min): %lld of %lld (%.2f%%)\n",
              static_cast<long long>(summary.num_noise),
              static_cast<long long>(summary.num_points),
              100.0 * static_cast<double>(summary.num_noise) /
                  static_cast<double>(summary.num_points));
  std::printf("use DpcResult::is_noise to route them to an alerting pipeline.\n");
  return 0;
}
