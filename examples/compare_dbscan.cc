// DPC vs DBSCAN on overlapping Gaussian clusters (the paper's Figure 2
// and Example 2).
//
// The paper's claim: when dense groups are bridged by border points,
// DBSCAN merges them into one cluster while DPC still separates them,
// because DPC splits a dense region at its density peaks. This example
// reproduces the setup: DBSCAN's eps is chosen via OPTICS so that the
// extraction yields (as close as possible to) 15 clusters, exactly as
// Example 2 prescribes, and both results are scored against the
// generating mixture.
//
// Build & run:  ./build/examples/compare_dbscan [dpc.csv dbscan.csv]
#include <algorithm>
#include <cstdio>

#include "baselines/dbscan.h"
#include "baselines/optics.h"
#include "core/ex_dpc.h"
#include "data/generators.h"
#include "data/io.h"
#include "eval/rand_index.h"

int main(int argc, char** argv) {
  // S2-like with deliberate overlap so border points bridge clusters.
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 10000;
  gen.num_clusters = 15;
  gen.dim = 2;
  gen.domain = 1e5;
  gen.overlap = 0.035;  // enough overlap that DBSCAN bridges clusters
  gen.noise_rate = 0.01;
  gen.seed = 22;
  std::vector<int64_t> truth;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen, &truth);

  // --- DPC ---
  dpc::DpcParams params;
  params.d_cut = 1400.0;
  params.rho_min = 4.0;
  params.delta_min = 9000.0;
  params.num_threads = 0;
  dpc::ExDpc dpc_algo;
  const dpc::DpcResult dpc_result = dpc_algo.Run(points, params);

  // --- DBSCAN, parameterized via OPTICS for ~15 clusters (Example 2) ---
  const int min_pts = 8;
  const double max_eps = 4000.0;
  const dpc::OpticsResult optics = dpc::Optics(points, {.max_eps = max_eps, .min_pts = min_pts});
  const double eps = dpc::FindThresholdForClusterCount(optics, max_eps, 15);
  const dpc::DbscanResult db = dpc::Dbscan(points, {.eps = eps, .min_pts = min_pts});

  const double ri_dpc = dpc::eval::RandIndex(dpc_result.label, truth);
  const double ri_db = dpc::eval::RandIndex(db.label, truth);
  const double ari_dpc = dpc::eval::AdjustedRandIndex(dpc_result.label, truth);
  const double ari_db = dpc::eval::AdjustedRandIndex(db.label, truth);

  std::printf("workload: 15 Gaussian clusters, overlap sigma = %.1f%% of domain\n",
              gen.overlap * 100.0);
  std::printf("%-22s %-10s %-10s %-10s\n", "algorithm", "clusters", "RandIdx", "ARI");
  std::printf("%-22s %-10lld %-10.4f %-10.4f\n", "DPC (Ex-DPC)",
              static_cast<long long>(dpc_result.num_clusters()), ri_dpc, ari_dpc);
  std::printf("%-22s %-10lld %-10.4f %-10.4f   (eps=%.1f via OPTICS)\n", "DBSCAN",
              static_cast<long long>(db.num_clusters), ri_db, ari_db, eps);

  // Figure 2's qualitative claim, quantified: DPC separates the
  // overlapping Gaussians better than DBSCAN at matched cluster counts.
  if (ari_dpc > ari_db) {
    std::printf("\n=> DPC separates the overlapping clusters better "
                "(ARI %.3f vs %.3f), reproducing Figure 2.\n", ari_dpc, ari_db);
  } else {
    std::printf("\n=> On this draw DBSCAN kept up (ARI %.3f vs %.3f); increase "
                "overlap to see the merge effect.\n", ari_dpc, ari_db);
  }

  if (argc > 2) {
    (void)dpc::data::SaveLabeledCsv(points, dpc_result.label, argv[1]);
    (void)dpc::data::SaveLabeledCsv(points, db.label, argv[2]);
    std::printf("labeled dumps written to %s and %s (plot with any CSV tool)\n",
                argv[1], argv[2]);
  }
  return 0;
}
