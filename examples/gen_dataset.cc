// gen_dataset — materialize the paper's workloads as CSV/binary files.
//
// Usage:
//   gen_dataset --kind syn|s1|s2|s3|s4|airline|household|pamap2|sensor
//               [--n N] [--noise RATE] [--seed S] [--binary]
//               --output PATH
//
// syn        2-d random-walk dataset (Figure 6's Syn)
// s1..s4     15 Gaussian clusters with growing overlap (Tables 2-3)
// airline..  the real-dataset stand-ins (same d / domain / d_cut defaults)
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/generators.h"
#include "data/io.h"
#include "data/real_like.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --kind syn|s1|s2|s3|s4|airline|household|pamap2|sensor "
               "[--n N] [--noise RATE] [--seed S] [--binary] --output PATH\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kind;
  std::string output;
  long long n = 0;
  double noise = -1.0;
  uint64_t seed = 42;
  bool seed_set = false;
  bool binary = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kind" && i + 1 < argc) {
      kind = argv[++i];
    } else if (a == "--output" && i + 1 < argc) {
      output = argv[++i];
    } else if (a == "--n" && i + 1 < argc) {
      n = std::atoll(argv[++i]);
    } else if (a == "--noise" && i + 1 < argc) {
      noise = std::atof(argv[++i]);
    } else if (a == "--seed" && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      seed_set = true;
    } else if (a == "--binary") {
      binary = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return Usage(argv[0]);
    }
  }
  if (kind.empty() || output.empty()) return Usage(argv[0]);

  dpc::PointSet points(1);
  if (kind == "syn") {
    dpc::data::RandomWalkParams p;
    if (n > 0) p.num_points = n;
    if (noise >= 0.0) p.noise_rate = noise;
    p.seed = seed;
    points = dpc::data::RandomWalk(p);
  } else if (kind.size() == 2 && kind[0] == 's' && kind[1] >= '1' && kind[1] <= '4') {
    dpc::data::GaussianBenchmarkParams p;
    p.num_points = n > 0 ? n : 5000;
    p.num_clusters = 15;  // the S-family is 15 Gaussians (Tables 2-3)
    p.overlap = 0.015 + 0.01 * (kind[1] - '0');
    if (noise >= 0.0) p.noise_rate = noise;
    p.seed = seed;
    points = dpc::data::GaussianBenchmark(p);
  } else {
    // Real-like stand-ins; accept lowercase names.
    std::string name = kind;
    name[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(name[0])));
    if (name == "Pamap2") name = "PAMAP2";
    const dpc::data::RealDatasetSpec* spec = dpc::data::FindRealDatasetSpec(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown kind: %s\n", kind.c_str());
      return Usage(argv[0]);
    }
    points = dpc::data::MakeRealLike(*spec, n > 0 ? n : spec->default_cardinality,
                                     seed_set ? seed : 0, noise);
    std::printf("d_cut default for %s: %.0f\n", spec->name.c_str(),
                spec->default_d_cut);
  }

  const dpc::Status s = binary ? dpc::data::SaveBinary(points, output)
                               : dpc::data::SaveCsv(points, output);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %lld points x %d dims to %s (%s)\n",
              static_cast<long long>(points.size()), points.dim(), output.c_str(),
              binary ? "binary" : "csv");
  return 0;
}
