// dpc_cli — command-line clustering over CSV files.
//
// Usage:
//   dpc_cli --input points.csv --d-cut 1000 [options]
//
// Options:
//   --input PATH        headerless CSV of coordinates (required unless --demo)
//   --demo              use a built-in 15-cluster demo dataset instead
//   --algorithm NAME    scan | rtree-scan | lsh-ddp | cfsfdp-a | ex-dpc |
//                       approx-dpc (default) | s-approx-dpc
//   --d-cut X           cutoff distance (required)
//   --rho-min X         noise threshold (default 10)
//   --delta-min X       center threshold (default: auto via decision-graph gap)
//   --epsilon X         S-Approx-DPC approximation parameter (default 1.0)
//   --threads N         worker threads (default 0 = all hardware threads;
//                       runs execute on one persistent shared pool)
//   --opt KEY=VALUE     per-algorithm option, repeatable. Examples:
//                         approx-dpc: joint_range_search=false,
//                                     force_num_subsets=8, scheduler=static
//                         lsh-ddp:    num_tables=6, num_bits=5
//                         cfsfdp-a:   sample_rate=0.5
//                       scheduler takes static|dynamic|lpt|inherit.
//                       Unknown keys fail with the recognized-key menu.
//   --k N               instead of --delta-min: pick exactly N centers
//   --sweep KEY=a,b,c   threshold sweep mode: KEY is delta_min or rho_min.
//                       Runs the expensive compute phase ONCE (Solve),
//                       then applies each threshold as an O(n) finalize —
//                       the decision-graph exploration workflow. Prints
//                       one summary row per value plus the measured
//                       compute-once speedup.
//   --output PATH       write "x0,...,xd-1,label" CSV
//   --decision-graph P  write the decision graph CSV
//   --halo              also report cluster core/halo sizes
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/decision_graph.h"
#include "core/halo.h"
#include "core/kernels.h"
#include "core/options.h"
#include "core/registry.h"
#include "data/generators.h"
#include "data/io.h"
#include "eval/cluster_stats.h"

namespace {

struct CliArgs {
  std::string input;
  bool demo = false;
  std::string algorithm = "approx-dpc";
  double d_cut = -1.0;
  double rho_min = 10.0;
  double delta_min = -1.0;  // auto
  double epsilon = 1.0;
  int threads = 0;
  int k = 0;
  std::vector<std::string> opts;  // raw key=value strings
  std::string sweep;              // "delta_min=a,b,c" / "rho_min=a,b,c"
  std::string output;
  std::string decision_graph;
  bool halo = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --input points.csv --d-cut X [--algorithm NAME] "
               "[--rho-min X] [--delta-min X | --k N] [--epsilon X] "
               "[--threads N] [--opt key=value ...] "
               "[--sweep delta_min=a,b,c | --sweep rho_min=a,b,c] "
               "[--output out.csv] "
               "[--decision-graph dg.csv] [--halo] [--demo]\n"
               "  --threads N   parallelism degree (0 = all hardware threads)\n"
               "  --opt k=v     per-algorithm option, repeatable — e.g.\n"
               "                joint_range_search=false, scheduler=static|dynamic|lpt,\n"
               "                num_tables=6, num_bits=5, sample_rate=0.5\n"
               "  --sweep KEY=a,b,c  compute once, finalize per threshold\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    if (a == "--input" && i + 1 < argc) {
      args->input = argv[++i];
    } else if (a == "--demo") {
      args->demo = true;
    } else if (a == "--algorithm" && i + 1 < argc) {
      args->algorithm = argv[++i];
    } else if (a == "--d-cut") {
      if (!next(&args->d_cut)) return false;
    } else if (a == "--rho-min") {
      if (!next(&args->rho_min)) return false;
    } else if (a == "--delta-min") {
      if (!next(&args->delta_min)) return false;
    } else if (a == "--epsilon") {
      if (!next(&args->epsilon)) return false;
    } else if (a == "--threads" && i + 1 < argc) {
      args->threads = std::atoi(argv[++i]);
    } else if (a == "--opt" && i + 1 < argc) {
      args->opts.emplace_back(argv[++i]);
    } else if (a == "--sweep" && i + 1 < argc) {
      args->sweep = argv[++i];
    } else if (a == "--k" && i + 1 < argc) {
      args->k = std::atoi(argv[++i]);
    } else if (a == "--output" && i + 1 < argc) {
      args->output = argv[++i];
    } else if (a == "--decision-graph" && i + 1 < argc) {
      args->decision_graph = argv[++i];
    } else if (a == "--halo") {
      args->halo = true;
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

/// The --sweep mode: one Solve, many O(n) finalizes. Returns the process
/// exit code.
int RunSweep(dpc::DpcAlgorithm& algo, const dpc::PointSet& points,
             const CliArgs& args) {
  const size_t eq = args.sweep.find('=');
  const std::string key = eq == std::string::npos ? "" : args.sweep.substr(0, eq);
  if (key != "delta_min" && key != "rho_min") {
    std::fprintf(stderr,
                 "error: --sweep expects delta_min=a,b,c or rho_min=a,b,c\n");
    return 2;
  }
  std::vector<double> values;
  for (const std::string& item : dpc::StrSplit(args.sweep.substr(eq + 1), ',')) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (item.empty() || end != item.c_str() + item.size()) {
      std::fprintf(stderr, "error: --sweep value '%s' is not a number\n",
                   item.c_str());
      return 2;
    }
    values.push_back(v);
  }

  // Sweep mode prints per-threshold summaries only; flags that emit a
  // single labeling's artifacts would be silently meaningless, so reject
  // them instead of ignoring them.
  if (args.k > 0 || !args.output.empty() || !args.decision_graph.empty() ||
      args.halo) {
    std::fprintf(stderr,
                 "error: --k, --output, --decision-graph, and --halo are not "
                 "supported with --sweep (which labeling would they use?)\n");
    return 2;
  }

  const dpc::ComputeParams compute{args.d_cut, args.epsilon};
  if (const dpc::Status s = compute.Validate(); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  dpc::ThresholdSpec base;
  base.rho_min = args.rho_min;
  // args.delta_min < 0 means "not given" (the single-run auto default).
  // An explicit value must either be valid (rho_min sweeps use it) or is
  // contradictory (delta_min sweeps replace it) — never silently fixed.
  if (args.delta_min >= 0.0) {
    if (key == "delta_min") {
      std::fprintf(stderr,
                   "error: --delta-min conflicts with --sweep delta_min=...\n");
      return 2;
    }
    if (args.delta_min <= args.d_cut) {
      std::fprintf(stderr,
                   "error: delta_min must exceed d_cut (got %g vs %g)\n",
                   args.delta_min, args.d_cut);
      return 1;
    }
  }
  base.delta_min =
      args.delta_min >= 0.0 ? args.delta_min : 2.0 * args.d_cut;
  // Validate every threshold before paying for the compute phase.
  for (const double v : values) {
    dpc::ThresholdSpec spec = base;
    (key == "delta_min" ? spec.delta_min : spec.rho_min) = v;
    if (const dpc::Status s = spec.Validate(args.d_cut); !s.ok()) {
      std::fprintf(stderr, "error: sweep value %g: %s\n", v,
                   s.ToString().c_str());
      return 1;
    }
  }

  const dpc::ExecutionContext ctx(args.threads);
  const auto solve_start = std::chrono::steady_clock::now();
  const dpc::DpcSolution solution = algo.Solve(points, compute, ctx);
  const double solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    solve_start)
          .count();
  std::printf("%s solved %lld points (d=%d) once in %.3fs; sweeping %s over "
              "%zu values:\n",
              std::string(algo.name()).c_str(),
              static_cast<long long>(points.size()), points.dim(),
              solve_seconds, key.c_str(), values.size());
  std::printf("%12s %10s %10s %14s\n", key.c_str(), "clusters", "noise",
              "finalize [ms]");

  double finalize_seconds = 0.0;
  for (const double v : values) {
    dpc::ThresholdSpec spec = base;
    (key == "delta_min" ? spec.delta_min : spec.rho_min) = v;
    const auto start = std::chrono::steady_clock::now();
    const dpc::Labeling labeling = dpc::LabelSolution(solution, spec);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    finalize_seconds += seconds;
    int64_t noise = 0;
    for (const int64_t label : labeling.label) {
      if (label == dpc::kNoise) ++noise;
    }
    std::printf("%12g %10lld %10lld %14.3f\n", v,
                static_cast<long long>(labeling.centers.size()),
                static_cast<long long>(noise), seconds * 1e3);
  }
  const double recompute_estimate =
      solve_seconds * static_cast<double>(values.size());
  std::printf("sweep total: %.3fms of finalize vs ~%.3fs of per-threshold "
              "recompute (%.0fx)\n",
              finalize_seconds * 1e3, recompute_estimate,
              recompute_estimate / std::max(finalize_seconds, 1e-9));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);
  if (args.input.empty() && !args.demo) return Usage(argv[0]);

  std::printf("kernels: %s\n", dpc::kernels::DescribeKernels().c_str());

  dpc::PointSet points(1);
  if (args.demo) {
    dpc::data::GaussianBenchmarkParams gen;
    gen.num_points = 20000;
    gen.num_clusters = 15;
    gen.noise_rate = 0.01;
    points = dpc::data::GaussianBenchmark(gen);
    if (args.d_cut <= 0.0) args.d_cut = 1200.0;
    std::printf("demo dataset: 15 Gaussian clusters, n=20000, domain [0,1e5]^2\n");
  } else {
    auto loaded = dpc::data::LoadCsv(args.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    points = std::move(loaded).value();
  }
  if (args.d_cut <= 0.0) {
    std::fprintf(stderr, "error: --d-cut is required and must be positive\n");
    return Usage(argv[0]);
  }
  if (args.threads < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0 (0 = all)\n");
    return Usage(argv[0]);
  }

  auto options = dpc::ParseOptionList(args.opts);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
    return Usage(argv[0]);
  }
  auto algo = dpc::MakeAlgorithmByName(args.algorithm, options.value());
  if (!algo.ok()) {
    std::fprintf(stderr, "error: %s\n", algo.status().ToString().c_str());
    return 1;
  }

  if (!args.sweep.empty()) {
    return RunSweep(*algo.value(), points, args);
  }

  dpc::DpcParams params;
  params.d_cut = args.d_cut;
  params.rho_min = args.rho_min;
  params.epsilon = args.epsilon;
  // Provisional threshold; refined below when auto/k mode is active.
  const bool auto_threshold = args.delta_min <= args.d_cut;
  params.delta_min = auto_threshold ? args.d_cut * 1.0000001 : args.delta_min;
  if (const dpc::Status s = params.Validate(); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }

  // Execution policy (API v2): thread count and the shared persistent
  // pool live on the context, not in DpcParams.
  const dpc::ExecutionContext ctx(args.threads);
  dpc::DpcResult result = algo.value()->Run(points, params, ctx);

  if (auto_threshold) {
    const double suggested = args.k > 0
                                 ? dpc::SuggestDeltaMinForK(result, params, args.k)
                                 : dpc::SuggestDeltaMinByGap(result, params);
    params.delta_min = suggested;
    dpc::FinalizeClusters(params, &result);
    std::printf("auto delta_min = %.6g (%s)\n", suggested,
                args.k > 0 ? "for requested k" : "largest decision-graph gap");
  }

  const auto summary = dpc::eval::Summarize(result);
  std::printf("%s on %lld points (d=%d): %s\n", std::string(algo.value()->name()).c_str(),
              static_cast<long long>(points.size()), points.dim(),
              dpc::eval::ToString(summary).c_str());
  std::printf("time: total %.3fs (build %.3f, rho %.3f, delta %.3f)\n",
              result.stats.total_seconds, result.stats.build_seconds,
              result.stats.rho_seconds, result.stats.delta_seconds);

  if (args.halo) {
    const dpc::HaloResult halo = dpc::ComputeHalo(points, result, params.d_cut);
    for (int64_t c = 0; c < result.num_clusters(); ++c) {
      std::printf("cluster %lld: halo %lld points (border density %.1f)\n",
                  static_cast<long long>(c),
                  static_cast<long long>(halo.halo_size[static_cast<size_t>(c)]),
                  halo.border_density[static_cast<size_t>(c)]);
    }
  }

  if (!args.output.empty()) {
    const dpc::Status s = dpc::data::SaveLabeledCsv(points, result.label, args.output);
    std::printf("labels -> %s (%s)\n", args.output.c_str(), s.ToString().c_str());
  }
  if (!args.decision_graph.empty()) {
    const dpc::Status s =
        dpc::WriteDecisionGraphCsv(dpc::BuildDecisionGraph(result), args.decision_graph);
    std::printf("decision graph -> %s (%s)\n", args.decision_graph.c_str(),
                s.ToString().c_str());
  }
  return 0;
}
