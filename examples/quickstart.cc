// Quickstart: the smallest end-to-end tour of the public API.
//
//   1. generate (or load) a point set
//   2. pick DPC parameters
//   3. run an algorithm (Approx-DPC is the recommended default: exact
//      centers, parameter-free approximation, parallel-friendly)
//   4. inspect clusters, noise, and per-phase statistics
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/approx_dpc.h"
#include "data/generators.h"
#include "eval/cluster_stats.h"

int main() {
  // 1. A 2-d dataset with 8 Gaussian clusters and 2% uniform noise.
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 20000;
  gen.num_clusters = 8;
  gen.dim = 2;
  gen.domain = 1e5;
  gen.overlap = 0.03;      // cluster sigma = 3% of the domain
  gen.noise_rate = 0.02;
  gen.seed = 7;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);

  // 2. DPC parameters: d_cut is the density ball radius; rho_min removes
  // sparse noise; delta_min (> d_cut) separates cluster centers on the
  // decision graph.
  dpc::DpcParams params;
  params.d_cut = 1500.0;
  params.rho_min = 5.0;
  params.delta_min = 8000.0;

  // 3. Run. The ExecutionContext carries the execution policy: which
  // thread pool to run on (default: one persistent process-wide pool,
  // reused across runs), how many threads (0 = all), and the loop
  // scheduling strategy (default: the paper's §4.5 cost-guided LPT).
  dpc::ExecutionContext ctx;
  dpc::ApproxDpc algo;
  const dpc::DpcResult result = algo.Run(points, params, ctx);

  // 4. Report.
  const dpc::eval::ClusterSummary summary = dpc::eval::Summarize(result);
  std::printf("algorithm      : %s\n", std::string(algo.name()).c_str());
  std::printf("points         : %lld\n", static_cast<long long>(summary.num_points));
  std::printf("clusters found : %lld\n", static_cast<long long>(summary.num_clusters));
  std::printf("noise points   : %lld\n", static_cast<long long>(summary.num_noise));
  std::printf("largest cluster: %lld points\n",
              static_cast<long long>(summary.largest_cluster));
  std::printf("phases [s]     : build=%.3f rho=%.3f delta=%.3f label=%.3f (total %.3f)\n",
              result.stats.build_seconds, result.stats.rho_seconds,
              result.stats.delta_seconds, result.stats.label_seconds,
              result.stats.total_seconds);
  std::printf("index memory   : %.1f MB\n",
              static_cast<double>(result.stats.index_memory_bytes) / (1024.0 * 1024.0));

  // Every point knows its cluster id (or -1 for noise):
  std::printf("first 5 labels : ");
  for (int i = 0; i < 5; ++i) {
    std::printf("%lld ", static_cast<long long>(result.label[static_cast<size_t>(i)]));
  }
  std::printf("\n");
  return 0;
}
