// Shared infrastructure for the paper-reproduction benchmark binaries.
//
// Each bench binary reproduces one table or figure of §6 (see DESIGN.md's
// experiment index). They share: the dataset registry (four real-like
// datasets plus the synthetic Syn / S1-S4 families), per-dataset default
// parameters (the paper's defaults), and an algorithm factory.
//
// Environment knobs: DPC_BENCH_SCALE, DPC_BENCH_THREADS, DPC_BENCH_HEAVY
// (see eval/bench_config.h).
#ifndef DPC_BENCH_BENCH_UTIL_H_
#define DPC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cfsfdp_a.h"
#include "baselines/lsh_ddp.h"
#include "baselines/scan_dpc.h"
#include "core/approx_dpc.h"
#include "core/dpc.h"
#include "core/ex_dpc.h"
#include "core/kernels.h"
#include "core/s_approx_dpc.h"
#include "data/generators.h"
#include "data/real_like.h"
#include "eval/bench_config.h"
#include "eval/bench_json.h"
#include "eval/table.h"

namespace dpc::bench {

/// Command-line arguments shared by the bench binaries. Today that is
/// one flag: `--json <path>` writes the machine-readable result document
/// (eval/bench_json.h) alongside the human table on stdout.
struct BenchArgs {
  std::string json_path;  ///< empty = table output only

  bool WantJson() const { return !json_path.empty(); }
};

/// Parses argv; unknown arguments abort with usage (benches take no
/// positional inputs — sizing comes from the DPC_BENCH_* environment).
inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// Stamps the config block every bench JSON document carries: bench
/// sizing knobs plus the compiled kernel dispatch. Machine-identifying
/// fields stay out so committed baselines do not churn (see
/// eval/bench_json.h).
inline void AddStandardConfig(const eval::BenchConfig& cfg,
                              eval::BenchJsonWriter* json) {
  json->AddConfig("kernel_dispatch", std::string(kernels::DispatchName()));
  json->AddConfig("kernel_tier", std::string(kernels::ActiveTierName()));
  json->AddConfig("scale", cfg.scale);
  json->AddConfig("max_threads", static_cast<int64_t>(cfg.max_threads));
  json->AddConfig("heavy", static_cast<int64_t>(cfg.heavy ? 1 : 0));
}

/// A dataset plus the paper's default parameters for it.
struct Workload {
  std::string name;
  PointSet points;
  DpcParams params;   ///< d_cut/rho_min/delta_min defaults; threads unset

  Workload() : points(1) {}
};

/// Builds the four real-like workloads at their (scaled) default sizes
/// with the paper's default d_cut (1000/1000/1000/5000).
inline std::vector<Workload> RealWorkloads(const eval::BenchConfig& cfg) {
  std::vector<Workload> out;
  for (const auto& spec : data::RealDatasetSpecs()) {
    Workload w;
    w.name = spec.name;
    w.points = data::MakeRealLike(spec, cfg.Scaled(spec.default_cardinality));
    w.params.d_cut = spec.default_d_cut;
    w.params.rho_min = 10.0;  // the paper's example value (§2.1)
    w.params.delta_min = 5.0 * spec.default_d_cut;
    out.push_back(std::move(w));
  }
  return out;
}

/// The Syn workload (2-d random walk, d_cut = 250 as in Figure 6).
inline Workload SynWorkload(const eval::BenchConfig& cfg, double noise_rate = 0.01) {
  Workload w;
  w.name = "Syn";
  data::RandomWalkParams p;
  p.num_points = cfg.Scaled(100000);
  p.noise_rate = noise_rate;
  p.seed = 320;
  w.points = data::RandomWalk(p);
  w.params.d_cut = 250.0;
  w.params.rho_min = 10.0;
  w.params.delta_min = 2500.0;
  return w;
}

/// An S1..S4-style workload: 15 Gaussian clusters with growing overlap
/// (index 1..4), 5000 points scaled.
inline Workload SxWorkload(const eval::BenchConfig& cfg, int index) {
  Workload w;
  // Built char-wise: gcc-12 flags string-literal concatenation here with
  // a spurious -Wrestrict.
  w.name.push_back('S');
  w.name += std::to_string(index);
  data::GaussianBenchmarkParams p;
  p.num_points = cfg.Scaled(20000);
  p.num_clusters = 15;
  p.overlap = 0.015 + 0.01 * index;  // S1 mild ... S4 strong
  p.noise_rate = 0.005;
  p.seed = 1600 + static_cast<uint64_t>(index);
  w.points = data::GaussianBenchmark(p);
  w.params.d_cut = 1000.0;
  w.params.rho_min = 5.0;
  w.params.delta_min = 8000.0;
  return w;
}

/// Identifier for each evaluated algorithm, in the paper's order.
enum class AlgoId { kScan, kRtreeScan, kLshDdp, kCfsfdpA, kExDpc, kApproxDpc, kSApproxDpc };

inline const std::vector<AlgoId>& AllAlgoIds() {
  static const std::vector<AlgoId> kIds = {
      AlgoId::kScan,  AlgoId::kRtreeScan,  AlgoId::kLshDdp,    AlgoId::kCfsfdpA,
      AlgoId::kExDpc, AlgoId::kApproxDpc, AlgoId::kSApproxDpc};
  return kIds;
}

inline const char* AlgoName(AlgoId id) {
  switch (id) {
    case AlgoId::kScan:
      return "Scan";
    case AlgoId::kRtreeScan:
      return "R-tree + Scan";
    case AlgoId::kLshDdp:
      return "LSH-DDP";
    case AlgoId::kCfsfdpA:
      return "CFSFDP-A";
    case AlgoId::kExDpc:
      return "Ex-DPC";
    case AlgoId::kApproxDpc:
      return "Approx-DPC";
    case AlgoId::kSApproxDpc:
      return "S-Approx-DPC";
  }
  return "?";
}

inline std::unique_ptr<DpcAlgorithm> MakeAlgo(AlgoId id) {
  switch (id) {
    case AlgoId::kScan:
      return std::make_unique<ScanDpc>();
    case AlgoId::kRtreeScan:
      return std::make_unique<RtreeScanDpc>();
    case AlgoId::kLshDdp:
      return std::make_unique<LshDdp>();
    case AlgoId::kCfsfdpA:
      return std::make_unique<CfsfdpA>();
    case AlgoId::kExDpc:
      return std::make_unique<ExDpc>();
    case AlgoId::kApproxDpc:
      return std::make_unique<ApproxDpc>();
    case AlgoId::kSApproxDpc:
      return std::make_unique<SApproxDpc>();
  }
  return nullptr;
}

/// True for algorithms with an O(n^2) phase that must be capped on this
/// machine unless DPC_BENCH_HEAVY=1 (Scan's density pass and the shared
/// Scan-style dependent pass).
inline bool IsQuadratic(AlgoId id) {
  return id == AlgoId::kScan || id == AlgoId::kRtreeScan || id == AlgoId::kCfsfdpA;
}

/// Runs `algo` on (a possibly sub-sampled copy of) the workload; for
/// quadratic algorithms the input is capped at cfg.QuadraticCap() and the
/// measured time is scaled by (n/capped)^2 to give an honest estimate —
/// the printout marks such rows with '~'. Returns the measured result and
/// sets *estimated when extrapolation happened.
struct TimedRun {
  DpcResult result;
  double seconds = 0.0;
  bool extrapolated = false;
  PointId n_used = 0;
};

inline TimedRun RunTimed(AlgoId id, const Workload& w, const eval::BenchConfig& cfg,
                         int threads) {
  TimedRun out;
  const DpcParams params = w.params;
  // All bench runs share the process-wide pool (ExecutionContext's
  // default); `threads` only caps the parallelism degree per run.
  const ExecutionContext ctx(threads);
  const PointId n = w.points.size();
  auto algo = MakeAlgo(id);
  if (IsQuadratic(id) && n > cfg.QuadraticCap()) {
    const PointId cap = cfg.QuadraticCap();
    const PointSet sub = w.points.Sample(static_cast<double>(cap) / static_cast<double>(n),
                                         /*seed=*/97);
    out.result = algo->Run(sub, params, ctx);
    const double ratio = static_cast<double>(n) / static_cast<double>(sub.size());
    out.seconds = out.result.stats.total_seconds * ratio * ratio;
    out.extrapolated = true;
    out.n_used = sub.size();
  } else {
    out.result = algo->Run(w.points, params, ctx);
    out.seconds = out.result.stats.total_seconds;
    out.n_used = n;
  }
  return out;
}

/// Formats seconds with the extrapolation marker used across tables.
inline std::string FmtSeconds(double s, bool extrapolated = false) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%.3f", extrapolated ? "~" : "", s);
  return buf;
}

/// Standard banner: what this binary reproduces and at what scale.
inline void PrintBanner(const char* artifact, const char* description,
                        const eval::BenchConfig& cfg) {
  std::printf("=== %s — %s ===\n", artifact, description);
  std::printf("scale=%.2f threads_cap=%d heavy=%d kernels=%s  (set "
              "DPC_BENCH_SCALE / DPC_BENCH_THREADS / DPC_BENCH_HEAVY to "
              "adjust)\n",
              cfg.scale, cfg.max_threads, cfg.heavy ? 1 : 0,
              kernels::DescribeKernels().c_str());
  std::printf("'~' marks O(n^2) baselines measured on a capped sample and "
              "extrapolated quadratically.\n\n");
}

}  // namespace dpc::bench

#endif  // DPC_BENCH_BENCH_UTIL_H_
