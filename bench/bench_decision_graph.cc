// Figure 1 — decision graph of an S2-like dataset.
//
// The paper's Figure 1(b) shows that on S2 (15 Gaussian clusters) exactly
// 15 points stand out with large dependent distances. This bench prints
// the top of the decision graph and the separation ratio between the
// 15th and 16th cluster-candidate deltas; a large ratio is the visual
// gap users exploit to pick delta_min.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/decision_graph.h"
#include "core/ex_dpc.h"
#include "eval/rand_index.h"
#include "eval/svg_plot.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Figure 1", "decision graph of S2", cfg);

  bench::Workload w = bench::SxWorkload(cfg, 2);
  w.params.num_threads = cfg.max_threads;
  w.params.delta_min = w.params.d_cut * 1.01;  // permissive; graph first

  ExDpc algo;
  DpcResult r = algo.Run(w.points, w.params);
  const auto graph = BuildDecisionGraph(r);

  eval::Table table({"rank", "rho", "delta"});
  // Rank among non-noise candidates (what the analyst looks at).
  std::vector<DecisionPoint> candidates;
  for (const auto& dp : graph) {
    if (dp.rho >= w.params.rho_min) candidates.push_back(dp);
  }
  for (size_t i = 0; i < candidates.size() && i < 18; ++i) {
    table.AddRow({std::to_string(i + 1), StrFormat("%.1f", candidates[i].rho),
                  std::isinf(candidates[i].delta) ? "inf"
                                                  : StrFormat("%.1f", candidates[i].delta)});
  }
  table.Print();

  const double d15 = candidates[14].delta;
  const double d16 = candidates[15].delta;
  std::printf("\ndelta(15th) / delta(16th) separation ratio: %.1fx\n",
              std::isinf(d15) ? 999.0 : d15 / d16);
  std::printf("expected shape: 15 candidates tower above the rest "
              "(the dataset has 15 Gaussian clusters)\n");

  const double suggested = SuggestDeltaMinForK(r, w.params, 15);
  DpcParams final_params = w.params;
  final_params.delta_min = suggested;
  FinalizeClusters(final_params, &r);
  std::printf("clusters at the suggested threshold (%.1f): %lld\n", suggested,
              static_cast<long long>(r.num_clusters()));

  // Render both panels of Figure 1: the dataset and its decision graph.
  {
    eval::SvgOptions opt;
    opt.title = "Figure 1(a): S2 clustered by Ex-DPC";
    (void)eval::WriteScatterSvg(w.points, r.label, r.centers, "fig1a_s2.svg", opt);
    opt.title = "Figure 1(b): decision graph of S2";
    (void)eval::WriteDecisionGraphSvg(graph, "fig1b_decision_graph.svg", opt);
    std::printf("renderings written to fig1a_s2.svg and fig1b_decision_graph.svg\n");
  }
  return 0;
}
