// Table 2 — Rand index on Syn under growing noise rates.
//
// Reproduces: noise rate in {0.01, 0.02, 0.04, 0.08, 0.16}; LSH-DDP,
// Approx-DPC and S-Approx-DPC (eps = 1.0) scored against Ex-DPC on the
// same noisy dataset. Expected shape: all indices stay high (>= ~0.95)
// at every rate, with Approx-DPC the winner at most rates.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "eval/rand_index.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Table 2", "Rand index on Syn vs noise rate (eps=1.0 for S-Approx)",
                     cfg);

  eval::Table table({"noise rate", "LSH-DDP", "Approx-DPC", "S-Approx-DPC"});
  for (const double rate : {0.01, 0.02, 0.04, 0.08, 0.16}) {
    bench::Workload w = bench::SynWorkload(cfg, /*noise_rate=*/rate);
    DpcParams params = w.params;
    params.num_threads = cfg.max_threads;
    params.epsilon = 1.0;

    ExDpc exact;
    const DpcResult ground = exact.Run(w.points, params);

    LshDdp lsh;
    ApproxDpc approx;
    SApproxDpc s_approx;
    const double ri_lsh = eval::RandIndex(lsh.Run(w.points, params).label, ground.label);
    const double ri_approx = eval::RandIndex(approx.Run(w.points, params).label, ground.label);
    const double ri_s = eval::RandIndex(s_approx.Run(w.points, params).label, ground.label);
    table.AddRow({StrFormat("%.2f", rate), StrFormat("%.3f", ri_lsh),
                  StrFormat("%.3f", ri_approx), StrFormat("%.3f", ri_s)});
  }
  table.Print();
  std::printf("\nexpected shape (Table 2): every cell >= ~0.95 even at rate "
              "0.16; Approx-DPC highest in most rows.\n");
  return 0;
}
