// Table 4 — Rand index of LSH-DDP and Approx-DPC on the real-like
// datasets at default d_cut (1000/1000/1000/5000).
//
// Expected shape: Approx-DPC beats LSH-DDP on every dataset and stays
// >= ~0.96 everywhere (the paper reports 0.999/0.996/0.996/0.960).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "eval/rand_index.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Table 4", "Rand index of LSH-DDP and Approx-DPC on real-like datasets",
                     cfg);

  eval::Table table({"dataset", "n", "LSH-DDP", "Approx-DPC"});
  for (auto& w : bench::RealWorkloads(cfg)) {
    DpcParams params = w.params;
    params.num_threads = cfg.max_threads;
    ExDpc exact;
    const DpcResult ground = exact.Run(w.points, params);
    LshDdp lsh;
    ApproxDpc approx;
    table.AddRow({w.name, std::to_string(w.points.size()),
                  StrFormat("%.3f", eval::RandIndex(lsh.Run(w.points, params).label,
                                                    ground.label)),
                  StrFormat("%.3f", eval::RandIndex(approx.Run(w.points, params).label,
                                                    ground.label))});
  }
  table.Print();
  std::printf("\nexpected shape (Table 4): Approx-DPC > LSH-DDP on every row.\n");
  return 0;
}
