// Ablations of Approx-DPC's design choices (DESIGN.md experiment index).
//
//   A. Joint range search (§4.2) vs per-point range counts: how much of
//      Approx-DPC's rho-phase win comes from sharing tree traversals.
//   B. Cost-based LPT partitioning (§4.5) vs plain dynamic scheduling:
//      the load-balance quality (max/min thread load under the cost
//      model) and wall time. On 1-core machines only the balance metric
//      is meaningful.
//   C. The subset count s of the exact dependent fallback: Equation (2)'s
//      solution vs forced under/over-partitioning.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "index/grid.h"
#include "parallel/lpt_scheduler.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Ablation", "Approx-DPC design choices", cfg);

  auto workloads = bench::RealWorkloads(cfg);

  // --- A: joint range search on/off. ---
  std::printf("A. Joint range search (rho phase time [s]; results identical)\n");
  {
    eval::Table table({"dataset", "joint (paper)", "per-point (Ex-DPC style)", "speedup"});
    for (const auto& w : workloads) {
      DpcParams params = w.params;
      params.num_threads = cfg.max_threads;
      ApproxDpcOptions on;
      ApproxDpcOptions off;
      off.joint_range_search = false;
      const DpcResult a = ApproxDpc(on).Run(w.points, params);
      const DpcResult b = ApproxDpc(off).Run(w.points, params);
      table.AddRow({w.name, StrFormat("%.3f", a.stats.rho_seconds),
                    StrFormat("%.3f", b.stats.rho_seconds),
                    StrFormat("%.2fx", b.stats.rho_seconds /
                                           std::max(a.stats.rho_seconds, 1e-9))});
    }
    table.Print();
  }

  // --- B: LPT vs hash partitioning balance. ---
  std::printf("\nB. Load balancing: LPT vs hash partitioning (cost-model imbalance, "
              "8 simulated threads)\n");
  {
    eval::Table table({"dataset", "LPT makespan/mean", "hash makespan/mean"});
    for (const auto& w : workloads) {
      // Cost model of the rho phase: |P(c)| per cell.
      UniformGrid grid(w.points, w.params.d_cut / std::sqrt(static_cast<double>(w.points.dim())));
      std::vector<double> costs(static_cast<size_t>(grid.num_cells()));
      double total = 0.0;
      for (CellId c = 0; c < grid.num_cells(); ++c) {
        costs[static_cast<size_t>(c)] = static_cast<double>(grid.members(c).size());
        total += costs[static_cast<size_t>(c)];
      }
      const int threads = 8;
      const Schedule lpt = LptSchedule(costs, threads);
      // Hash partitioning: cell id modulo thread (LSH-DDP's strategy).
      std::vector<double> hash_load(static_cast<size_t>(threads), 0.0);
      for (size_t c = 0; c < costs.size(); ++c) hash_load[c % threads] += costs[c];
      double hash_max = 0.0;
      for (const double l : hash_load) hash_max = std::max(hash_max, l);
      const double mean = total / threads;
      table.AddRow({w.name, StrFormat("%.3f", lpt.makespan / mean),
                    StrFormat("%.3f", hash_max / mean)});
    }
    table.Print();
    std::printf("   (1.0 = perfect balance; LPT should sit at ~1.00, hash above it)\n");
  }

  // --- C: subset count s. ---
  std::printf("\nC. Exact-fallback subset count s (delta phase time [s], Household-like)\n");
  {
    const auto& w = workloads[1];
    DpcParams params = w.params;
    params.num_threads = cfg.max_threads;
    const int solved = ApproxDpc::SolveNumSubsets(w.points.size(), w.points.dim());
    eval::Table table({"s", "delta time [s]", "note"});
    for (const int s : {2, solved / 2 > 2 ? solved / 2 : 3, solved, solved * 4}) {
      ApproxDpcOptions opt;
      opt.force_num_subsets = s;
      const DpcResult r = ApproxDpc(opt).Run(w.points, params);
      table.AddRow({std::to_string(s), StrFormat("%.3f", r.stats.delta_seconds),
                    s == solved ? "Equation (2) solution" : ""});
    }
    table.Print();
  }
  return 0;
}
