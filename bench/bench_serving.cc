// Serving-layer benchmark — not a paper figure: a closed-loop load
// generator over serve/ClusterServer measuring what the subsystem adds
// on top of the §6 single-run numbers:
//
//   1. Throughput and p50/p99 response latency for a repeated-config
//      workload (the decision-graph exploration pattern: many clients,
//      few distinct configurations), with the result cache off vs on.
//      The acceptance bar: the cache-hit path is >= 10x faster than
//      recompute.
//   2. A mixed-deadline batch: one request with a microscopic budget
//      expires (kDeadlineExceeded) while its batch-mates complete with
//      labels bit-identical to a direct DpcAlgorithm::Run.
//   3. Shard-parallel dispatch: a 4-request mixed batch served by
//      concurrent executor lanes vs classic serial dispatch. The bar:
//      >= 1.8x aggregate throughput when at least two lanes can overlap,
//      with every response bit-identical to an unsharded direct Run.
//   4. Tracing overhead: the cache-hit workload rerun with a live
//      obs::Trace attached vs detached — the span machinery must be
//      cheap enough that detached tracing is indistinguishable.
//
// Latency tails (p50/p99/p999) are recorded through obs::Histogram —
// the same log-bucketed recorder the server exports — so the numbers
// here and the numbers `dpc_server metrics` reports share bucket
// resolution. `--json <path>` writes the eval/bench_json.h document
// recorded as BENCH_serving.json (scripts/record_bench.py) and gated
// by scripts/check_bench_regression.py.
//
// Scale with DPC_BENCH_SCALE / DPC_BENCH_THREADS as usual. Exits
// non-zero if any demonstration fails, so CI can smoke-run it.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/registry.h"
#include "data/generators.h"
#include "eval/bench_config.h"
#include "eval/bench_json.h"
#include "eval/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/omp_utils.h"
#include "serve/server.h"

namespace {

using Clock = std::chrono::steady_clock;

struct LoadResult {
  /// Submit -> response latencies, recorded concurrently by every
  /// client thread into the lock-free log-bucketed recorder. Tail
  /// percentiles come from LoadResult::latencies.Percentile — the same
  /// math the server's `metrics` command exposes.
  dpc::obs::HistogramSnapshot latencies;
  size_t requests = 0;
  /// Service time of cache hits: client latency minus reported queue
  /// wait — what the server actually spends answering from the cache.
  std::vector<double> hit_service;
  /// Algorithm wall time of real computations (ClusterResponse::run_seconds).
  std::vector<double> miss_run;
  double wall_seconds = 0.0;
  uint64_t errors = 0;

  double throughput() const {
    return static_cast<double>(requests) / std::max(wall_seconds, 1e-12);
  }
};

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

/// num_clients closed-loop clients, each firing requests_per_client
/// requests that cycle through `configs` (phase-shifted per client so
/// distinct configs overlap within batches).
LoadResult RunClosedLoop(dpc::serve::ClusterServer& server,
                         const std::string& dataset,
                         const std::vector<dpc::DpcParams>& configs,
                         int num_clients, int requests_per_client) {
  struct ClientTotals {
    std::vector<double> hit_service;
    std::vector<double> miss_run;
    uint64_t errors = 0;
  };
  // One shared recorder, hit concurrently by every client — exactly the
  // usage pattern the server's latency histograms see.
  dpc::obs::Histogram latency_hist;
  std::vector<ClientTotals> per_client(static_cast<size_t>(num_clients));
  const auto begin = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      ClientTotals& mine = per_client[static_cast<size_t>(c)];
      for (int q = 0; q < requests_per_client; ++q) {
        dpc::serve::ClusterRequest request;
        request.dataset = dataset;
        request.params = configs[static_cast<size_t>(
            (q + c) % static_cast<int>(configs.size()))];
        const auto sent = Clock::now();
        const dpc::serve::ClusterResponse response =
            server.Submit(std::move(request)).get();
        const double latency =
            std::chrono::duration<double>(Clock::now() - sent).count();
        latency_hist.Observe(latency);
        if (!response.status.ok()) {
          ++mine.errors;
        } else if (response.cache_hit) {
          mine.hit_service.push_back(
              std::max(latency - response.queue_seconds, 0.0));
        } else {
          mine.miss_run.push_back(response.run_seconds);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  LoadResult total;
  total.wall_seconds = std::chrono::duration<double>(Clock::now() - begin).count();
  total.latencies = latency_hist.Snapshot();
  total.requests = static_cast<size_t>(total.latencies.count);
  for (ClientTotals& mine : per_client) {
    total.hit_service.insert(total.hit_service.end(),
                             mine.hit_service.begin(), mine.hit_service.end());
    total.miss_run.insert(total.miss_run.end(), mine.miss_run.begin(),
                          mine.miss_run.end());
    total.errors += mine.errors;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpc;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  eval::BenchJsonWriter json("serving");
  bench::AddStandardConfig(cfg, &json);
  std::printf("=== serving layer: batched admission + result cache "
              "(scale %.4g, %d pool threads)\n\n",
              cfg.scale, cfg.max_threads);

  data::GaussianBenchmarkParams gen;
  gen.num_points = cfg.Scaled(500000);
  gen.num_clusters = 15;
  gen.noise_rate = 0.01;
  gen.seed = 7;
  PointSet points = data::GaussianBenchmark(gen);
  const PointId n = points.size();
  std::printf("dataset: %lld points, %d Gaussian clusters\n\n",
              static_cast<long long>(n), gen.num_clusters);

  // The repeated-config workload: 4 distinct d_cut values (a decision-
  // graph sweep), revisited by every client.
  std::vector<DpcParams> configs;
  for (const double d_cut : {800.0, 1000.0, 1200.0, 1500.0}) {
    DpcParams params;
    params.d_cut = d_cut;
    params.rho_min = 5.0;
    params.delta_min = 3.0 * d_cut;
    configs.push_back(params);
  }
  const int num_clients = 4;
  const int requests_per_client = 16;
  json.AddConfig("num_clients", static_cast<int64_t>(num_clients));
  json.AddConfig("requests_per_client",
                 static_cast<int64_t>(requests_per_client));

  eval::Table table({"cache", "requests", "errors", "throughput [req/s]",
                     "p50 [ms]", "p99 [ms]", "p999 [ms]", "hit rate"});
  double mean_hit = 0.0;
  double mean_miss_cached_phase = 0.0;
  size_t cached_phase_hits = 0;
  uint64_t total_errors = 0;
  for (const bool cached : {false, true}) {
    serve::ServerOptions options;
    options.pool_threads = cfg.max_threads;
    options.memory_budget_bytes = cached ? (size_t{64} << 20) : 0;
    // Zero coalescing window: closed-loop clients batch naturally (the
    // dispatcher pops whatever accumulated while busy), and reported
    // latencies are pure service, not door-holding.
    options.batch_window = std::chrono::milliseconds(0);
    serve::ClusterServer server(options);
    server.datasets().Register("bench", points);  // copy; reused next phase

    const LoadResult load = RunClosedLoop(server, "bench", configs,
                                          num_clients, requests_per_client);
    const size_t total = load.requests;
    table.AddRow(
        {cached ? "on" : "off", StrFormat("%zu", total),
         StrFormat("%llu", static_cast<unsigned long long>(load.errors)),
         StrFormat("%.1f", load.throughput()),
         StrFormat("%.2f", load.latencies.Percentile(50.0) * 1e3),
         StrFormat("%.2f", load.latencies.Percentile(99.0) * 1e3),
         StrFormat("%.2f", load.latencies.Percentile(99.9) * 1e3),
         StrFormat("%.0f%%", 100.0 * static_cast<double>(load.hit_service.size()) /
                                 static_cast<double>(total))});
    json.BeginResult(cached ? "closed_loop_cache_on" : "closed_loop_cache_off");
    json.AddMetric("throughput_req_per_s", load.throughput());
    json.AddMetric("p50_ms", load.latencies.Percentile(50.0) * 1e3);
    json.AddMetric("p99_ms", load.latencies.Percentile(99.0) * 1e3);
    json.AddMetric("p999_ms", load.latencies.Percentile(99.9) * 1e3);
    json.AddMetric("errors", static_cast<double>(load.errors));
    if (cached) {
      mean_hit = Mean(load.hit_service);
      mean_miss_cached_phase = Mean(load.miss_run);
      cached_phase_hits = load.hit_service.size();
    }
    total_errors += load.errors;
  }
  table.Print();

  // The gate only holds if the cache actually hit and every request
  // succeeded — a broken cache (zero hits) or erroring workload must
  // FAIL, not divide its way to a bogus speedup.
  bool ok = true;
  if (total_errors > 0) {
    std::printf("\nFAIL: %llu request(s) errored during the load phases\n",
                static_cast<unsigned long long>(total_errors));
    ok = false;
  }
  if (cached_phase_hits == 0) {
    std::printf("\nFAIL: the cached phase produced no cache hits\n");
    ok = false;
  } else {
    const double speedup = mean_miss_cached_phase / std::max(mean_hit, 1e-9);
    std::printf(
        "\ncache-hit service: mean %.3fms vs recompute %.3fms -> %.1fx "
        "(%zu hits)\n",
        mean_hit * 1e3, mean_miss_cached_phase * 1e3, speedup,
        cached_phase_hits);
    if (speedup >= 10.0) {
      std::printf("PASS: cache-hit path is >= 10x faster than recompute\n");
    } else {
      std::printf("FAIL: expected >= 10x\n");
      ok = false;
    }
    // The raw ratio swings with recompute cost (hundreds of x at full
    // scale), so the committed baseline records it capped at the 10x
    // acceptance bar: the regression gate then fails exactly when the
    // bar fails, not when the noisy numerator moves.
    json.BeginResult("cache_hit");
    json.AddMetric("speedup", std::min(speedup, 10.0));
    json.AddMetric("mean_hit_ms", mean_hit * 1e3);
    json.AddMetric("mean_recompute_ms", mean_miss_cached_phase * 1e3);
  }

  // --- mixed-deadline batch -------------------------------------------
  // Three requests admitted together: the 1us budget expires (the batch
  // window alone exceeds it), the others complete; completed labels must
  // be bit-identical to a direct Run with the same configuration.
  std::printf("\n=== mixed-deadline batch\n");
  {
    serve::ServerOptions options;
    options.pool_threads = cfg.max_threads;
    options.memory_budget_bytes = 0;  // force real executions
    serve::ClusterServer server(options);
    server.datasets().Register("bench", points);

    serve::ClusterRequest doomed;
    doomed.dataset = "bench";
    doomed.params = configs[0];
    doomed.deadline = std::chrono::microseconds(1);
    serve::ClusterRequest fine1;
    fine1.dataset = "bench";
    fine1.params = configs[1];
    serve::ClusterRequest fine2;
    fine2.dataset = "bench";
    fine2.params = configs[2];

    auto f0 = server.Submit(doomed);
    auto f1 = server.Submit(fine1);
    auto f2 = server.Submit(fine2);
    const serve::ClusterResponse r0 = f0.get();
    const serve::ClusterResponse r1 = f1.get();
    const serve::ClusterResponse r2 = f2.get();

    if (r0.status.code() == StatusCode::kDeadlineExceeded) {
      std::printf("PASS: 1us-deadline request -> %s\n",
                  r0.status.ToString().c_str());
    } else {
      std::printf("FAIL: expected DEADLINE_EXCEEDED, got %s\n",
                  r0.status.ToString().c_str());
      ok = false;
    }

    auto algo = MakeAlgorithmByName("approx-dpc");
    const std::vector<std::pair<const serve::ClusterResponse*, const DpcParams*>>
        survivors = {{&r1, &configs[1]}, {&r2, &configs[2]}};
    for (const auto& [response, params] : survivors) {
      if (!response->status.ok()) {
        std::printf("FAIL: batch-mate errored: %s\n",
                    response->status.ToString().c_str());
        ok = false;
        continue;
      }
      const DpcResult direct = algo.value()->Run(points, *params);
      if (response->result->label == direct.label) {
        std::printf("PASS: d_cut=%g batch-mate labels bit-identical to "
                    "direct Run (%lld clusters)\n",
                    params->d_cut,
                    static_cast<long long>(direct.num_clusters()));
      } else {
        std::printf("FAIL: d_cut=%g labels diverge from direct Run\n",
                    params->d_cut);
        ok = false;
      }
    }
  }

  // --- shard-parallel dispatch: serial vs concurrent lanes -------------
  // Four distinct small datasets, below the parallel threshold: every
  // request plans a WIDTH-1 shard (serve/shard_pool.h), so this measures
  // request-level OVERLAP, not intra-run parallelism — serial dispatch
  // cannot make the comparison up with wider pools. Cache off: every
  // wave really computes. Best-of-3 per mode.
  std::printf("\n=== shard-parallel dispatch: serial vs concurrent lanes\n");
  {
    const int budget = ResolveThreads(cfg.max_threads);
    std::vector<PointSet> sets;
    std::vector<DpcParams> small_cfgs;
    for (int i = 0; i < 4; ++i) {
      data::GaussianBenchmarkParams g;
      g.num_points = 2000;  // < the 2048 parallel threshold
      g.num_clusters = 4;
      g.seed = 100 + static_cast<uint64_t>(i);
      sets.push_back(data::GaussianBenchmark(g));
      DpcParams p;
      p.d_cut = 1500.0;
      p.rho_min = 2.0;
      p.delta_min = 6000.0;
      small_cfgs.push_back(p);
    }

    std::vector<serve::ClusterResponse> last(4);
    uint64_t last_peak = 0;
    auto run_waves = [&](int max_concurrent) {
      serve::ServerOptions options;
      options.pool_threads = cfg.max_threads;
      options.max_concurrent = max_concurrent;
      options.memory_budget_bytes = 0;  // every request really computes
      options.batch_window = std::chrono::milliseconds(0);
      serve::ClusterServer server(options);
      for (int i = 0; i < 4; ++i) {
        server.datasets().Register("s" + std::to_string(i),
                                   sets[static_cast<size_t>(i)]);
      }
      constexpr int kWaves = 8;
      const auto begin = Clock::now();
      for (int w = 0; w < kWaves; ++w) {
        std::vector<std::future<serve::ClusterResponse>> wave;
        for (int i = 0; i < 4; ++i) {
          serve::ClusterRequest request;
          request.dataset = "s" + std::to_string(i);
          request.algorithm = "ex-dpc";
          request.params = small_cfgs[static_cast<size_t>(i)];
          // BOTH modes run region-sharded, so the serial/concurrent
          // ratio isolates dispatch overlap; the gate below proves
          // sharded + overlapped responses still match unsharded
          // direct Runs bit for bit.
          request.options = {{"sharding", "region"}, {"shards", "2"}};
          wave.push_back(server.Submit(std::move(request)));
        }
        for (int i = 0; i < 4; ++i) {
          serve::ClusterResponse response = wave[static_cast<size_t>(i)].get();
          if (!response.status.ok()) {
            std::printf("FAIL: dispatch request errored: %s\n",
                        response.status.ToString().c_str());
            ok = false;
          }
          last[static_cast<size_t>(i)] = std::move(response);
        }
      }
      const double wall =
          std::chrono::duration<double>(Clock::now() - begin).count();
      last_peak = server.stats().peak_concurrency;
      return wall;
    };

    double serial_wall = 1e300;
    double concurrent_wall = 1e300;
    uint64_t concurrent_peak = 0;
    for (int rep = 0; rep < 3; ++rep) {
      serial_wall = std::min(serial_wall, run_waves(1));
      concurrent_wall = std::min(concurrent_wall, run_waves(4));
      concurrent_peak = std::max(concurrent_peak, last_peak);
    }

    // Every concurrent-mode response (region-sharded, overlapped) must
    // be bit-identical to a plain unsharded direct Run.
    auto exact = MakeAlgorithmByName("ex-dpc");
    for (int i = 0; i < 4; ++i) {
      const DpcResult direct = exact.value()->Run(
          sets[static_cast<size_t>(i)], small_cfgs[static_cast<size_t>(i)]);
      const auto& response = last[static_cast<size_t>(i)];
      if (response.result == nullptr ||
          response.result->label != direct.label) {
        std::printf("FAIL: sharded concurrent response %d diverges from "
                    "unsharded direct Run\n", i);
        ok = false;
      }
    }

    const double ratio = serial_wall / std::max(concurrent_wall, 1e-9);
    // Overlap needs two lanes worth of BUDGET and two real CPUs to run
    // them on; on a single-core host (or a width-1 budget) concurrent
    // dispatch can only time-slice, so the throughput gate is
    // inapplicable — bit-identity above is still enforced.
    const int overlap = std::min(budget, HardwareThreads());
    std::printf("serial dispatch: %.1fms | concurrent lanes: %.1fms -> "
                "%.2fx (peak concurrency %llu, budget %d, cores %d)\n",
                serial_wall * 1e3, concurrent_wall * 1e3, ratio,
                static_cast<unsigned long long>(concurrent_peak), budget,
                HardwareThreads());
    if (overlap < 2) {
      std::printf("SKIP: budget %d / %d core(s) cannot overlap two "
                  "lanes; throughput gate not applicable\n", budget,
                  HardwareThreads());
    } else if (ratio >= 1.8) {
      std::printf("PASS: concurrent dispatch >= 1.8x serial aggregate "
                  "throughput\n");
    } else {
      std::printf("FAIL: expected >= 1.8x, got %.2fx\n", ratio);
      ok = false;
    }
    // Deliberately NOT named "*speedup*": on hosts that cannot overlap
    // two lanes the ratio is ~1x and the regression gate must not
    // misread that as a perf loss.
    json.BeginResult("dispatch");
    json.AddMetric("overlap_ratio", ratio);
    json.AddMetric("serial_ms", serial_wall * 1e3);
    json.AddMetric("concurrent_ms", concurrent_wall * 1e3);
  }

  // --- tracing overhead: detached vs attached trace --------------------
  // The telemetry acceptance bar: with no trace attached (the default),
  // the span machinery must cost nothing measurable on the cache-hit
  // fast path. Also measured attached, as documentation of what `trace
  // on` costs. Cache-hit workload: the per-request work is microseconds,
  // the most overhead-sensitive path the server has. Best-of-3.
  std::printf("\n=== tracing overhead on the cache-hit path\n");
  {
    auto run_traced = [&](const std::shared_ptr<obs::Trace>& trace) {
      serve::ServerOptions options;
      options.pool_threads = cfg.max_threads;
      options.memory_budget_bytes = size_t{64} << 20;
      options.batch_window = std::chrono::milliseconds(0);
      serve::ClusterServer server(options);
      server.datasets().Register("bench", points);
      // Warm the cache so the measured loop is pure hit traffic.
      for (const DpcParams& params : configs) {
        serve::ClusterRequest request;
        request.dataset = "bench";
        request.params = params;
        const serve::ClusterResponse warm = server.Submit(request).get();
        if (!warm.status.ok()) {
          std::printf("FAIL: warmup errored: %s\n",
                      warm.status.ToString().c_str());
          ok = false;
        }
      }
      server.set_trace(trace);
      const LoadResult load = RunClosedLoop(server, "bench", configs,
                                            num_clients, requests_per_client);
      total_errors += load.errors;
      return load.throughput();
    };
    double off_throughput = 0.0;
    double on_throughput = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      off_throughput = std::max(off_throughput, run_traced(nullptr));
      on_throughput =
          std::max(on_throughput, run_traced(std::make_shared<obs::Trace>()));
    }
    const double attached_cost =
        100.0 * (1.0 - on_throughput / std::max(off_throughput, 1e-9));
    std::printf("trace detached: %.1f req/s | attached: %.1f req/s "
                "(attached costs %.1f%%)\n",
                off_throughput, on_throughput, attached_cost);
    json.BeginResult("tracing");
    json.AddMetric("detached_throughput_req_per_s", off_throughput);
    json.AddMetric("attached_throughput_req_per_s", on_throughput);
    json.AddMetric("attached_cost_percent", attached_cost);
  }
  if (total_errors > 0) ok = false;

  std::printf("\n%s\n", ok ? "bench_serving OK" : "bench_serving FAILED");
  if (ok && args.WantJson()) {
    if (!json.WriteFile(args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return ok ? 0 : 1;
}
