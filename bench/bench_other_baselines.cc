// §6 "Algorithms" paragraph — the baselines the paper tested and then
// omitted from its charts: FastDPeak and DPCG ("slow ... significantly
// outperformed by our exact algorithm"; 8114 s and 14390 s on Airline at
// default parameters) and CFSFDP-DE ("clustering accuracy ... is quite
// low, e.g., 0.18 on PAMAP2").
//
// This bench reproduces those two dismissals: total time of FastDPeak /
// DPCG vs Ex-DPC, and the Rand index of CFSFDP-DE vs the serious
// approximations.
#include <cstdio>

#include "baselines/cfsfdp_de.h"
#include "baselines/dpcg.h"
#include "baselines/fast_dpeak.h"
#include "bench_util.h"
#include "common/string_util.h"
#include "eval/rand_index.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("§6 omitted baselines", "FastDPeak / DPCG are slow; CFSFDP-DE is inaccurate",
                     cfg);

  eval::Table table({"dataset", "Ex-DPC [s]", "FastDPeak [s]", "DPCG [s]",
                     "CFSFDP-DE RandIdx", "Approx-DPC RandIdx"});
  for (auto& w : bench::RealWorkloads(cfg)) {
    DpcParams params = w.params;
    params.num_threads = cfg.max_threads;

    ExDpc exact;
    const DpcResult ground = exact.Run(w.points, params);

    FastDpeak fast;
    const DpcResult f = fast.Run(w.points, params);

    // DPCG's dependent pass is quadratic: cap + extrapolate like the
    // other quadratic baselines.
    double dpcg_seconds;
    bool dpcg_extrapolated = false;
    {
      Dpcg dpcg;
      if (w.points.size() > cfg.QuadraticCap()) {
        const PointSet sub = w.points.Sample(
            static_cast<double>(cfg.QuadraticCap()) / static_cast<double>(w.points.size()),
            97);
        const DpcResult r = dpcg.Run(sub, params);
        const double ratio =
            static_cast<double>(w.points.size()) / static_cast<double>(sub.size());
        dpcg_seconds = r.stats.total_seconds * ratio * ratio;
        dpcg_extrapolated = true;
      } else {
        dpcg_seconds = dpcg.Run(w.points, params).stats.total_seconds;
      }
    }

    CfsfdpDe de;
    const DpcResult d = de.Run(w.points, params);
    ApproxDpc approx;
    const DpcResult a = approx.Run(w.points, params);

    table.AddRow({w.name, StrFormat("%.3f", ground.stats.total_seconds),
                  StrFormat("%.3f", f.stats.total_seconds),
                  bench::FmtSeconds(dpcg_seconds, dpcg_extrapolated),
                  StrFormat("%.3f", eval::RandIndex(d.label, ground.label)),
                  StrFormat("%.3f", eval::RandIndex(a.label, ground.label))});
  }
  table.Print();
  std::printf("\nexpected shape: FastDPeak and DPCG well above Ex-DPC "
              "(the paper dropped them for being 1-2 orders slower); "
              "CFSFDP-DE's Rand index clearly below Approx-DPC's.\n");
  return 0;
}
