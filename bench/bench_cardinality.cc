// Figure 7 — running time vs cardinality (sampling rate 0.5 .. 1.0).
//
// Reproduces the four subfigures (Airline, Household, PAMAP2, Sensor):
// each algorithm's total time across uniform sampling rates.
// Expected shapes:
//   * Ex-DPC orders of magnitude below Scan/CFSFDP-A (paper: 13-146x),
//   * Approx-DPC below Ex-DPC and below LSH-DDP (paper: 4-30x),
//   * S-Approx-DPC fastest, scaling ~linearly with the rate.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Figure 7", "running time [s] vs sampling rate", cfg);

  const std::vector<double> rates = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  for (auto& w : bench::RealWorkloads(cfg)) {
    std::printf("%s (n=%lld at rate 1.0, d_cut=%.0f)\n", w.name.c_str(),
                static_cast<long long>(w.points.size()), w.params.d_cut);
    std::vector<std::string> headers = {"algorithm"};
    for (const double r : rates) headers.push_back(StrFormat("rate %.1f", r));
    eval::Table table(headers);

    for (const auto id : bench::AllAlgoIds()) {
      std::vector<std::string> cells = {bench::AlgoName(id)};
      for (const double rate : rates) {
        bench::Workload sub;
        sub.name = w.name;
        sub.points = w.points.Sample(rate, 7);
        sub.params = w.params;
        const auto run = bench::RunTimed(id, sub, cfg, cfg.max_threads);
        cells.push_back(bench::FmtSeconds(run.seconds, run.extrapolated));
      }
      table.AddRow(cells);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("expected shape (Figure 7): Ex-DPC << Scan/CFSFDP-A; "
              "Approx-DPC < Ex-DPC and < LSH-DDP; S-Approx-DPC lowest and "
              "~linear in the rate.\n");
  return 0;
}
