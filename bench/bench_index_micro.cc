// Micro-benchmarks of the distance kernels and index substrates: the
// scalar-vs-batched kernel comparison (the SoA fast path's headline
// numbers), kd-tree build / range count / NN, incremental kd-tree
// insert+NN, R-tree range count, grid build, LSH partitioning. These are
// the primitive costs behind every row of Tables 1 and 6.
//
// Self-contained harness (no external benchmark framework): each case
// auto-calibrates its iteration count until the timed region exceeds
// ~0.12 s. `--json <path>` additionally writes the eval/bench_json.h
// document; scripts/record_bench.py turns that into the committed
// BENCH_kernels.json trajectory and scripts/check_bench_regression.py
// gates CI on the kernel speedups (ratios within one run are stable
// across machines; absolute ns are reported but never gated).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/kernels.h"
#include "core/soa.h"
#include "data/real_like.h"
#include "eval/bench_json.h"
#include "eval/table.h"
#include "index/dynamic_kdtree.h"
#include "index/grid.h"
#include "index/kdtree.h"
#include "index/lsh.h"
#include "index/rtree.h"

namespace dpc {
namespace {

// Keeps `value` observable so the optimizer cannot delete the benchmark
// body.
template <typename T>
inline void Sink(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Runs fn() repeatedly, growing the iteration count until the timed
/// region exceeds `min_seconds`; returns seconds per call.
template <typename Fn>
double SecondsPerOp(Fn&& fn, double min_seconds = 0.12) {
  fn();  // warm caches and touch the data once, untimed
  int64_t iters = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s >= min_seconds) return s / static_cast<double>(iters);
    const double grow =
        s <= 1e-9 ? 64.0 : std::min(64.0, 1.3 * min_seconds / s);
    iters = static_cast<int64_t>(static_cast<double>(iters) * grow) + 1;
  }
}

PointSet MakeData(int64_t n, int dim = 0) {
  PointSet base = data::MakeRealLike(data::RealDatasetSpecByName("Household"),
                                     static_cast<PointId>(n));
  if (dim <= 0 || dim == base.dim()) return base;
  // Re-shape to `dim` by tiling coordinates (keeps realistic value
  // ranges without a second generator).
  PointSet out(dim);
  out.Reserve(base.size());
  std::vector<double> p(static_cast<size_t>(dim));
  for (PointId i = 0; i < base.size(); ++i) {
    for (int d = 0; d < dim; ++d) {
      p[static_cast<size_t>(d)] =
          base[i][d % base.dim()] * (1.0 + 0.01 * (d / base.dim()));
    }
    out.Add(p.data());
  }
  return out;
}

struct KernelNumbers {
  double scalar_ns = 0.0;
  double batch_ns = 0.0;
  double speedup() const { return batch_ns > 0.0 ? scalar_ns / batch_ns : 0.0; }
};

/// One scalar-vs-batched comparison over a full sweep of `points`
/// (n per-point distance evaluations per op, fresh query each op).
/// kind: 0 = squared distances into a buffer, 1 = range count,
/// 2 = min distance. Alternates the two sides over `kRepeats` rounds and
/// keeps each side's minimum — the noise-robust estimator for the gated
/// speedup ratios (this box shares its core, so a single round can see a
/// 2x swing from a noisy neighbor). Many short rounds beat few long
/// ones: a slow phase — a noisy neighbor, a frequency dip — lasts
/// longer than one 60ms window, so at least some rounds land clean.
KernelNumbers MeasureKernel(const PointSet& points, const PointSetSoA& soa,
                            int kind, double radius) {
  const PointId n = points.size();
  const int dim = points.dim();
  const double r_sq = radius * radius;
  std::vector<double> buf(static_cast<size_t>(n));
  KernelNumbers out;
  out.scalar_ns = std::numeric_limits<double>::infinity();
  out.batch_ns = std::numeric_limits<double>::infinity();

  constexpr int kRepeats = 16;
  constexpr double kRoundSeconds = 0.06;
  for (int rep = 0; rep < kRepeats; ++rep) {
    // Scalar reference: the row-major per-point loops every hot path ran
    // before the SoA view existed.
    {
      Rng rng(17);
      const double ns =
          1e9 / static_cast<double>(n) * SecondsPerOp([&] {
            const double* q =
                points[static_cast<PointId>(rng.NextBounded(
                    static_cast<uint64_t>(n)))];
            if (kind == 0) {
              for (PointId j = 0; j < n; ++j) {
                buf[static_cast<size_t>(j)] = SquaredDistance(q, points[j], dim);
              }
              Sink(buf[static_cast<size_t>(n - 1)]);
            } else if (kind == 1) {
              PointId count = 0;
              for (PointId j = 0; j < n; ++j) {
                if (SquaredDistance(q, points[j], dim) <= r_sq) ++count;
              }
              Sink(count);
            } else {
              double best_sq = std::numeric_limits<double>::infinity();
              PointId best = -1;
              for (PointId j = 0; j < n; ++j) {
                const double d_sq = SquaredDistance(q, points[j], dim);
                if (d_sq < best_sq) {
                  best_sq = d_sq;
                  best = j;
                }
              }
              Sink(best);
            }
          }, kRoundSeconds);
      out.scalar_ns = std::min(out.scalar_ns, ns);
    }

    // Batched kernel over the identity SoA view, same query sequence.
    {
      Rng rng(17);
      const double ns =
          1e9 / static_cast<double>(n) * SecondsPerOp([&] {
            const double* q =
                points[static_cast<PointId>(rng.NextBounded(
                    static_cast<uint64_t>(n)))];
            if (kind == 0) {
              kernels::SquaredDistanceBatch(soa, 0, n, q, buf.data());
              Sink(buf[static_cast<size_t>(n - 1)]);
            } else if (kind == 1) {
              Sink(kernels::RangeCountBatch(soa, 0, n, q, r_sq));
            } else {
              Sink(kernels::MinDistanceBatch(soa, 0, n, q).pos);
            }
          }, kRoundSeconds);
      out.batch_ns = std::min(out.batch_ns, ns);
    }
  }
  return out;
}

}  // namespace
}  // namespace dpc

int main(int argc, char** argv) {
  using namespace dpc;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("index micro",
                     "distance-kernel and index primitive costs", cfg);

  eval::BenchJsonWriter json("index_micro");
  bench::AddStandardConfig(cfg, &json);
  eval::Table table({"case", "metric", "value"});
  const auto emit = [&](const std::string& name, const std::string& metric,
                        double value, const char* fmt = "%.1f") {
    table.AddRow({name, metric, StrFormat(fmt, value)});
    json.AddMetric(metric, value);
  };

  // --- Kernel comparison: the PR-gated numbers. ------------------------
  // n = 4096 matches the baselines' poll-block batch size; dim 2 is the
  // Syn/S1-S4 shape, dim 7 the Household shape.
  //
  // Under runtime dispatch the whole comparison repeats once per
  // host-supported tier (SetActiveTier). The generic tier keeps the
  // historical row names, so the committed trajectory and its 15%
  // regression gate stay comparable across hosts; wide tiers get a
  // _avx2 / _avx512 name suffix, and the `kernel_tiers` config key
  // records which tiers this run measured (the gate skips suffixed
  // baseline rows for tiers the measuring host lacks).
  const std::vector<kernels::KernelTier> tiers = kernels::SupportedTiers();
  {
    std::string tier_list;
    for (const kernels::KernelTier tier : tiers) {
      if (!tier_list.empty()) tier_list += ',';
      tier_list += kernels::TierName(tier);
    }
    json.AddConfig("kernel_tiers", tier_list);  // empty = no runtime dispatch
  }
  const struct {
    const char* name;
    int kind;
  } kKernels[] = {{"sqdist", 0}, {"range_count", 1}, {"min_distance", 2}};
  const size_t tier_passes = tiers.empty() ? 1 : tiers.size();
  for (size_t pass = 0; pass < tier_passes; ++pass) {
    std::string suffix;
    if (!tiers.empty()) {
      kernels::SetActiveTier(tiers[pass]);
      if (tiers[pass] != kernels::KernelTier::kGeneric) {
        suffix = std::string("_") + kernels::TierName(tiers[pass]);
      }
    }
    for (const int dim : {2, 7}) {
      const PointSet points = MakeData(4096, dim);
      const PointSetSoA soa(points);
      const double radius = 1000.0;
      for (const auto& k : kKernels) {
        const KernelNumbers nums = MeasureKernel(points, soa, k.kind, radius);
        const std::string name =
            StrFormat("kernel_%s_dim%d%s", k.name, dim, suffix.c_str());
        json.BeginResult(name);
        emit(name, "scalar_ns_per_point", nums.scalar_ns, "%.2f");
        emit(name, "batch_ns_per_point", nums.batch_ns, "%.2f");
        emit(name, "speedup", nums.speedup(), "%.2fx");
      }
    }
  }
  // Back to the widest tier for the index primitives below, as
  // first-use detection would have chosen.
  if (!tiers.empty()) kernels::SetActiveTier(tiers.back());

  // --- Index primitives (same cases the earlier framework version ran). -
  for (const int64_t n : {int64_t{10000}, int64_t{50000}}) {
    const PointSet ps = MakeData(n);
    const double s = SecondsPerOp([&] {
      KdTree tree(ps);
      Sink(tree.size());
    });
    const std::string name =
        StrFormat("kdtree_build_n%lld", static_cast<long long>(n));
    json.BeginResult(name);
    emit(name, "ns_per_point", 1e9 * s / static_cast<double>(n));
  }
  {
    const PointSet ps = MakeData(20000);
    const KdTree tree(ps);
    for (const double radius : {500.0, 1000.0, 2000.0}) {
      Rng rng(1);
      const double s = SecondsPerOp([&] {
        const PointId q = static_cast<PointId>(
            rng.NextBounded(static_cast<uint64_t>(ps.size())));
        Sink(tree.RangeCount(ps[q], radius, q));
      });
      const std::string name = StrFormat("kdtree_range_count_r%.0f", radius);
      json.BeginResult(name);
      emit(name, "us_per_query", 1e6 * s, "%.2f");
    }
    Rng rng(2);
    const double s = SecondsPerOp([&] {
      const PointId q = static_cast<PointId>(
          rng.NextBounded(static_cast<uint64_t>(ps.size())));
      Sink(tree.Nearest(ps[q], q));
    });
    json.BeginResult("kdtree_nearest");
    emit("kdtree_nearest", "us_per_query", 1e6 * s, "%.2f");
  }
  {
    const PointSet ps = MakeData(20000);
    const double s = SecondsPerOp([&] {
      DynamicKdTree tree(ps);
      double acc = 0.0;
      for (PointId i = 0; i < ps.size(); ++i) {
        if (i > 0) {
          double d = 0.0;
          tree.Nearest(ps[i], &d);
          acc += d;
        }
        tree.Insert(i);
      }
      Sink(acc);
    });
    json.BeginResult("dynamic_kdtree_insert_nearest");
    emit("dynamic_kdtree_insert_nearest", "ns_per_point",
         1e9 * s / static_cast<double>(ps.size()));
  }
  {
    const PointSet ps = MakeData(20000);
    const RTree tree(ps);
    Rng rng(3);
    const double s = SecondsPerOp([&] {
      const PointId q = static_cast<PointId>(
          rng.NextBounded(static_cast<uint64_t>(ps.size())));
      Sink(tree.RangeCount(ps[q], 1000.0, q));
    });
    json.BeginResult("rtree_range_count");
    emit("rtree_range_count", "us_per_query", 1e6 * s, "%.2f");
  }
  for (const int64_t n : {int64_t{10000}, int64_t{50000}}) {
    const PointSet ps = MakeData(n);
    const double side = 1000.0 / std::sqrt(static_cast<double>(ps.dim()));
    const double s = SecondsPerOp([&] {
      UniformGrid grid(ps, side);
      Sink(grid.num_cells());
    });
    const std::string name =
        StrFormat("grid_build_n%lld", static_cast<long long>(n));
    json.BeginResult(name);
    emit(name, "ns_per_point", 1e9 * s / static_cast<double>(n));
  }
  {
    const PointSet ps = MakeData(20000);
    LshParams params;
    params.num_tables = 4;
    params.num_projections = 6;
    params.bucket_width = 4000.0;
    const double s = SecondsPerOp([&] {
      LshPartitioner lsh(ps, params);
      Sink(lsh.num_buckets());
    });
    json.BeginResult("lsh_partition");
    emit("lsh_partition", "ns_per_point",
         1e9 * s / static_cast<double>(ps.size()));
  }

  table.Print();
  if (args.WantJson()) {
    if (!json.WriteFile(args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }
  return 0;
}
