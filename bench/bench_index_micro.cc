// Google-benchmark micro-benchmarks of the index substrates: kd-tree
// build / range count / NN, incremental kd-tree insert+NN, R-tree range
// count, grid build, LSH partitioning. These are the primitive costs
// behind every row of Tables 1 and 6.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "data/real_like.h"
#include "index/dynamic_kdtree.h"
#include "index/grid.h"
#include "index/kdtree.h"
#include "index/lsh.h"
#include "index/rtree.h"

namespace dpc {
namespace {

PointSet MakeData(int64_t n, const char* name = "Household") {
  return data::MakeRealLike(data::RealDatasetSpecByName(name), static_cast<PointId>(n));
}

void BM_KdTreeBuild(benchmark::State& state) {
  const PointSet ps = MakeData(state.range(0));
  for (auto _ : state) {
    KdTree tree(ps);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(10000)->Arg(50000);

void BM_KdTreeRangeCount(benchmark::State& state) {
  const PointSet ps = MakeData(20000);
  KdTree tree(ps);
  Rng rng(1);
  int64_t acc = 0;
  for (auto _ : state) {
    const PointId q = static_cast<PointId>(rng.NextBounded(static_cast<uint64_t>(ps.size())));
    acc += tree.RangeCount(ps[q], static_cast<double>(state.range(0)), q);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeRangeCount)->Arg(500)->Arg(1000)->Arg(2000);

void BM_KdTreeNearest(benchmark::State& state) {
  const PointSet ps = MakeData(20000);
  KdTree tree(ps);
  Rng rng(2);
  for (auto _ : state) {
    const PointId q = static_cast<PointId>(rng.NextBounded(static_cast<uint64_t>(ps.size())));
    benchmark::DoNotOptimize(tree.Nearest(ps[q], q));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdTreeNearest);

void BM_DynamicKdTreeInsertNearest(benchmark::State& state) {
  const PointSet ps = MakeData(20000);
  for (auto _ : state) {
    DynamicKdTree tree(ps);
    double acc = 0.0;
    for (PointId i = 0; i < ps.size(); ++i) {
      if (i > 0) {
        double d = 0.0;
        tree.Nearest(ps[i], &d);
        acc += d;
      }
      tree.Insert(i);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * ps.size());
}
BENCHMARK(BM_DynamicKdTreeInsertNearest);

void BM_RTreeRangeCount(benchmark::State& state) {
  const PointSet ps = MakeData(20000);
  RTree tree(ps);
  Rng rng(3);
  int64_t acc = 0;
  for (auto _ : state) {
    const PointId q = static_cast<PointId>(rng.NextBounded(static_cast<uint64_t>(ps.size())));
    acc += tree.RangeCount(ps[q], 1000.0, q);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeRangeCount);

void BM_GridBuild(benchmark::State& state) {
  const PointSet ps = MakeData(state.range(0));
  const double side = 1000.0 / std::sqrt(4.0);
  for (auto _ : state) {
    UniformGrid grid(ps, side);
    benchmark::DoNotOptimize(grid.num_cells());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridBuild)->Arg(10000)->Arg(50000);

void BM_LshPartition(benchmark::State& state) {
  const PointSet ps = MakeData(20000);
  LshParams params;
  params.num_tables = 4;
  params.num_projections = 6;
  params.bucket_width = 4000.0;
  for (auto _ : state) {
    LshPartitioner lsh(ps, params);
    benchmark::DoNotOptimize(lsh.MemoryBytes());
  }
  state.SetItemsProcessed(state.iterations() * ps.size());
}
BENCHMARK(BM_LshPartition);

}  // namespace
}  // namespace dpc
