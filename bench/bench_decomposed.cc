// Table 6 — decomposed running time: local density (rho) vs dependent
// point (delta) computation, per algorithm per dataset.
//
// Expected shapes:
//   * Scan: both phases huge; R-tree+Scan fixes rho but not delta,
//   * CFSFDP-A: rho below Scan's but the same quadratic delta,
//   * Ex-DPC: both phases small; delta no longer dominated by n^2,
//   * Approx-DPC: rho below Ex-DPC's (joint range search) and delta tiny
//     (O(1) approximations + small P'),
//   * S-Approx-DPC: the smallest rho and delta.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Table 6", "decomposed time [s]: rho comp. vs delta comp.", cfg);

  for (auto& w : bench::RealWorkloads(cfg)) {
    std::printf("%s (n=%lld, d_cut=%.0f)\n", w.name.c_str(),
                static_cast<long long>(w.points.size()), w.params.d_cut);
    eval::Table table({"algorithm", "build", "rho comp.", "delta comp.", "total"});
    for (const auto id : bench::AllAlgoIds()) {
      const auto run = bench::RunTimed(id, w, cfg, cfg.max_threads);
      const double ratio = run.extrapolated
                               ? (static_cast<double>(w.points.size()) /
                                  static_cast<double>(run.n_used)) *
                                     (static_cast<double>(w.points.size()) /
                                      static_cast<double>(run.n_used))
                               : 1.0;
      table.AddRow({bench::AlgoName(id),
                    bench::FmtSeconds(run.result.stats.build_seconds * ratio,
                                      run.extrapolated),
                    bench::FmtSeconds(run.result.stats.rho_seconds * ratio,
                                      run.extrapolated),
                    bench::FmtSeconds(run.result.stats.delta_seconds * ratio,
                                      run.extrapolated),
                    bench::FmtSeconds(run.seconds, run.extrapolated)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("expected shape (Table 6): Approx-DPC's rho < Ex-DPC's rho "
              "(joint range search); Approx/S-Approx delta phases tiny; "
              "Scan-family delta quadratic.\n");
  return 0;
}
