// Figure 6 — 2-D visualization of each algorithm's clustering on Syn.
//
// The paper's Figure 6 shows the Syn random-walk dataset clustered by
// Ex-DPC (ground truth), LSH-DDP, Approx-DPC, and S-Approx-DPC at
// eps in {0.2, 1.0} with d_cut = 250. We cannot render pictures here,
// so the bench (a) writes labeled CSVs ready for plotting and (b) prints
// the quantitative counterpart: cluster counts, the number of points
// whose label differs from Ex-DPC's, and the Rand index.
//
// Expected shape: Approx-DPC identical (or near-identical) to Ex-DPC;
// S-Approx-DPC(0.2) near-identical; S-Approx-DPC(1.0) and LSH-DDP show
// visible differences — LSH-DDP's being the hardest to explain (it also
// approximates densities).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "data/io.h"
#include "eval/rand_index.h"
#include "eval/svg_plot.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Figure 6", "2-D visualization of clustering results on Syn (d_cut=250)",
                     cfg);

  bench::Workload w = bench::SynWorkload(cfg);
  ExDpc exact;
  DpcParams params = w.params;
  params.num_threads = cfg.max_threads;
  const DpcResult ground = exact.Run(w.points, params);
  std::printf("Syn: n=%lld, Ex-DPC finds %lld clusters (ground truth for this figure)\n\n",
              static_cast<long long>(w.points.size()),
              static_cast<long long>(ground.num_clusters()));
  (void)data::SaveLabeledCsv(w.points, ground.label, "fig6_ex_dpc.csv");
  {
    eval::SvgOptions svg;
    svg.title = "Figure 6(b): Ex-DPC on Syn";
    (void)eval::WriteScatterSvg(w.points, ground.label, ground.centers,
                                "fig6_ex_dpc.svg", svg);
  }

  eval::Table table({"algorithm", "clusters", "labels != Ex-DPC", "RandIdx", "csv"});
  table.AddRow({"Ex-DPC", std::to_string(ground.num_clusters()), "0", "1.0000",
                "fig6_ex_dpc.csv"});

  auto report = [&](const char* name, const DpcResult& r, const std::string& csv) {
    int64_t diff = 0;
    for (size_t i = 0; i < r.label.size(); ++i) diff += (r.label[i] != ground.label[i]);
    (void)data::SaveLabeledCsv(w.points, r.label, csv);
    eval::SvgOptions svg;
    svg.title = StrFormat("Figure 6: %s on Syn", name);
    const std::string svg_path = csv.substr(0, csv.size() - 4) + ".svg";
    (void)eval::WriteScatterSvg(w.points, r.label, r.centers, svg_path, svg);
    table.AddRow({name, std::to_string(r.num_clusters()), std::to_string(diff),
                  StrFormat("%.4f", eval::RandIndex(r.label, ground.label)), csv});
  };

  {
    LshDdp algo;
    report("LSH-DDP", algo.Run(w.points, params), "fig6_lsh_ddp.csv");
  }
  {
    ApproxDpc algo;
    report("Approx-DPC", algo.Run(w.points, params), "fig6_approx_dpc.csv");
  }
  for (const double eps : {0.2, 1.0}) {
    DpcParams p = params;
    p.epsilon = eps;
    SApproxDpc algo;
    report(StrFormat("S-Approx-DPC(eps=%.1f)", eps).c_str(), algo.Run(w.points, p),
           StrFormat("fig6_s_approx_%.1f.csv", eps));
  }
  table.Print();
  std::printf("\nexpected shape: Approx-DPC ~identical to Ex-DPC (same centers, "
              "Theorem 4); S-Approx(0.2) ~identical; S-Approx(1.0) minor drift; "
              "LSH-DDP the largest drift.\nCSV columns: x,y,label; matching "
              "fig6_*.svg renderings are written alongside (centers drawn as "
              "stars).\n");
  return 0;
}
