// Figure 8 — running time vs the cutoff distance d_cut.
//
// Reproduces the d_cut sweep (500..1500 for Airline/Household/PAMAP2-like,
// 4000..6000 for Sensor-like). Expected shapes:
//   * Scan and CFSFDP-A flat (they scan regardless of d_cut),
//   * LSH-DDP very sensitive (bucket sizes grow with d_cut),
//   * our algorithms grow mildly (rho_avg term), S-Approx-DPC the least
//     sensitive (larger d_cut also means fewer grid cells).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Figure 8", "running time [s] vs d_cut", cfg);

  for (auto& w : bench::RealWorkloads(cfg)) {
    std::vector<double> cuts;
    if (w.name == "Sensor") {
      cuts = {4000, 4500, 5000, 5500, 6000};
    } else {
      cuts = {500, 750, 1000, 1250, 1500};
    }
    std::printf("%s (n=%lld)\n", w.name.c_str(), static_cast<long long>(w.points.size()));
    std::vector<std::string> headers = {"algorithm"};
    for (const double c : cuts) headers.push_back(StrFormat("d_cut=%.0f", c));
    eval::Table table(headers);

    for (const auto id : bench::AllAlgoIds()) {
      std::vector<std::string> cells = {bench::AlgoName(id)};
      for (const double d_cut : cuts) {
        bench::Workload sub;
        sub.name = w.name;
        sub.points = w.points;  // same points, different d_cut
        sub.params = w.params;
        sub.params.d_cut = d_cut;
        sub.params.delta_min = 5.0 * d_cut;
        const auto run = bench::RunTimed(id, sub, cfg, cfg.max_threads);
        cells.push_back(bench::FmtSeconds(run.seconds, run.extrapolated));
      }
      table.AddRow(cells);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("expected shape (Figure 8): Scan/CFSFDP-A flat; LSH-DDP very "
              "sensitive; Ex-DPC/Approx-DPC mildly growing; S-Approx-DPC "
              "least sensitive.\n");
  return 0;
}
