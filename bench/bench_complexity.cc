// Table 1 — empirical time-complexity check.
//
// Table 1 gives asymptotic bounds: Scan is Theta(n^2); our algorithms are
// sub-quadratic for small d_cut. This bench sweeps n on the Household-like
// workload (fixed d_cut), fits the log-log slope of total runtime per
// algorithm, and prints the fitted exponent: Scan ~ 2, Ex-DPC and
// Approx-DPC clearly below 2, S-Approx-DPC ~ 1 (the §5 linearity claim).
// `--json <path>` writes the per-size times and fitted exponents as an
// eval/bench_json.h document for the BENCH_*.json trajectory.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "data/real_like.h"
#include "eval/bench_json.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace dpc;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Table 1", "empirical scaling exponents (log-log slope of time vs n)",
                     cfg);

  const auto& spec = data::RealDatasetSpecByName("Household");
  // Slope fitting needs honest measurements at every n, so the quadratic
  // cap is disabled here and the sweep tops out at a size the quadratic
  // baselines can still finish (~40k).
  eval::BenchConfig honest = cfg;
  honest.heavy = true;
  const std::vector<PointId> sizes = {cfg.Scaled(5000), cfg.Scaled(10000),
                                      cfg.Scaled(20000), cfg.Scaled(40000)};
  const PointSet full = data::MakeRealLike(spec, sizes.back());

  eval::BenchJsonWriter json("complexity");
  bench::AddStandardConfig(cfg, &json);
  eval::Table table({"algorithm", "n=" + std::to_string(sizes[0]),
                     "n=" + std::to_string(sizes[1]), "n=" + std::to_string(sizes[2]),
                     "n=" + std::to_string(sizes[3]), "fitted exponent"});

  for (const auto id : bench::AllAlgoIds()) {
    std::vector<double> times;
    std::vector<std::string> cells = {bench::AlgoName(id)};
    for (const PointId n : sizes) {
      bench::Workload w;
      w.name = spec.name;
      w.points = full.Sample(static_cast<double>(n) / static_cast<double>(full.size()), 11);
      w.params.d_cut = spec.default_d_cut;
      w.params.rho_min = 10.0;
      w.params.delta_min = 5.0 * spec.default_d_cut;
      const auto run = bench::RunTimed(id, w, honest, cfg.max_threads);
      times.push_back(run.seconds);
      cells.push_back(bench::FmtSeconds(run.seconds, run.extrapolated));
    }
    json.BeginResult(bench::AlgoName(id));
    for (size_t i = 0; i < sizes.size(); ++i) {
      json.AddMetric("seconds_n" + std::to_string(sizes[i]), times[i]);
    }
    // Least-squares slope of log(time) vs log(n).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const auto m = static_cast<double>(sizes.size());
    for (size_t i = 0; i < sizes.size(); ++i) {
      const double x = std::log(static_cast<double>(sizes[i]));
      const double y = std::log(std::max(times[i], 1e-6));
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
    json.AddMetric("fitted_exponent", slope);
    cells.push_back(StrFormat("%.2f", slope));
    table.AddRow(cells);
  }
  table.Print();
  std::printf("\nexpected shape (Table 1): Scan / R-tree+Scan / CFSFDP-A ~ 2.0 "
              "(quadratic dependent pass); Ex-DPC and Approx-DPC < 2; "
              "S-Approx-DPC ~ 1 (near-linear, §5).\n");
  if (args.WantJson()) {
    if (!json.WriteFile(args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}
