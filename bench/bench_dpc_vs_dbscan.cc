// Figure 2 — clustering quality of DPC vs DBSCAN on S2.
//
// Reproduces Example 2: DBSCAN's parameters are chosen so that ~15
// clusters are obtained from OPTICS, then both algorithms are scored
// against the generating 15-component mixture. Expected shape: DPC's
// agreement (especially ARI) exceeds DBSCAN's because DBSCAN merges
// overlapping clusters connected by border points.
#include <cstdio>

#include "baselines/dbscan.h"
#include "baselines/optics.h"
#include "bench_util.h"
#include "common/string_util.h"
#include "core/ex_dpc.h"
#include "data/generators.h"
#include "eval/rand_index.h"
#include "eval/svg_plot.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Figure 2", "DPC vs DBSCAN clustering quality on S2", cfg);

  eval::Table table({"overlap", "algorithm", "clusters", "RandIdx", "ARI"});
  // Sweep overlap: the S2/S3 regimes are where DBSCAN starts merging.
  for (const double overlap : {0.025, 0.035, 0.045}) {
    data::GaussianBenchmarkParams gen;
    gen.num_points = cfg.Scaled(10000);
    gen.num_clusters = 15;
    gen.overlap = overlap;
    gen.noise_rate = 0.01;
    gen.seed = 22;
    std::vector<int64_t> truth;
    const PointSet points = data::GaussianBenchmark(gen, &truth);

    DpcParams params;
    params.d_cut = 1400.0;
    params.rho_min = 4.0;
    params.delta_min = 9000.0;
    params.num_threads = cfg.max_threads;
    ExDpc dpc_algo;
    const DpcResult r = dpc_algo.Run(points, params);

    const int min_pts = 8;
    const double max_eps = 4000.0;
    const OpticsResult optics = Optics(points, {.max_eps = max_eps, .min_pts = min_pts});
    const double eps = FindThresholdForClusterCount(optics, max_eps, 15);
    const DbscanResult db = Dbscan(points, {.eps = eps, .min_pts = min_pts});

    table.AddRow({StrFormat("%.3f", overlap), "DPC (Ex-DPC)",
                  std::to_string(r.num_clusters()),
                  StrFormat("%.4f", eval::RandIndex(r.label, truth)),
                  StrFormat("%.4f", eval::AdjustedRandIndex(r.label, truth))});
    table.AddRow({StrFormat("%.3f", overlap),
                  StrFormat("DBSCAN (eps=%.0f)", eps),
                  std::to_string(db.num_clusters),
                  StrFormat("%.4f", eval::RandIndex(db.label, truth)),
                  StrFormat("%.4f", eval::AdjustedRandIndex(db.label, truth))});

    // Render the two panels of Figure 2 at the middle overlap setting.
    if (overlap == 0.035) {
      eval::SvgOptions opt;
      opt.title = "Figure 2(a): DPC on S2";
      (void)eval::WriteScatterSvg(points, r.label, r.centers, "fig2a_dpc.svg", opt);
      opt.title = "Figure 2(b): DBSCAN on S2";
      (void)eval::WriteScatterSvg(points, db.label, {}, "fig2b_dbscan.svg", opt);
    }
  }
  table.Print();
  std::printf("\nexpected shape: DPC >= DBSCAN at every overlap, gap widening "
              "with overlap (Figure 2's merge effect).\n"
              "renderings: fig2a_dpc.svg, fig2b_dbscan.svg\n");
  return 0;
}
