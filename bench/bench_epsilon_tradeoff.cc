// Table 5 — running time vs accuracy of S-Approx-DPC as eps grows.
//
// Reproduces: eps in {0.2, 0.4, 0.6, 0.8, 1.0} on Airline-like and
// Household-like data. Expected shape: time decreases monotonically with
// eps while the Rand index decays only slightly (the paper: Airline
// 32.2s/0.998 at 0.2 down to 16.4s/0.969 at 1.0).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "eval/rand_index.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Table 5", "S-Approx-DPC time vs Rand index across eps", cfg);

  for (const char* name : {"Airline", "Household"}) {
    bench::Workload target;
    for (auto& w : bench::RealWorkloads(cfg)) {
      if (w.name == name) target = std::move(w);
    }
    DpcParams params = target.params;
    params.num_threads = cfg.max_threads;

    ExDpc exact;
    const DpcResult ground = exact.Run(target.points, params);

    std::printf("%s (n=%lld)\n", name, static_cast<long long>(target.points.size()));
    eval::Table table({"eps", "time [s]", "Rand index", "clusters"});
    for (const double eps : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      DpcParams p = params;
      p.epsilon = eps;
      SApproxDpc algo;
      const DpcResult r = algo.Run(target.points, p);
      table.AddRow({StrFormat("%.1f", eps), StrFormat("%.3f", r.stats.total_seconds),
                    StrFormat("%.3f", eval::RandIndex(r.label, ground.label)),
                    std::to_string(r.num_clusters())});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("expected shape (Table 5): time strictly falls as eps grows; "
              "Rand index drifts down only slightly.\n");
  return 0;
}
