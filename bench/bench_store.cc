// Warm-restart serving through the persistent solution store — not a
// paper figure: quantifies the store/ tentpole. A server with a store
// attached writes every computed DpcSolution through to the append-only
// log; after a restart (process death included — the log is the only
// state that survives), a re-threshold request promotes the solution
// back from disk and finalizes it in O(n), instead of re-running the
// clustering pipeline.
//
// Three CI-enforced gates:
//   1. the restarted server answers a threshold sweep >= 10x faster than
//      per-threshold recompute would,
//   2. every warm answer is bit-identical to the labels the FIRST server
//      served before the restart (decode -> finalize can never diverge
//      from in-memory -> finalize), and
//   3. the restarted server's recompute counter stays at ZERO — warm
//      means promoted, never re-solved.
//
// The dataset is floored at 20k points regardless of DPC_BENCH_SCALE
// (the gate measures a ratio; at toy sizes the finalize pass is all
// fixed overhead). Exits non-zero if a gate fails.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/registry.h"
#include "eval/table.h"
#include "serve/request.h"
#include "serve/server.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpc;
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("persistent solution store",
                     "warm restart: promote + finalize vs recompute", cfg);

  eval::BenchConfig floored = cfg;
  floored.scale = std::max(cfg.scale, 1.0);
  const bench::Workload w = bench::SxWorkload(floored, 2);

  const std::string store_path =
      "/tmp/dpc_bench_store_" + std::to_string(::getpid()) + ".log";
  std::remove(store_path.c_str());

  // The threshold ladder a decision-graph exploration would walk after
  // the restart.
  std::vector<ThresholdSpec> sweep;
  for (int i = 0; i < 8; ++i) {
    ThresholdSpec spec = w.params.threshold();
    spec.delta_min = w.params.d_cut * (1.5 + 0.5 * i);
    sweep.push_back(spec);
  }

  auto make_request = [&](const ThresholdSpec& spec) {
    serve::ClusterRequest request;
    request.dataset = w.name;
    request.algorithm = "ex-dpc";
    request.params = w.params;
    request.params.rho_min = spec.rho_min;
    request.params.delta_min = spec.delta_min;
    request.kind = serve::RequestKind::kRethreshold;
    return request;
  };

  serve::ServerOptions options;
  options.pool_threads = cfg.max_threads;
  options.store_path = store_path;

  // ---- Phase 1: a server computes once, serves the sweep, and dies.
  // Only the log survives it.
  std::vector<std::vector<int64_t>> labels_before;
  double solve_seconds = 0.0;
  uint64_t store_bytes = 0;
  {
    serve::ClusterServer server(options);
    server.datasets().Register(w.name, w.points);
    serve::ClusterRequest compute;
    compute.dataset = w.name;
    compute.algorithm = "ex-dpc";
    compute.params = w.params;
    const auto solve_begin = std::chrono::steady_clock::now();
    const auto computed = server.Submit(compute).get();
    solve_seconds = Seconds(solve_begin);
    if (!computed.status.ok()) {
      std::printf("FAIL: compute request: %s\n",
                  computed.status.ToString().c_str());
      return 1;
    }
    for (const ThresholdSpec& spec : sweep) {
      const auto r = server.Submit(make_request(spec)).get();
      if (!r.status.ok()) {
        std::printf("FAIL: pre-restart rethreshold: %s\n",
                    r.status.ToString().c_str());
        return 1;
      }
      labels_before.push_back(r.result->label);
    }
    store_bytes = server.stats().store_bytes;
  }

  // ---- Phase 2: a fresh server over the same log answers the same
  // sweep warm. The first request pays the promotion (log read + decode);
  // the rest are label-memo-free finalizes against the promoted artifact.
  bool ok = true;
  double warm_seconds = 0.0;
  uint64_t warm_promotions = 0;
  uint64_t warm_recomputes = 0;
  {
    serve::ClusterServer server(options);
    server.datasets().Register(w.name, w.points);
    const auto warm_begin = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<const DpcResult>> warm;
    for (const ThresholdSpec& spec : sweep) {
      const auto r = server.Submit(make_request(spec)).get();
      if (!r.status.ok()) {
        std::printf("FAIL: warm rethreshold after restart: %s\n",
                    r.status.ToString().c_str());
        return 1;
      }
      warm.push_back(r.result);
    }
    warm_seconds = Seconds(warm_begin);
    const serve::ServerStats stats = server.stats();
    warm_promotions = stats.promotions;
    warm_recomputes = stats.recomputes;
    if (stats.recomputes != 0) {
      std::printf("FAIL: restarted server recomputed %llu times (gate: 0)\n",
                  static_cast<unsigned long long>(stats.recomputes));
      ok = false;
    }
    if (stats.promotions < 1) {
      std::printf("FAIL: restarted server never promoted from the store\n");
      ok = false;
    }
    // Gate 2: promotion is bit-identical to the in-memory answers.
    for (size_t k = 0; k < sweep.size(); ++k) {
      if (warm[k]->label != labels_before[k]) {
        std::printf("FAIL: warm labels diverge at delta_min=%g\n",
                    sweep[k].delta_min);
        ok = false;
      }
    }
  }

  // ---- Baseline: what the sweep costs without the store — a full
  // pipeline per threshold against the same dataset.
  auto algo = MakeAlgorithmByName("ex-dpc");
  const ExecutionContext ctx(cfg.max_threads);
  const auto recompute_begin = std::chrono::steady_clock::now();
  for (const ThresholdSpec& spec : sweep) {
    DpcParams params = w.params;
    params.rho_min = spec.rho_min;
    params.delta_min = spec.delta_min;
    (void)algo.value()->Run(w.points, params, ctx);
  }
  const double recompute_seconds = Seconds(recompute_begin);

  const double speedup = recompute_seconds / std::max(warm_seconds, 1e-9);
  eval::Table table({"phase", "seconds", "notes"});
  table.AddRow({"solve (phase 1)", bench::FmtSeconds(solve_seconds),
                "one Ex-DPC compute, written through to the log"});
  table.AddRow({"warm sweep (restarted)", bench::FmtSeconds(warm_seconds),
                StrFormat("%zu thresholds, %llu promotion(s), %llu recomputes",
                          sweep.size(),
                          static_cast<unsigned long long>(warm_promotions),
                          static_cast<unsigned long long>(warm_recomputes))});
  table.AddRow({"recompute sweep", bench::FmtSeconds(recompute_seconds),
                StrFormat("%.0fx slower than warm", speedup)});
  table.Print();
  std::printf("store log: %llu bytes on disk\n",
              static_cast<unsigned long long>(store_bytes));

  if (speedup < 10.0) {
    std::printf("FAIL: warm restart only %.1fx faster than recompute "
                "(gate: >= 10x)\n",
                speedup);
    ok = false;
  }

  if (args.WantJson()) {
    eval::BenchJsonWriter json("bench_store");
    bench::AddStandardConfig(cfg, &json);
    json.AddConfig("dataset", w.name);
    json.AddConfig("sweep_size", static_cast<int64_t>(sweep.size()));
    json.BeginResult("warm_restart");
    json.AddMetric("solve_seconds", solve_seconds);
    json.AddMetric("warm_sweep_seconds", warm_seconds);
    json.AddMetric("recompute_sweep_seconds", recompute_seconds);
    json.AddMetric("speedup", speedup);
    json.AddMetric("promotions", static_cast<double>(warm_promotions));
    json.AddMetric("recomputes", static_cast<double>(warm_recomputes));
    json.AddMetric("store_bytes", static_cast<double>(store_bytes));
    if (!json.WriteFile(args.json_path)) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }

  std::remove(store_path.c_str());
  if (ok) {
    std::printf("\nPASS: a restarted server answers threshold sweeps "
                ">= 10x faster than recompute, promoting bit-identical "
                "solutions from the log with zero recomputes\n");
  }
  std::printf("\n%s\n", ok ? "bench_store OK" : "bench_store FAILED");
  return ok ? 0 : 1;
}
