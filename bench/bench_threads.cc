// Figure 9 — running time vs number of threads.
//
// Reproduces the thread sweep (the paper uses 1..48 on dual 12-core
// Xeons). Expected shapes on real multicore hardware:
//   * Approx-DPC and S-Approx-DPC scale nearly linearly (cost-based LPT
//     load balancing),
//   * Ex-DPC plateaus once the sequential dependent phase dominates,
//   * LSH-DDP scales irregularly (no load balancing),
//   * Scan/CFSFDP-A remain slowest even with all threads.
//
// NOTE: this reproduction machine exposes a single hardware core, so
// wall-clock speedups cannot materialize here; the sweep still runs to
// demonstrate the parallel code paths, and the per-phase decomposition of
// Table 6 (bench_decomposed) shows which phases are parallelized.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "parallel/omp_utils.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Figure 9", "running time [s] vs number of threads", cfg);
  std::printf("hardware threads available: %d\n\n", HardwareThreads());

  std::vector<int> threads = {1, 2, 4, 8};
  if (cfg.max_threads > 0) {
    threads.erase(std::remove_if(threads.begin(), threads.end(),
                                 [&](int t) { return t > cfg.max_threads; }),
                  threads.end());
    if (threads.empty()) threads.push_back(1);
  }

  // One representative dataset keeps the sweep affordable; Household-like
  // is the paper's middle case.
  for (auto& w : bench::RealWorkloads(cfg)) {
    if (w.name != "Household" && w.name != "Sensor") continue;
    std::printf("%s (n=%lld)\n", w.name.c_str(), static_cast<long long>(w.points.size()));
    std::vector<std::string> headers = {"algorithm"};
    for (const int t : threads) headers.push_back(StrFormat("t=%d", t));
    headers.push_back("delta phase t=max");
    eval::Table table(headers);

    for (const auto id : bench::AllAlgoIds()) {
      std::vector<std::string> cells = {bench::AlgoName(id)};
      double last_delta = 0.0;
      for (const int t : threads) {
        const auto run = bench::RunTimed(id, w, cfg, t);
        cells.push_back(bench::FmtSeconds(run.seconds, run.extrapolated));
        last_delta = run.result.stats.delta_seconds;
      }
      cells.push_back(StrFormat("%.3f", last_delta));
      table.AddRow(cells);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("expected shape (Figure 9, on real multicore hardware): "
              "Approx/S-Approx near-linear speedup; Ex-DPC limited by its "
              "sequential delta phase (last column stays constant); LSH-DDP "
              "irregular. On this 1-core machine the rows are flat by "
              "construction.\n");
  return 0;
}
