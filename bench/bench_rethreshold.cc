// Re-threshold fast path — not a paper figure: quantifies the
// compute/threshold split that serves the paper's decision-graph
// exploration workload (§2, Figure 1). A user exploring the decision
// graph sweeps delta_min (and rho_min) over one compute configuration;
// with the split, that sweep is one Solve plus K O(n) finalizes instead
// of K full pipelines.
//
// Two CI-enforced gates:
//   1. the cached-solution sweep is >= 20x faster than per-threshold
//      recompute, and
//   2. every finalized labeling is bit-identical to a fresh Run at the
//      same thresholds (the shim and the split can never diverge).
//
// The dataset size is floored at 20k points regardless of
// DPC_BENCH_SCALE: the gate measures a ratio, and at toy sizes the
// finalize pass is all fixed overhead. DPC_BENCH_THREADS applies as
// usual. Exits non-zero if a gate fails, so CI can smoke-run it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/registry.h"
#include "eval/table.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
      .count();
}

}  // namespace

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("re-threshold fast path",
                     "one Solve + K finalizes vs K full runs", cfg);

  // S2-style workload, floored at 20k points so the ratio is meaningful.
  eval::BenchConfig floored = cfg;
  floored.scale = std::max(cfg.scale, 1.0);
  bench::Workload w = bench::SxWorkload(floored, 2);
  const ExecutionContext ctx(cfg.max_threads);

  // The thresholds a decision-graph exploration would walk through: a
  // delta_min ladder plus a few rho_min variants.
  std::vector<ThresholdSpec> sweep;
  for (int i = 0; i < 20; ++i) {
    ThresholdSpec spec = w.params.threshold();
    spec.delta_min = w.params.d_cut * (1.5 + 0.5 * i);
    sweep.push_back(spec);
  }
  for (const double rho_min : {2.0, 10.0, 20.0, 40.0}) {
    ThresholdSpec spec = w.params.threshold();
    spec.rho_min = rho_min;
    sweep.push_back(spec);
  }

  bool ok = true;
  eval::Table table({"algorithm", "solve [s]", "sweep cached [ms]",
                     "sweep recompute [s]", "speedup"});
  for (const char* name : {"approx-dpc", "ex-dpc"}) {
    auto algo = MakeAlgorithmByName(name);
    const auto solve_begin = std::chrono::steady_clock::now();
    const DpcSolution solution =
        algo.value()->Solve(w.points, w.params.compute(), ctx);
    const double solve_seconds = Seconds(solve_begin);

    // Cached path: K finalizes against the one solution.
    std::vector<Labeling> cached;
    cached.reserve(sweep.size());
    const auto cached_begin = std::chrono::steady_clock::now();
    for (const ThresholdSpec& spec : sweep) {
      cached.push_back(LabelSolution(solution, spec));
    }
    const double cached_seconds = Seconds(cached_begin);

    // Recompute path: the full pipeline per threshold (what a serving
    // layer without the solution tier would pay), verifying labels
    // bit-identical along the way.
    const auto recompute_begin = std::chrono::steady_clock::now();
    for (size_t k = 0; k < sweep.size(); ++k) {
      const DpcResult fresh = algo.value()->Run(
          w.points, ComposeParams(w.params.compute(), sweep[k]), ctx);
      if (fresh.label != cached[k].label ||
          fresh.centers != cached[k].centers) {
        std::printf("FAIL: %s labels diverge at delta_min=%g rho_min=%g\n",
                    name, sweep[k].delta_min, sweep[k].rho_min);
        ok = false;
      }
    }
    const double recompute_seconds = Seconds(recompute_begin);

    const double speedup =
        recompute_seconds / std::max(cached_seconds, 1e-9);
    table.AddRow({name, bench::FmtSeconds(solve_seconds),
                  StrFormat("%.2f", cached_seconds * 1e3),
                  bench::FmtSeconds(recompute_seconds),
                  StrFormat("%.0fx", speedup)});
    if (speedup < 20.0) {
      std::printf("FAIL: %s cached sweep only %.1fx faster than recompute "
                  "(gate: >= 20x)\n",
                  name, speedup);
      ok = false;
    }
  }
  table.Print();

  if (ok) {
    std::printf("\nPASS: cached-solution threshold sweeps are >= 20x faster "
                "than recompute and bit-identical to fresh runs\n");
  }
  std::printf("\n%s\n", ok ? "bench_rethreshold OK" : "bench_rethreshold FAILED");
  return ok ? 0 : 1;
}
