// Table 3 — Rand index on S1..S4 (growing cluster overlap).
//
// S1..S4 have 15 Gaussian clusters whose overlap increases with the
// index. Expected shape: all three approximation algorithms stay near 1.0
// on every Sx, degrading only slightly toward S4, with Approx-DPC on top.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "eval/rand_index.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Table 3", "Rand index on S1-S4 vs cluster overlap", cfg);

  eval::Table table({"dataset", "LSH-DDP", "Approx-DPC", "S-Approx-DPC", "Ex-DPC clusters"});
  for (int x = 1; x <= 4; ++x) {
    bench::Workload w = bench::SxWorkload(cfg, x);
    DpcParams params = w.params;
    params.num_threads = cfg.max_threads;
    params.epsilon = 1.0;

    ExDpc exact;
    const DpcResult ground = exact.Run(w.points, params);
    LshDdp lsh;
    ApproxDpc approx;
    SApproxDpc s_approx;
    table.AddRow({w.name,
                  StrFormat("%.3f", eval::RandIndex(lsh.Run(w.points, params).label,
                                                    ground.label)),
                  StrFormat("%.3f", eval::RandIndex(approx.Run(w.points, params).label,
                                                    ground.label)),
                  StrFormat("%.3f", eval::RandIndex(s_approx.Run(w.points, params).label,
                                                    ground.label)),
                  std::to_string(ground.num_clusters())});
  }
  table.Print();
  std::printf("\nexpected shape (Table 3): near-1.0 everywhere; slight decay "
              "S1 -> S4; Approx-DPC the winner.\n");
  return 0;
}
