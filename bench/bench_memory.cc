// Table 7 — index memory usage per algorithm per dataset.
//
// Expected shapes (paper): Ex-DPC smallest (one kd-tree); the grid-based
// approximations somewhat larger than Ex-DPC; LSH-DDP larger still;
// CFSFDP-A by far the largest in the paper (its implementation caches
// pivot distance lists; ours stores only per-point pivot distances, so
// the gap is smaller here — noted in EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace dpc;
  const eval::BenchConfig cfg = eval::LoadBenchConfig();
  bench::PrintBanner("Table 7", "index memory usage [MB]", cfg);

  std::vector<std::string> headers = {"algorithm"};
  auto workloads = bench::RealWorkloads(cfg);
  for (const auto& w : workloads) headers.push_back(w.name);
  eval::Table table(headers);

  for (const auto id : bench::AllAlgoIds()) {
    if (id == bench::AlgoId::kScan) continue;  // Scan has no index
    std::vector<std::string> cells = {bench::AlgoName(id)};
    for (const auto& w : workloads) {
      const auto run = bench::RunTimed(id, w, cfg, cfg.max_threads);
      double mb = static_cast<double>(run.result.stats.index_memory_bytes) / (1024.0 * 1024.0);
      if (run.extrapolated) {
        // Index memory scales ~linearly with n.
        mb *= static_cast<double>(w.points.size()) / static_cast<double>(run.n_used);
      }
      cells.push_back(StrFormat("%s%.1f", run.extrapolated ? "~" : "", mb));
    }
    table.AddRow(cells);
  }
  table.Print();
  std::printf("\nexpected shape (Table 7): Ex-DPC lowest; Approx/S-Approx add "
              "a grid on top; LSH-DDP adds M bucket tables.\n");
  return 0;
}
