#!/usr/bin/env python3
"""Gate a fresh bench --json document against a committed baseline.

Two metric families are gated; everything else (absolute ns/us, which
depend on the recording host's clock) is informational only.

*speedup* metrics — within-run ratios of the scalar reference to the
batched kernel, stable across machines:
  - baseline speedup >= NOISE_FLOOR (1.5x): the current value must be
    >= baseline * (1 - TOLERANCE). A drop past 15% of a real speedup is
    a code regression, not timer noise.
  - baseline speedup < NOISE_FLOOR: the band widens to LOOSE_TOLERANCE
    (30%). Near-1x ratios wobble +/-17% between healthy runs on a busy
    core, so a tight gate there would only produce flakes.
  - tier-suffixed rows (kernel_*_avx2 / kernel_*_avx512, recorded by the
    runtime-dispatch tier sweep) are gated only when the current run's
    config.kernel_tiers says the measuring host actually ran that tier;
    otherwise they are skipped loudly. The unsuffixed rows (the generic
    tier) gate everywhere.

fitted_exponent metrics (bench_complexity) — log-log slope of runtime vs
n per algorithm. Gated upper-side only: a LOWER exponent is cache
effects or measurement luck, never a regression, but a higher one means
an algorithm's scaling degraded. The allowed band is the baseline's
recorded fitted_exponent_band (2x the observed repeat spread, floored at
0.35 — see scripts/record_bench.py), defaulting to DEFAULT_EXPONENT_BAND
for baselines recorded without repeats.

Exit status 0 = all gated metrics within tolerance; 1 = regression.

Usage:
  scripts/check_bench_regression.py --baseline BENCH_kernels.json \
                                    --current /tmp/bench_index_micro.json
"""

import argparse
import json
import pathlib
import sys

TOLERANCE = 0.15
LOOSE_TOLERANCE = 0.30
NOISE_FLOOR = 1.5
DEFAULT_EXPONENT_BAND = 0.5
TIER_SUFFIXES = ("_avx2", "_avx512")


def load(path):
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != 1:
        sys.exit(f"error: {path}: unexpected schema {doc.get('schema')!r}")
    return doc


def speedups(doc):
    out = {}
    for result in doc.get("results", []):
        for metric, value in result.get("metrics", {}).items():
            if "speedup" in metric and isinstance(value, (int, float)):
                out[(result["name"], metric)] = float(value)
    return out


def exponents(doc):
    """(name -> (fitted_exponent, band or None)) for complexity docs."""
    out = {}
    for result in doc.get("results", []):
        metrics = result.get("metrics", {})
        value = metrics.get("fitted_exponent")
        if isinstance(value, (int, float)):
            band = metrics.get("fitted_exponent_band")
            band = float(band) if isinstance(band, (int, float)) else None
            out[result["name"]] = (float(value), band)
    return out


def row_tier(name):
    """The dispatch tier a result row was measured on, by naming
    convention: kernel_*_avx2 / kernel_*_avx512 come from the tier
    sweep, everything else from the generic/compiled-in path."""
    for suffix in TIER_SUFFIXES:
        if name.endswith(suffix):
            return suffix[1:]
    return None


def current_tiers(doc):
    """Tiers the current run measured (config.kernel_tiers, written by
    bench_index_micro's tier sweep). Empty set = no runtime dispatch."""
    raw = doc.get("config", {}).get("kernel_tiers", "")
    return {t for t in str(raw).split(",") if t}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json to gate against")
    parser.add_argument("--current", required=True,
                        help="freshly emitted bench --json document")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    base = speedups(base_doc)
    cur = speedups(cur_doc)
    base_exp = exponents(base_doc)
    cur_exp = exponents(cur_doc)
    if not base and not base_exp:
        sys.exit(f"error: {args.baseline} has no speedup or fitted_exponent "
                 f"metrics to gate on")

    tiers = current_tiers(cur_doc)
    gated = 0
    failures = []
    for (name, metric), base_value in sorted(base.items()):
        tier = row_tier(name)
        if tier is not None and tier not in tiers:
            print(f"  {name}.{metric}: SKIPPED — current run did not measure "
                  f"the {tier} tier (config.kernel_tiers = "
                  f"{sorted(tiers) if tiers else 'none'})")
            continue
        gated += 1
        cur_value = cur.get((name, metric))
        if cur_value is None:
            failures.append(f"{name}.{metric}: missing from current run")
            continue
        tolerance = TOLERANCE if base_value >= NOISE_FLOOR else LOOSE_TOLERANCE
        bound = base_value * (1.0 - tolerance)
        ok = cur_value >= bound
        print(f"  {name}.{metric}: baseline {base_value:.2f}x, "
              f"current {cur_value:.2f}x, bound {bound:.2f}x "
              f"({'ok' if ok else 'REGRESSION'})")
        if not ok:
            failures.append(
                f"{name}.{metric}: {cur_value:.2f}x < {bound:.2f}x "
                f"(baseline {base_value:.2f}x - {tolerance:.0%})")

    for name, (base_value, band) in sorted(base_exp.items()):
        gated += 1
        if name not in cur_exp:
            failures.append(f"{name}.fitted_exponent: missing from current run")
            continue
        cur_value = cur_exp[name][0]
        if band is None:
            band = DEFAULT_EXPONENT_BAND
        bound = base_value + band
        ok = cur_value <= bound
        print(f"  {name}.fitted_exponent: baseline {base_value:.2f}, "
              f"current {cur_value:.2f}, upper bound {bound:.2f} "
              f"({'ok' if ok else 'REGRESSION'})")
        if not ok:
            failures.append(
                f"{name}.fitted_exponent: {cur_value:.2f} > {bound:.2f} "
                f"(baseline {base_value:.2f} + band {band:.2f})")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    if gated == 0:
        sys.exit("error: every baseline metric was skipped — nothing gated "
                 "(wrong --current document?)")
    print(f"\nbench regression gate passed ({gated} metrics within tolerance)")


if __name__ == "__main__":
    main()
