#!/usr/bin/env python3
"""Gate a fresh bench --json document against a committed baseline.

Compares only *speedup* metrics — within-run ratios of the scalar
reference to the batched kernel, which are stable across machines.
Absolute ns/us metrics depend on the recording host's clock and are
never gated.

Tolerance policy:
  - baseline speedup >= NOISE_FLOOR (1.5x): the current value must be
    >= baseline * (1 - TOLERANCE). A drop past 15% of a real speedup is
    a code regression, not timer noise.
  - baseline speedup < NOISE_FLOOR: the band widens to LOOSE_TOLERANCE
    (30%). Near-1x ratios wobble +/-17% between healthy runs on a busy
    core, so a tight gate there would only produce flakes.

Exit status 0 = all gated metrics within tolerance; 1 = regression.

Usage:
  scripts/check_bench_regression.py --baseline BENCH_kernels.json \
                                    --current /tmp/bench_index_micro.json
"""

import argparse
import json
import pathlib
import sys

TOLERANCE = 0.15
LOOSE_TOLERANCE = 0.30
NOISE_FLOOR = 1.5


def load(path):
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != 1:
        sys.exit(f"error: {path}: unexpected schema {doc.get('schema')!r}")
    return doc


def speedups(doc):
    out = {}
    for result in doc.get("results", []):
        for metric, value in result.get("metrics", {}).items():
            if "speedup" in metric and isinstance(value, (int, float)):
                out[(result["name"], metric)] = float(value)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json to gate against")
    parser.add_argument("--current", required=True,
                        help="freshly emitted bench --json document")
    args = parser.parse_args()

    base = speedups(load(args.baseline))
    cur = speedups(load(args.current))
    if not base:
        sys.exit(f"error: {args.baseline} has no speedup metrics to gate on")

    failures = []
    for (name, metric), base_value in sorted(base.items()):
        cur_value = cur.get((name, metric))
        if cur_value is None:
            failures.append(f"{name}.{metric}: missing from current run")
            continue
        tolerance = TOLERANCE if base_value >= NOISE_FLOOR else LOOSE_TOLERANCE
        bound = base_value * (1.0 - tolerance)
        ok = cur_value >= bound
        print(f"  {name}.{metric}: baseline {base_value:.2f}x, "
              f"current {cur_value:.2f}x, bound {bound:.2f}x "
              f"({'ok' if ok else 'REGRESSION'})")
        if not ok:
            failures.append(
                f"{name}.{metric}: {cur_value:.2f}x < {bound:.2f}x "
                f"(baseline {base_value:.2f}x - {tolerance:.0%})")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench regression gate passed "
          f"({len(base)} speedup metrics within tolerance)")


if __name__ == "__main__":
    main()
