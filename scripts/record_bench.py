#!/usr/bin/env python3
"""Record the committed benchmark trajectory (BENCH_*.json).

Runs a bench binary's --json emitter and copies the document to the repo
root as BENCH_<name>.json — the committed perf trajectory that
scripts/check_bench_regression.py gates CI against. By default records
the kernel microbenchmarks (bench_index_micro -> BENCH_kernels.json).

The emitted document carries no timestamps or host identifiers (see
eval/bench_json.h), so re-recording on the same code only churns the
measured numbers. Absolute ns are informational; the regression gate
compares only within-run *speedup* ratios, which are stable across
machines.

Usage:
  scripts/record_bench.py [--build-dir build] [--bench bench_index_micro]
                          [--out BENCH_kernels.json] [--allow-below-floor]

Refuses to record a baseline whose kernel_range_count_dim2 speedup is
below 2.0 (the PR acceptance floor for the SoA fast path) unless
--allow-below-floor is given; a baseline recorded below the floor would
make the CI gate pass on a regressed tree.
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# The recorded baseline must demonstrate the acceptance bars actually
# hold: (result name, metric, minimum value). bench_serving emits
# cache_hit/speedup capped at the 10x bar, so a passing run records
# exactly 10.0; a baseline below 9.5 means the bar itself failed.
FLOORS = [
    ("kernel_range_count_dim2", "speedup", 2.0),
    ("cache_hit", "speedup", 9.5),
]


def find_metric(doc, result_name, metric):
    for result in doc.get("results", []):
        if result.get("name") == result_name:
            return result.get("metrics", {}).get(metric)
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--bench", default="bench_index_micro",
                        help="bench binary to run (default: bench_index_micro)")
    parser.add_argument("--out", default="BENCH_kernels.json",
                        help="output file at the repo root "
                             "(default: BENCH_kernels.json)")
    parser.add_argument("--allow-below-floor", action="store_true",
                        help="record even if a FLOORS entry fails "
                             "(for diagnosing regressed trees)")
    args = parser.parse_args()

    binary = REPO_ROOT / args.build_dir / "bench" / args.bench
    if not binary.exists():
        sys.exit(f"error: {binary} not found — configure with "
                 f"-DDPC_BUILD_BENCH=ON and build first")

    out_path = REPO_ROOT / args.out
    tmp_path = out_path.with_suffix(".json.tmp")
    print(f"running {binary} --json {tmp_path} ...")
    subprocess.run([str(binary), "--json", str(tmp_path)], check=True,
                   cwd=REPO_ROOT)

    doc = json.loads(tmp_path.read_text())
    if doc.get("schema") != 1:
        sys.exit(f"error: unexpected schema {doc.get('schema')!r}")

    failures = []
    for result_name, metric, minimum in FLOORS:
        value = find_metric(doc, result_name, metric)
        if value is None:
            continue  # bench without this case (e.g. recording complexity)
        status = "ok" if value >= minimum else "BELOW FLOOR"
        print(f"  {result_name}.{metric} = {value:.2f} "
              f"(floor {minimum:.1f}) {status}")
        if value < minimum:
            failures.append((result_name, metric, value, minimum))

    if failures and not args.allow_below_floor:
        tmp_path.unlink()
        sys.exit("error: refusing to record a baseline below the "
                 "acceptance floor (use --allow-below-floor to override)")

    tmp_path.replace(out_path)
    print(f"wrote {out_path.relative_to(REPO_ROOT)}")
    print("commit it to update the recorded trajectory; CI gates against "
          "the committed copy via scripts/check_bench_regression.py")


if __name__ == "__main__":
    main()
