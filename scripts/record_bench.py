#!/usr/bin/env python3
"""Record the committed benchmark trajectory (BENCH_*.json).

Runs a bench binary's --json emitter and copies the document to the repo
root as BENCH_<name>.json — the committed perf trajectory that
scripts/check_bench_regression.py gates CI against. By default records
the kernel microbenchmarks (bench_index_micro -> BENCH_kernels.json).

The emitted document carries no timestamps or host identifiers (see
eval/bench_json.h), so re-recording on the same code only churns the
measured numbers. Absolute ns are informational; the regression gate
compares only within-run *speedup* ratios and fitted complexity
exponents, which are stable across machines.

--repeats N (recommended for bench_complexity) runs the binary N times
and aggregates: each result's fitted_exponent becomes the median of the
repeats, and a fitted_exponent_band = max(0.35, 2 * (max - min)) is
recorded next to it — the variance-informed upper band the regression
gate allows before calling a higher exponent a scaling regression.
Wall-clock metrics keep the last repeat's values (informational only).

Usage:
  scripts/record_bench.py [--build-dir build] [--bench bench_index_micro]
                          [--out BENCH_kernels.json] [--repeats N]
                          [--allow-below-floor]

Refuses to record a baseline that fails a FLOORS entry (the PR
acceptance bars: the SoA fast path's dim-2 range-count >= 2x, the AVX2
tier's dim-7 sqdist/range-count >= 2x where that tier was measured, the
serving cache >= 10x) unless --allow-below-floor is given; a baseline
recorded below the floor would make the CI gate pass on a regressed
tree.
"""

import argparse
import json
import pathlib
import statistics
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# The recorded baseline must demonstrate the acceptance bars actually
# hold: (result name, metric, minimum value). Entries for cases the
# bench (or this host's tier support) did not emit are skipped.
# bench_serving emits cache_hit/speedup capped at the 10x bar, so a
# passing run records exactly 10.0; a baseline below 9.5 means the bar
# itself failed.
FLOORS = [
    ("kernel_range_count_dim2", "speedup", 2.0),
    ("kernel_sqdist_dim7_avx2", "speedup", 2.0),
    ("kernel_range_count_dim7_avx2", "speedup", 2.0),
    ("cache_hit", "speedup", 9.5),
]

EXPONENT_BAND_FLOOR = 0.35


def find_metric(doc, result_name, metric):
    for result in doc.get("results", []):
        if result.get("name") == result_name:
            return result.get("metrics", {}).get(metric)
    return None


def run_bench(binary, tmp_path):
    print(f"running {binary} --json {tmp_path} ...")
    subprocess.run([str(binary), "--json", str(tmp_path)], check=True,
                   cwd=REPO_ROOT)
    doc = json.loads(tmp_path.read_text())
    if doc.get("schema") != 1:
        sys.exit(f"error: unexpected schema {doc.get('schema')!r}")
    return doc


def fold_exponent_repeats(docs):
    """Median fitted_exponent across repeats + a variance-informed band.

    The last repeat's document is the base (its wall-clock metrics ride
    along, informational); any result carrying fitted_exponent gets the
    cross-repeat median and a fitted_exponent_band.
    """
    doc = docs[-1]
    for result in doc.get("results", []):
        metrics = result.get("metrics", {})
        if "fitted_exponent" not in metrics:
            continue
        values = []
        for d in docs:
            v = find_metric(d, result["name"], "fitted_exponent")
            if isinstance(v, (int, float)):
                values.append(float(v))
        if not values:
            continue
        spread = max(values) - min(values)
        metrics["fitted_exponent"] = statistics.median(values)
        metrics["fitted_exponent_band"] = max(EXPONENT_BAND_FLOOR, 2.0 * spread)
        print(f"  {result['name']}.fitted_exponent: median "
              f"{metrics['fitted_exponent']:.3f} over {len(values)} repeats "
              f"(spread {spread:.3f}, band "
              f"{metrics['fitted_exponent_band']:.3f})")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--bench", default="bench_index_micro",
                        help="bench binary to run (default: bench_index_micro)")
    parser.add_argument("--out", default="BENCH_kernels.json",
                        help="output file at the repo root "
                             "(default: BENCH_kernels.json)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="run the bench N times and fold fitted_exponent "
                             "medians + bands into the recorded doc")
    parser.add_argument("--allow-below-floor", action="store_true",
                        help="record even if a FLOORS entry fails "
                             "(for diagnosing regressed trees)")
    args = parser.parse_args()

    binary = REPO_ROOT / args.build_dir / "bench" / args.bench
    if not binary.exists():
        sys.exit(f"error: {binary} not found — configure with "
                 f"-DDPC_BUILD_BENCH=ON and build first")
    if args.repeats < 1:
        sys.exit("error: --repeats must be >= 1")

    out_path = REPO_ROOT / args.out
    tmp_path = out_path.with_suffix(".json.tmp")
    docs = [run_bench(binary, tmp_path) for _ in range(args.repeats)]
    doc = fold_exponent_repeats(docs) if args.repeats > 1 else docs[0]

    failures = []
    for result_name, metric, minimum in FLOORS:
        value = find_metric(doc, result_name, metric)
        if value is None:
            continue  # bench without this case (e.g. recording complexity)
        status = "ok" if value >= minimum else "BELOW FLOOR"
        print(f"  {result_name}.{metric} = {value:.2f} "
              f"(floor {minimum:.1f}) {status}")
        if value < minimum:
            failures.append((result_name, metric, value, minimum))

    if failures and not args.allow_below_floor:
        tmp_path.unlink()
        sys.exit("error: refusing to record a baseline below the "
                 "acceptance floor (use --allow-below-floor to override)")

    tmp_path.write_text(json.dumps(doc, indent=1) + "\n")
    tmp_path.replace(out_path)
    print(f"wrote {out_path.relative_to(REPO_ROOT)}")
    print("commit it to update the recorded trajectory; CI gates against "
          "the committed copy via scripts/check_bench_regression.py")


if __name__ == "__main__":
    main()
