// Named, ref-counted datasets with content fingerprints. Clients
// register a PointSet once under a handle and submit requests by handle;
// the registry hands out shared_ptr<const NamedDataset> so an in-flight
// request keeps its points alive even if the handle is replaced or
// unregistered mid-run.
//
// The fingerprint is a content hash (core/dpc.h FingerprintPoints —
// FNV-1a over dim, cardinality, and the raw coordinate bytes), not a
// handle hash: it keys the solution cache (serve/solution_cache.h), so
// re-registering byte-identical points — or the same points under a
// different name — keeps every cached solution valid, while any
// coordinate change invalidates exactly the stale entries.
#ifndef DPC_SERVE_DATASET_REGISTRY_H_
#define DPC_SERVE_DATASET_REGISTRY_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dpc.h"
#include "core/status.h"

namespace dpc::serve {

/// The content hash lives in core now (it identifies DpcSolutions, not
/// just registered datasets); re-exported here for serve/ callers.
using dpc::FingerprintPoints;

/// An immutable registered dataset. Held by shared_ptr: the registry owns
/// one reference, every in-flight request that resolved the handle owns
/// another.
struct NamedDataset {
  std::string name;
  PointSet points;
  uint64_t fingerprint = 0;
  /// Coarse spatial cost histogram: point counts over kCostProfileBins
  /// equal-width slices of the first coordinate. Deterministic, O(n) at
  /// registration; PlanShardWidth's LPT overload reads it so skewed
  /// datasets plan wider shards than uniform ones of the same size.
  std::vector<double> cost_profile;

  NamedDataset() : points(1) {}
};

inline constexpr size_t kCostProfileBins = 64;

/// The histogram above. A degenerate first coordinate (all points equal,
/// or n == 0) collapses to a single bin — no skew signal, and the LPT
/// planner falls back to flat behavior.
inline std::vector<double> BuildCostProfile(const PointSet& points) {
  const PointId n = points.size();
  if (n == 0) return {};
  double lo = points[0][0];
  double hi = lo;
  for (PointId i = 1; i < n; ++i) {
    lo = std::min(lo, points[i][0]);
    hi = std::max(hi, points[i][0]);
  }
  if (!(hi > lo)) return {static_cast<double>(n)};
  std::vector<double> bins(kCostProfileBins, 0.0);
  const double scale = static_cast<double>(kCostProfileBins) / (hi - lo);
  for (PointId i = 0; i < n; ++i) {
    size_t b = static_cast<size_t>((points[i][0] - lo) * scale);
    if (b >= kCostProfileBins) b = kCostProfileBins - 1;
    bins[b] += 1.0;
  }
  return bins;
}

class DatasetRegistry {
 public:
  /// Registers (or atomically replaces) `name`; returns the content
  /// fingerprint. Requests already holding the old entry keep it alive.
  uint64_t Register(const std::string& name, PointSet points) {
    auto entry = std::make_shared<NamedDataset>();
    entry->name = name;
    entry->fingerprint = FingerprintPoints(points);
    entry->cost_profile = BuildCostProfile(points);
    entry->points = std::move(points);
    const uint64_t fingerprint = entry->fingerprint;
    std::lock_guard<std::mutex> lock(mu_);
    datasets_[name] = std::move(entry);
    return fingerprint;
  }

  /// The current entry for `name`, or null if unknown.
  std::shared_ptr<const NamedDataset> Find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = datasets_.find(name);
    return it == datasets_.end() ? nullptr : it->second;
  }

  /// Drops the handle (in-flight holders are unaffected). Returns whether
  /// the handle existed.
  bool Unregister(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return datasets_.erase(name) > 0;
  }

  std::vector<std::string> Names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(datasets_.size());
    for (const auto& [name, entry] : datasets_) names.push_back(name);
    return names;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return datasets_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const NamedDataset>>
      datasets_;
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_DATASET_REGISTRY_H_
