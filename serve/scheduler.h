// Batched admission for the serving layer. Submissions accumulate in a
// queue; the server's dispatcher pops them in *batches*: once at least
// one request is pending, PopBatch holds the door open for a short
// coalescing window (unless the batch fills first), then returns up to
// max_batch submissions ordered by (priority desc, admission seq asc).
//
// Why batch at all: decision-graph exploration fires bursts of near-
// identical requests (many clients, few distinct configurations).
// Admitting a burst together means the first execution of a
// configuration lands in the result cache before its twins are looked
// up, turning the rest of the burst into cache hits instead of N
// identical recomputations.
//
// The queue owns each submission's response promise until the dispatcher
// takes it; Shutdown wakes the dispatcher, which drains remaining
// submissions (already-admitted work still runs — see ClusterServer).
#ifndef DPC_SERVE_SCHEDULER_H_
#define DPC_SERVE_SCHEDULER_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/request.h"

namespace dpc::serve {

/// One admitted request plus its bookkeeping: admission time (queue-time
/// accounting and deadline arithmetic both start here), the absolute
/// deadline, and the promise the server answers through.
struct Submission {
  ClusterRequest request;
  std::chrono::steady_clock::time_point admitted_at;
  /// admitted_at + request.deadline, or time_point::max() for none.
  std::chrono::steady_clock::time_point deadline_at;
  uint64_t seq = 0;  ///< admission order, the priority tie-break
  std::promise<ClusterResponse> promise;
};

class AdmissionQueue {
 public:
  /// Stamps seq/admitted_at/deadline_at and enqueues. Returns the future
  /// paired with the submission's promise. After Shutdown the submission
  /// is rejected instead — the future resolves immediately with
  /// kCancelled and *accepted reports false. The shutdown check happens
  /// under the queue lock, so no submission can slip in behind a
  /// dispatcher that already drained and exited.
  std::future<ClusterResponse> Push(ClusterRequest request,
                                    bool* accepted = nullptr) {
    Submission s;
    s.admitted_at = std::chrono::steady_clock::now();
    s.deadline_at = request.deadline.count() > 0
                        ? s.admitted_at + request.deadline
                        : std::chrono::steady_clock::time_point::max();
    s.request = std::move(request);
    std::future<ClusterResponse> future = s.promise.get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        if (accepted != nullptr) *accepted = false;
        ClusterResponse response;
        response.status = Status::Cancelled("server is shut down");
        s.promise.set_value(std::move(response));
        return future;
      }
      if (accepted != nullptr) *accepted = true;
      s.seq = next_seq_++;
      queue_.push_back(std::move(s));
    }
    cv_.notify_all();
    return future;
  }

  /// Blocks until a submission is pending (or Shutdown), coalesces
  /// arrivals for up to `window` (cut short when max_batch fill up), and
  /// returns at most max_batch submissions in (priority desc, seq asc)
  /// order. An empty vector means shutdown with nothing left to serve.
  std::vector<Submission> PopBatch(size_t max_batch,
                                   std::chrono::steady_clock::duration window) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return {};
    if (window.count() > 0 && !shutdown_ && queue_.size() < max_batch) {
      cv_.wait_for(lock, window,
                   [&] { return shutdown_ || queue_.size() >= max_batch; });
    }
    // Highest priority first; FIFO within a priority level. seq is
    // unique, so (priority desc, seq asc) is a strict total order — the
    // batch is deterministic for a fixed arrival order, and only the
    // taken prefix needs ordering (the backlog tail would be re-sorted
    // on the next pop anyway).
    const size_t take = std::min(max_batch, queue_.size());
    std::partial_sort(queue_.begin(),
                      queue_.begin() + static_cast<ptrdiff_t>(take),
                      queue_.end(),
                      [](const Submission& a, const Submission& b) {
                        if (a.request.priority != b.request.priority) {
                          return a.request.priority > b.request.priority;
                        }
                        return a.seq < b.seq;
                      });
    std::vector<Submission> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return batch;
  }

  /// Wakes PopBatch callers; subsequent PopBatch calls still drain
  /// whatever is queued, then return empty.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
  }

  bool shutdown_requested() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_;
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Submission> queue_;
  uint64_t next_seq_ = 0;
  bool shutdown_ = false;
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_SCHEDULER_H_
