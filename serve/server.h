// ClusterServer — the serving layer's engine: one dispatcher thread
// drains the AdmissionQueue in coalesced batches and executes each
// request over ONE shared ThreadPool, deriving a fresh-stop-state
// ExecutionContext per request (deadline armed from the request budget).
// Requests in a batch execute serially, each with the full pool — the
// paper's algorithms scale with threads, so one request at full width
// beats two at half width, and the result cache absorbs the duplicates
// that batching exposes.
//
// Threading note: the dispatcher is the serve/ layer's only std::thread;
// all clustering parallelism still comes from parallel/thread_pool.h.
//
// Per-request outcomes (ClusterResponse::status):
//   OK                  labels computed (or served from cache/coalesced)
//   kDeadlineExceeded   budget expired in the queue (never ran) or
//                       mid-run (the ExecutionContext stopped the
//                       algorithm between / inside phases)
//   kNotFound           unknown dataset handle or algorithm name
//   kInvalidArgument    bad params or per-algorithm options
//   kCancelled          server shut down before the request was admitted
#ifndef DPC_SERVE_SERVER_H_
#define DPC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/dpc.h"
#include "core/registry.h"
#include "core/status.h"
#include "parallel/execution_context.h"
#include "parallel/thread_pool.h"
#include "serve/dataset_registry.h"
#include "serve/request.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"

namespace dpc::serve {

struct ServerOptions {
  /// Worker threads in the shared pool (0 = all hardware threads). Every
  /// request executes on this one pool.
  int pool_threads = 0;
  /// Result-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 64;
  /// Most submissions admitted per batch.
  size_t max_batch = 8;
  /// How long an admitted batch holds the door open for more arrivals
  /// (bursts coalesce so duplicates hit the cache); zero disables
  /// coalescing.
  std::chrono::steady_clock::duration batch_window =
      std::chrono::milliseconds(2);
  /// Loop scheduling for every request (per-request option maps can
  /// still override per algorithm, e.g. scheduler=static).
  ScheduleStrategy strategy = ScheduleStrategy::kCostGuided;
};

/// Monotonic counters, snapshotted by stats().
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;          ///< responded OK (computed or cached)
  uint64_t cache_hits = 0;
  uint64_t deadline_exceeded = 0;  ///< expired in queue or mid-run
  uint64_t errors = 0;             ///< NotFound / InvalidArgument / Cancelled
};

class ClusterServer {
 public:
  explicit ClusterServer(ServerOptions options = {})
      : options_(options),
        pool_(std::make_shared<ThreadPool>(options.pool_threads)),
        base_ctx_(pool_->size(), options.strategy, pool_),
        cache_(options.cache_capacity),
        dispatcher_([this] { ServeLoop(); }) {}

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  ~ClusterServer() { Shutdown(); }

  DatasetRegistry& datasets() { return datasets_; }
  const DatasetRegistry& datasets() const { return datasets_; }
  ResultCache& cache() { return cache_; }

  /// Validates and admits the request; the response arrives through the
  /// returned future once the dispatcher serves it. Invalid requests and
  /// submissions after Shutdown resolve immediately (the shutdown check
  /// lives inside AdmissionQueue::Push, under the queue lock, so a
  /// Submit racing Shutdown either lands in the drained-by-dispatcher
  /// queue or is rejected — never stranded).
  std::future<ClusterResponse> Submit(ClusterRequest request) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (const Status s = request.Validate(); !s.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return Resolved(s);
    }
    bool accepted = true;
    std::future<ClusterResponse> future =
        queue_.Push(std::move(request), &accepted);
    if (!accepted) errors_.fetch_add(1, std::memory_order_relaxed);
    return future;
  }

  /// Stops admission, serves everything already queued, and joins the
  /// dispatcher. Idempotent and safe to race (e.g. an explicit Shutdown
  /// against the destructor); also run by the destructor.
  void Shutdown() {
    queue_.Shutdown();
    std::lock_guard<std::mutex> lock(join_mu_);
    if (dispatcher_.joinable()) dispatcher_.join();
  }

  ServerStats stats() const {
    ServerStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static std::future<ClusterResponse> Resolved(Status status) {
    std::promise<ClusterResponse> promise;
    ClusterResponse response;
    response.status = std::move(status);
    promise.set_value(std::move(response));
    return promise.get_future();
  }

  void ServeLoop() {
    for (;;) {
      std::vector<Submission> batch =
          queue_.PopBatch(options_.max_batch, options_.batch_window);
      if (batch.empty()) return;  // shutdown, queue drained
      // Serial execution in priority order: the first run of a
      // configuration lands in the cache before its within-batch twins
      // are looked up, so a coalesced burst computes once.
      for (Submission& s : batch) Execute(s);
    }
  }

  void Execute(Submission& s) {
    ClusterResponse response;
    const auto start = std::chrono::steady_clock::now();
    response.queue_seconds =
        std::chrono::duration<double>(start - s.admitted_at).count();

    if (start >= s.deadline_at) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      response.status = Status::DeadlineExceeded(
          "deadline expired after " + std::to_string(response.queue_seconds) +
          "s in queue");
      s.promise.set_value(std::move(response));
      return;
    }

    const std::shared_ptr<const NamedDataset> dataset =
        datasets_.Find(s.request.dataset);
    if (dataset == nullptr) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      response.status = Status::NotFound("unknown dataset handle '" +
                                         s.request.dataset + "'");
      s.promise.set_value(std::move(response));
      return;
    }

    // Resolve (and thereby validate) the algorithm BEFORE the cache
    // lookup: canonicalization is type-blind ("1e1" renders like "10"),
    // so an invalid spelling could otherwise hit a valid config's cache
    // entry and succeed iff the cache happens to be warm.
    StatusOr<std::unique_ptr<DpcAlgorithm>> algo =
        MakeAlgorithmByName(s.request.algorithm, s.request.options);
    if (!algo.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      response.status = algo.status();
      s.promise.set_value(std::move(response));
      return;
    }

    const std::string key =
        MakeCacheKey(dataset->fingerprint, s.request.algorithm,
                     s.request.options, s.request.params);
    if (std::shared_ptr<const DpcResult> cached = cache_.Lookup(key)) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      response.result = std::move(cached);
      response.cache_hit = true;
      s.promise.set_value(std::move(response));
      return;
    }

    // Per-request context: shares the pool and policy, but deadline and
    // cancellation are this request's alone.
    ExecutionContext ctx = base_ctx_.WithFreshStopState();
    if (s.deadline_at != std::chrono::steady_clock::time_point::max()) {
      ctx.set_deadline(s.deadline_at);
    }
    // The server owns execution policy; the deprecated per-request
    // num_threads must not shrink the pool (see EffectiveThreads).
    DpcParams params = s.request.params;
    params.num_threads = 0;

    const auto run_start = std::chrono::steady_clock::now();
    DpcResult result = algo.value()->Run(dataset->points, params, ctx);
    response.run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();

    if (result.stats.interrupted) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      response.status = Status::DeadlineExceeded(
          "deadline expired after " + std::to_string(response.run_seconds) +
          "s of execution");
      s.promise.set_value(std::move(response));
      return;
    }

    auto shared = std::make_shared<const DpcResult>(std::move(result));
    cache_.Insert(key, shared);
    completed_.fetch_add(1, std::memory_order_relaxed);
    response.result = std::move(shared);
    s.promise.set_value(std::move(response));
  }

  const ServerOptions options_;
  std::shared_ptr<ThreadPool> pool_;
  ExecutionContext base_ctx_;
  DatasetRegistry datasets_;
  ResultCache cache_;
  AdmissionQueue queue_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> errors_{0};

  std::mutex join_mu_;      ///< serializes racing Shutdown calls
  std::thread dispatcher_;  // last member: starts after everything it uses
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_SERVER_H_
