// ClusterServer — the serving layer's engine, now a truly concurrent
// scheduler: one dispatcher thread drains the AdmissionQueue in
// coalesced batches and feeds a fixed set of EXECUTOR LANES; each lane
// leases a shard of the thread budget (serve/shard_pool.h) sized from
// the request's population cost and priority, so several independent
// requests run side by side instead of one-at-a-time at full width.
// With one lane (max_concurrent = 1) the behavior degenerates to the
// classic serial dispatch: every request gets the whole budget.
//
// Concurrent lanes can race identical requests past the batch-window
// coalescing, so an in-flight map (keyed by the same canonical solution
// key as the cache) dedupes them: the first lane computes, twins wait on
// its completion (deadline-aware) and then serve from the cache as hits
// — a coalesced burst still computes once.
//
// The cache is the two-tier SolutionCache (serve/solution_cache.h),
// keyed by the COMPUTE configuration only: a kCluster request whose
// compute key hits answers any (rho_min, delta_min) with an O(n)
// finalize and zero algorithm work. kRethreshold and kGraph requests go
// further — they are answered synchronously at Submit, entirely off the
// dispatcher and every pool, and fail NOT_FOUND when the solution tier
// is cold instead of recomputing. ServerStats::recomputes counts actual
// algorithm executions, so "a re-threshold never recomputes" is an
// observable invariant, not a hope.
//
// Threading note: the dispatcher and the executor lanes are the serve/
// layer's only std::threads; all clustering parallelism still comes from
// parallel/thread_pool.h instances owned by the ShardPool.
//
// Per-request outcomes (ClusterResponse::status):
//   OK                  labels computed (or served from cache/coalesced)
//   kDeadlineExceeded   budget expired in the queue (never ran), waiting
//                       for a shard or an in-flight twin, or mid-run
//                       (the ExecutionContext stopped the algorithm)
//   kNotFound           unknown dataset handle or algorithm name, or a
//                       kRethreshold/kGraph request against a cold cache
//   kInvalidArgument    bad params or per-algorithm options
//   kCancelled          server shut down before the request was admitted
#ifndef DPC_SERVE_SERVER_H_
#define DPC_SERVE_SERVER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/decision_graph.h"
#include "core/dpc.h"
#include "core/kernels.h"
#include "core/registry.h"
#include "core/status.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/execution_context.h"
#include "parallel/thread_pool.h"
#include "serve/dataset_registry.h"
#include "serve/request.h"
#include "serve/scheduler.h"
#include "serve/shard_pool.h"
#include "serve/solution_cache.h"
#include "store/solution_store.h"

namespace dpc::serve {

struct ServerOptions {
  /// Total worker-thread budget across all concurrently executing
  /// requests (0 = all hardware threads). The ShardPool leases slices of
  /// it per request.
  int pool_threads = 0;
  /// Executor lanes = the most requests executing at once. 0 = auto:
  /// half the thread budget, clamped to [1, 4] — small servers stay
  /// serial, big ones overlap. 1 = classic serial dispatch.
  int max_concurrent = 0;
  /// Byte budget for the in-memory solution tier (entries are charged
  /// their exact serialized size); 0 disables caching (which also makes
  /// every kRethreshold/kGraph request fail NOT_FOUND).
  size_t memory_budget_bytes = 64u << 20;
  /// Path of the persistent solution store's log; empty = no store (the
  /// in-memory cache is the only tier and evictions discard). With a
  /// store, inserts write through, evictions demote, and a restarted
  /// server answers rethreshold/graph WARM from the log.
  std::string store_path;
  /// Ceiling on the store's log file; 0 = unbounded. Enforced by
  /// oldest-first eviction + compaction (store/solution_store.h).
  uint64_t disk_budget_bytes = 0;
  /// Bound on memoized labelings per cached solution (each memo carries
  /// full DpcResult copies — see serve/solution_cache.h).
  size_t labelings_per_solution = 16;
  /// Most submissions admitted per batch.
  size_t max_batch = 8;
  /// How long an admitted batch holds the door open for more arrivals
  /// (bursts coalesce so duplicates hit the cache); zero disables
  /// coalescing.
  std::chrono::steady_clock::duration batch_window =
      std::chrono::milliseconds(2);
  /// Loop scheduling for every request (per-request option maps can
  /// still override per algorithm, e.g. scheduler=static).
  ScheduleStrategy strategy = ScheduleStrategy::kCostGuided;
};

/// Monotonic counters, snapshotted by stats(). Since PR 9 these are
/// views over the server's MetricRegistry (ClusterServer::metrics()),
/// and `cache` is ONE coherent SolutionCache snapshot — every
/// cache-derived field in a ServerStats comes from a single critical
/// section, so cross-field invariants (cache.lookups ==
/// cache.solution_hits + cache.warm_misses + cache.solution_misses)
/// hold in every copy.
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;           ///< responded OK (computed or cached)
  uint64_t cache_hits = 0;          ///< answered without running the algorithm
  uint64_t recomputes = 0;          ///< actual algorithm Solve executions
  uint64_t rethreshold_served = 0;  ///< kRethreshold/kGraph answered at submit
  uint64_t deadline_exceeded = 0;   ///< expired in queue or mid-run
  uint64_t errors = 0;              ///< NotFound / InvalidArgument / Cancelled
  uint64_t peak_concurrency = 0;    ///< most requests mid-Solve at once
  uint64_t leases_granted = 0;      ///< shard leases taken from the pool
  uint64_t lease_width_total = 0;   ///< sum of granted widths (occupancy)
  uint64_t warm_misses = 0;   ///< memory misses served from the store
  uint64_t promotions = 0;    ///< store solutions re-admitted to memory
  uint64_t demotions = 0;     ///< evictions that kept their store copy
  uint64_t store_bytes = 0;   ///< current size of the store's log file
  /// The cache's full coherent snapshot (occupancy included); the flat
  /// warm_misses/promotions/demotions above are copies of its fields.
  SolutionCache::Stats cache;
};

class ClusterServer {
 public:
  explicit ClusterServer(ServerOptions options = {})
      : options_(std::move(options)),
        shard_pool_(options_.pool_threads),
        lanes_(options_.max_concurrent > 0
                   ? options_.max_concurrent
                   : std::clamp(shard_pool_.total() / 2, 1, 4)),
        store_(OpenStore(options_)),
        cache_(options_.memory_budget_bytes, options_.labelings_per_solution,
               store_.get()) {
    // The server's own registry (NOT obs::MetricRegistry::Default()):
    // tests and side-by-side servers must never share counters. The
    // references are cached once here; every hot-path increment after
    // this is a relaxed atomic op, no registry lock.
    submitted_ = &metrics_.counter("dpc_requests_total");
    completed_ = &metrics_.counter("dpc_requests_completed_total");
    cache_hits_ = &metrics_.counter("dpc_cache_hits_total");
    recomputes_ = &metrics_.counter("dpc_recomputes_total");
    rethreshold_served_ = &metrics_.counter("dpc_rethreshold_served_total");
    deadline_exceeded_ = &metrics_.counter("dpc_deadline_exceeded_total");
    errors_ = &metrics_.counter("dpc_errors_total");
    leases_granted_ = &metrics_.counter("dpc_leases_granted_total");
    lease_width_total_ = &metrics_.counter("dpc_lease_width_total");
    latency_hist_ = &metrics_.histogram("dpc_request_latency_seconds");
    queue_hist_ = &metrics_.histogram("dpc_request_queue_seconds");
    run_hist_ = &metrics_.histogram("dpc_request_run_seconds");
    // Point-in-time depths/occupancy are sampled at scrape, and the
    // cache/store publish their multi-field stats through collectors so
    // each subsystem's sample set is copied under ONE of its own lock
    // acquisitions (the coherent-snapshot path).
    metrics_.AddCollector([this](std::vector<obs::MetricSample>* out) {
      out->push_back(obs::MetricSample::FromGauge(
          "dpc_admission_queue_depth",
          static_cast<double>(queue_.pending())));
      size_t executor_depth = 0;
      {
        std::lock_guard<std::mutex> lock(exec_mu_);
        executor_depth = exec_queue_.size();
      }
      out->push_back(obs::MetricSample::FromGauge(
          "dpc_executor_queue_depth", static_cast<double>(executor_depth)));
      out->push_back(obs::MetricSample::FromGauge(
          "dpc_pool_threads_in_use",
          static_cast<double>(shard_pool_.in_use())));
      out->push_back(obs::MetricSample::FromGauge(
          "dpc_pool_threads_total", static_cast<double>(shard_pool_.total())));
      out->push_back(obs::MetricSample::FromGauge(
          "dpc_requests_running",
          static_cast<double>(running_.load(std::memory_order_relaxed))));
      out->push_back(obs::MetricSample::FromGauge(
          "dpc_peak_concurrency",
          static_cast<double>(
              peak_concurrency_.load(std::memory_order_relaxed))));
      out->push_back(obs::MetricSample::FromGauge(
          "dpc_executor_lanes", static_cast<double>(lanes_)));
    });
    // The selected kernel tier, Prometheus info-style: the identity
    // rides in labels (export renders sample names verbatim, so the
    // label block can live in the name), the value is always 1.
    metrics_.AddCollector([](std::vector<obs::MetricSample>* out) {
      std::string name = "dpc_kernel_tier_info{dispatch=\"";
      name += kernels::DispatchName();
      name += "\",tier=\"";
      name += kernels::ActiveTierName();
      name += "\"}";
      out->push_back(obs::MetricSample::FromGauge(std::move(name), 1.0));
    });
    metrics_.AddCollector([this](std::vector<obs::MetricSample>* out) {
      const SolutionCache::Stats c = cache_.stats();  // one lock, all fields
      using S = obs::MetricSample;
      out->push_back(S::FromCounter("dpc_cache_lookups_total",
                                    static_cast<double>(c.lookups)));
      out->push_back(S::FromCounter("dpc_cache_solution_hits_total",
                                    static_cast<double>(c.solution_hits)));
      out->push_back(S::FromCounter("dpc_cache_solution_misses_total",
                                    static_cast<double>(c.solution_misses)));
      out->push_back(S::FromCounter("dpc_cache_warm_misses_total",
                                    static_cast<double>(c.warm_misses)));
      out->push_back(S::FromCounter("dpc_cache_promotions_total",
                                    static_cast<double>(c.promotions)));
      out->push_back(S::FromCounter("dpc_cache_demotions_total",
                                    static_cast<double>(c.demotions)));
      out->push_back(S::FromCounter("dpc_cache_insertions_total",
                                    static_cast<double>(c.insertions)));
      out->push_back(S::FromCounter("dpc_cache_evictions_total",
                                    static_cast<double>(c.evictions)));
      out->push_back(S::FromCounter("dpc_cache_label_hits_total",
                                    static_cast<double>(c.label_hits)));
      out->push_back(S::FromCounter("dpc_cache_finalizations_total",
                                    static_cast<double>(c.finalizations)));
      out->push_back(
          S::FromGauge("dpc_cache_entries", static_cast<double>(c.entries)));
      out->push_back(S::FromGauge("dpc_cache_bytes_in_use",
                                  static_cast<double>(c.bytes_in_use)));
      out->push_back(S::FromGauge("dpc_cache_budget_bytes",
                                  static_cast<double>(c.budget_bytes)));
    });
    if (store_ != nullptr) {
      metrics_.AddCollector([this](std::vector<obs::MetricSample>* out) {
        const store::SolutionStore::Stats t = store_->stats();  // one lock
        using S = obs::MetricSample;
        out->push_back(
            S::FromCounter("dpc_store_puts_total", static_cast<double>(t.puts)));
        out->push_back(S::FromCounter("dpc_store_fetches_total",
                                      static_cast<double>(t.fetches)));
        out->push_back(S::FromCounter("dpc_store_pool_hits_total",
                                      static_cast<double>(t.pool_hits)));
        out->push_back(S::FromCounter("dpc_store_log_reads_total",
                                      static_cast<double>(t.log_reads)));
        out->push_back(S::FromCounter("dpc_store_decode_failures_total",
                                      static_cast<double>(t.decode_failures)));
        out->push_back(S::FromCounter("dpc_store_compactions_total",
                                      static_cast<double>(t.compactions)));
        out->push_back(S::FromCounter("dpc_store_budget_evictions_total",
                                      static_cast<double>(t.budget_evictions)));
        out->push_back(S::FromGauge("dpc_store_log_bytes",
                                    static_cast<double>(t.log_bytes)));
        out->push_back(S::FromGauge("dpc_store_live_solutions",
                                    static_cast<double>(t.live_solutions)));
        out->push_back(S::FromGauge("dpc_store_live_payload_bytes",
                                    static_cast<double>(t.live_payload_bytes)));
        out->push_back(S::FromGauge("dpc_store_pool_bytes_in_use",
                                    static_cast<double>(t.pool_bytes_in_use)));
      });
    }
    executors_.reserve(static_cast<size_t>(lanes_));
    for (int i = 0; i < lanes_; ++i) {
      executors_.emplace_back([this] { ExecutorLoop(); });
    }
    dispatcher_ = std::thread([this] { ServeLoop(); });
  }

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  ~ClusterServer() { Shutdown(); }

  DatasetRegistry& datasets() { return datasets_; }
  const DatasetRegistry& datasets() const { return datasets_; }
  SolutionCache& cache() { return cache_; }
  /// The persistent store behind the cache, or null when store_path was
  /// empty (or the log failed to open — the server then runs storeless).
  const store::SolutionStore* store() const { return store_.get(); }
  int lanes() const { return lanes_; }

  /// This server's metric registry: the counters/histograms above plus
  /// the coherent cache/store/occupancy collectors. Snapshot() is the
  /// one scrape path (obs/export.h renders it as Prometheus text/JSON).
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }

  /// Attaches (or detaches, with null) a trace: every subsequently
  /// executed request emits a "request" span tree — queue wait, cache
  /// probe, lease wait, solve with per-phase children (and per-shard
  /// spans from worker threads for sharded runs), cache insert,
  /// finalize. Requests already in flight keep the trace they started
  /// with; tracing off is the default and costs nothing.
  void set_trace(std::shared_ptr<obs::Trace> trace) {
    std::lock_guard<std::mutex> lock(trace_mu_);
    trace_ = std::move(trace);
  }
  std::shared_ptr<obs::Trace> trace() const {
    std::lock_guard<std::mutex> lock(trace_mu_);
    return trace_;
  }

  /// Validates and admits the request; the response arrives through the
  /// returned future once an executor lane serves it. Invalid requests
  /// and submissions after Shutdown resolve immediately (the shutdown
  /// check lives inside AdmissionQueue::Push, under the queue lock, so a
  /// Submit racing Shutdown either lands in the drained-by-dispatcher
  /// queue or is rejected — never stranded). kRethreshold and kGraph
  /// requests resolve synchronously here: the threshold phase is O(n)
  /// against a cached solution, so they bypass the queue, the batch
  /// window, and every pool entirely.
  std::future<ClusterResponse> Submit(ClusterRequest request) {
    submitted_->Inc();
    if (const Status s = request.Validate(); !s.ok()) {
      errors_->Inc();
      return Resolved(s);
    }
    if (request.kind != RequestKind::kCluster) {
      // Honor the post-Shutdown contract on the synchronous path too: the
      // queue-based kinds are rejected by AdmissionQueue::Push, so the
      // cache-only kinds must not keep answering against a server that is
      // tearing down.
      if (queue_.shutdown_requested()) {
        errors_->Inc();
        return Resolved(Status::Cancelled("server is shut down"));
      }
      // The synchronous path still reports submit->respond latency (the
      // re-threshold fast path is exactly what p50 should show off) and,
      // when tracing, a request span with the finalize child.
      const std::shared_ptr<obs::Trace> trace = this->trace();
      const auto sync_start = std::chrono::steady_clock::now();
      obs::ScopedSpan request_span(trace.get(), "request");
      obs::ScopedSpan finalize_span(trace.get(), "rethreshold-finalize",
                                    request_span.id());
      std::promise<ClusterResponse> promise;
      promise.set_value(ServeFromCacheOnly(request));
      finalize_span.End();
      request_span.End();
      latency_hist_->Observe(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - sync_start)
                                 .count());
      return promise.get_future();
    }
    bool accepted = true;
    std::future<ClusterResponse> future =
        queue_.Push(std::move(request), &accepted);
    if (!accepted) errors_->Inc();
    return future;
  }

  /// Stops admission, serves everything already queued, and joins the
  /// dispatcher and every executor lane. Idempotent and safe to race
  /// (e.g. an explicit Shutdown against the destructor).
  void Shutdown() {
    queue_.Shutdown();
    std::lock_guard<std::mutex> lock(join_mu_);
    // Dispatcher exit implies every admitted submission reached the
    // executor queue and exec_done_ is set; lanes then drain and exit.
    if (dispatcher_.joinable()) dispatcher_.join();
    for (std::thread& t : executors_) {
      if (t.joinable()) t.join();
    }
  }

  ServerStats stats() const {
    ServerStats s;
    s.submitted = submitted_->value();
    s.completed = completed_->value();
    s.cache_hits = cache_hits_->value();
    s.recomputes = recomputes_->value();
    s.rethreshold_served = rethreshold_served_->value();
    s.deadline_exceeded = deadline_exceeded_->value();
    s.errors = errors_->value();
    s.peak_concurrency = peak_concurrency_.load(std::memory_order_relaxed);
    s.leases_granted = leases_granted_->value();
    s.lease_width_total = lease_width_total_->value();
    // ONE coherent cache snapshot; the flat fields are views of it, so a
    // ServerStats can never show e.g. promotions from one instant and
    // warm_misses from another.
    s.cache = cache_.stats();
    s.warm_misses = s.cache.warm_misses;
    s.promotions = s.cache.promotions;
    s.demotions = s.cache.demotions;
    if (store_ != nullptr) s.store_bytes = store_->stats().log_bytes;
    return s;
  }

 private:
  /// Opens (creating if needed) the persistent store, replaying its log.
  /// Failure is survivable — the server runs storeless with a warning —
  /// EXCEPT silently: the operator sees why restarts will come up cold.
  static std::unique_ptr<store::SolutionStore> OpenStore(
      const ServerOptions& options) {
    if (options.store_path.empty()) return nullptr;
    store::SolutionStoreOptions store_options;
    store_options.disk_budget_bytes = options.disk_budget_bytes;
    auto opened = store::SolutionStore::Open(options.store_path, store_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "warning: solution store disabled: %s\n",
                   opened.status().ToString().c_str());
      return nullptr;
    }
    return std::move(opened).value();
  }

  /// A steady_clock time_point on obs::Trace's ns timeline (same clock,
  /// same epoch — Trace::NowNs is steady_clock too).
  static uint64_t ToTraceNs(std::chrono::steady_clock::time_point tp) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count());
  }

  static std::future<ClusterResponse> Resolved(Status status) {
    std::promise<ClusterResponse> promise;
    ClusterResponse response;
    response.status = std::move(status);
    promise.set_value(std::move(response));
    return promise.get_future();
  }

  /// Resolves the dataset and algorithm for a request, or returns the
  /// error status through *failure. Resolving (and thereby validating)
  /// the algorithm happens BEFORE any cache access: canonicalization is
  /// type-blind ("1e1" renders like "10"), so an invalid spelling could
  /// otherwise hit a valid config's cache entry and succeed iff the
  /// cache happens to be warm.
  std::shared_ptr<const NamedDataset> ResolveRequest(
      const ClusterRequest& request,
      StatusOr<std::unique_ptr<DpcAlgorithm>>* algo, Status* failure) {
    std::shared_ptr<const NamedDataset> dataset =
        datasets_.Find(request.dataset);
    if (dataset == nullptr) {
      *failure = Status::NotFound("unknown dataset handle '" +
                                  request.dataset + "'");
      return nullptr;
    }
    *algo = MakeAlgorithmByName(request.algorithm, request.options);
    if (!algo->ok()) {
      *failure = algo->status();
      return nullptr;
    }
    return dataset;
  }

  /// The pool-free path for kRethreshold/kGraph: answer from the
  /// solution cache or fail NOT_FOUND — never compute.
  ClusterResponse ServeFromCacheOnly(const ClusterRequest& request) {
    ClusterResponse response;
    StatusOr<std::unique_ptr<DpcAlgorithm>> algo(Status::Ok());
    const std::shared_ptr<const NamedDataset> dataset =
        ResolveRequest(request, &algo, &response.status);
    if (dataset == nullptr) {
      errors_->Inc();
      return response;
    }
    const std::string key =
        MakeSolutionKey(dataset->fingerprint, request.algorithm,
                        request.options, request.params.compute());
    if (request.kind == RequestKind::kGraph) {
      const std::shared_ptr<const DpcSolution> solution = cache_.Lookup(key);
      if (solution == nullptr) return ColdCache(request, &response);
      response.graph =
          TopGammaPoints(solution->rho, solution->delta, request.graph_top_k);
    } else {
      response.result = cache_.Finalize(key, request.params.threshold());
      if (response.result == nullptr) return ColdCache(request, &response);
    }
    response.cache_hit = true;
    completed_->Inc();
    cache_hits_->Inc();
    rethreshold_served_->Inc();
    return response;
  }

  ClusterResponse ColdCache(const ClusterRequest& request,
                            ClusterResponse* response) {
    errors_->Inc();
    response->status = Status::NotFound(
        std::string(ToString(request.kind)) +
        " request found no cached solution for this compute configuration; "
        "submit a cluster request first");
    return std::move(*response);
  }

  void ServeLoop() {
    for (;;) {
      std::vector<Submission> batch =
          queue_.PopBatch(options_.max_batch, options_.batch_window);
      const bool drained = batch.empty();  // shutdown, queue drained
      {
        std::lock_guard<std::mutex> lock(exec_mu_);
        for (Submission& s : batch) exec_queue_.push_back(std::move(s));
        if (drained) exec_done_ = true;
      }
      exec_cv_.notify_all();
      if (drained) return;
    }
  }

  void ExecutorLoop() {
    for (;;) {
      Submission s;
      {
        std::unique_lock<std::mutex> lock(exec_mu_);
        exec_cv_.wait(lock,
                      [this] { return exec_done_ || !exec_queue_.empty(); });
        if (exec_queue_.empty()) return;  // done and drained
        s = std::move(exec_queue_.front());
        exec_queue_.pop_front();
      }
      Execute(s);
    }
  }

  /// Erases the in-flight entry and wakes every waiting twin; runs on
  /// every path out of the compute section once a lane registered as the
  /// key's computer (including failures — twins then recompute).
  class InflightSettle {
   public:
    InflightSettle(ClusterServer* server, const std::string* key,
                   std::promise<void>* done)
        : server_(server), key_(key), done_(done) {}
    InflightSettle(const InflightSettle&) = delete;
    InflightSettle& operator=(const InflightSettle&) = delete;
    ~InflightSettle() {
      if (server_ == nullptr) return;
      {
        std::lock_guard<std::mutex> lock(server_->inflight_mu_);
        server_->inflight_.erase(*key_);
      }
      done_->set_value();
    }

   private:
    ClusterServer* server_;
    const std::string* key_;
    std::promise<void>* done_;
  };

  /// The one respond path for queued submissions: records the
  /// submit->respond latency histogram (plus the queue-wait and run-time
  /// components) and resolves the promise. Every outcome — success,
  /// deadline, error — flows through here, so the latency distribution
  /// covers the full mix, not just the happy path.
  void Respond(Submission& s, ClusterResponse&& response) {
    latency_hist_->Observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               s.admitted_at)
                               .count());
    queue_hist_->Observe(response.queue_seconds);
    if (response.run_seconds > 0.0) run_hist_->Observe(response.run_seconds);
    s.promise.set_value(std::move(response));
  }

  void Execute(Submission& s) {
    // Requests executing when a trace is attached emit a span tree under
    // one root "request" span; the trace shared_ptr is pinned for the
    // whole execution so a mid-request set_trace(nullptr) cannot pull it
    // out from under the spans.
    const std::shared_ptr<obs::Trace> trace = this->trace();
    obs::ScopedSpan request_span(trace.get(), "request");
    ClusterResponse response;
    const auto start = std::chrono::steady_clock::now();
    response.queue_seconds =
        std::chrono::duration<double>(start - s.admitted_at).count();
    if (trace != nullptr) {
      // The queue wait already happened — record it retroactively from
      // the admission stamp (same steady_clock timeline as NowNs).
      trace->RecordComplete("queue-wait", request_span.id(),
                            ToTraceNs(s.admitted_at), ToTraceNs(start));
    }

    if (start >= s.deadline_at) {
      deadline_exceeded_->Inc();
      response.status = Status::DeadlineExceeded(
          "deadline expired after " + std::to_string(response.queue_seconds) +
          "s in queue");
      return Respond(s, std::move(response));
    }

    StatusOr<std::unique_ptr<DpcAlgorithm>> algo(Status::Ok());
    const std::shared_ptr<const NamedDataset> dataset =
        ResolveRequest(s.request, &algo, &response.status);
    if (dataset == nullptr) {
      errors_->Inc();
      return Respond(s, std::move(response));
    }

    const ThresholdSpec threshold = s.request.params.threshold();
    const std::string key =
        MakeSolutionKey(dataset->fingerprint, s.request.algorithm,
                        s.request.options, s.request.params.compute());
    // Solution-tier hit: ANY threshold is a finalize-only answer — the
    // re-threshold fast path that makes decision-graph exploration a
    // memory-speed workload.
    {
      obs::ScopedSpan probe(trace.get(), "cache-probe", request_span.id());
      if (std::shared_ptr<const DpcResult> cached =
              cache_.Finalize(key, threshold)) {
        completed_->Inc();
        cache_hits_->Inc();
        response.result = std::move(cached);
        response.cache_hit = true;
        return Respond(s, std::move(response));
      }
    }

    // In-flight dedup: with several lanes, identical requests can race
    // past both the batch coalescing and the cache check above. The
    // first lane registers as the key's computer; twins wait
    // (deadline-aware) and then serve from the now-warm cache as hits.
    std::promise<void> inflight_done;
    std::shared_future<void> twin;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        twin = it->second;
      } else {
        inflight_.emplace(key, inflight_done.get_future().share());
      }
    }
    if (twin.valid()) {
      obs::ScopedSpan twin_span(trace.get(), "inflight-wait",
                                request_span.id());
      if (s.deadline_at != std::chrono::steady_clock::time_point::max()) {
        if (twin.wait_until(s.deadline_at) != std::future_status::ready) {
          deadline_exceeded_->Inc();
          response.status = Status::DeadlineExceeded(
              "deadline expired waiting for an identical in-flight request");
          return Respond(s, std::move(response));
        }
      } else {
        twin.wait();
      }
      twin_span.End();
      if (std::shared_ptr<const DpcResult> cached =
              cache_.Finalize(key, threshold)) {
        completed_->Inc();
        cache_hits_->Inc();
        response.result = std::move(cached);
        response.cache_hit = true;
        return Respond(s, std::move(response));
      }
      // The twin failed or the cache is disabled: compute ourselves,
      // without re-registering (a second failure must not cascade waits).
      return Compute(s, std::move(response), *dataset, *algo.value(), key,
                     threshold, nullptr, trace, request_span.id());
    }
    InflightSettle settle(this, &key, &inflight_done);
    Compute(s, std::move(response), *dataset, *algo.value(), key, threshold,
            &settle, trace, request_span.id());
  }

  /// The actual solve: lease a shard of the budget sized from the §4.5
  /// population cost and the request priority, run with a per-request
  /// deadline context on the leased pool, insert into the cache, then
  /// respond. `settle` (may be null) wakes in-flight twins on scope exit
  /// — after the cache insert, so they find it warm.
  void Compute(Submission& s, ClusterResponse response,
               const NamedDataset& dataset, DpcAlgorithm& algo,
               const std::string& key, const ThresholdSpec& threshold,
               InflightSettle* settle,
               const std::shared_ptr<obs::Trace>& trace,
               uint64_t request_span_id) {
    (void)settle;  // held by the caller; named here for the contract
    // LPT-profile-aware width when the registry computed one (skewed
    // datasets plan wider shards); flat |P| model otherwise.
    const int width =
        dataset.cost_profile.empty()
            ? PlanShardWidth(shard_pool_.total(), lanes_,
                             static_cast<int64_t>(dataset.points.size()),
                             s.request.priority)
            : PlanShardWidth(shard_pool_.total(), lanes_,
                             dataset.cost_profile, s.request.priority);
    obs::ScopedSpan lease_span(trace.get(), "lease-wait", request_span_id);
    std::optional<ShardPool::Lease> lease =
        shard_pool_.Acquire(width, s.deadline_at);
    lease_span.End();
    if (!lease.has_value()) {
      deadline_exceeded_->Inc();
      response.status = Status::DeadlineExceeded(
          "deadline expired waiting for a pool shard");
      return Respond(s, std::move(response));
    }
    leases_granted_->Inc();
    lease_width_total_->Inc(static_cast<uint64_t>(lease->width()));

    // Per-request context on the leased pool: deadline and cancellation
    // are this request's alone. The deprecated per-request
    // DpcParams::num_threads never reaches the compute phase — Solve
    // takes its whole execution policy from this context.
    ExecutionContext ctx(lease->width(), options_.strategy, lease->pool());
    if (s.deadline_at != std::chrono::steady_clock::time_point::max()) {
      ctx.set_deadline(s.deadline_at);
    }

    const uint64_t running = running_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t peak = peak_concurrency_.load(std::memory_order_relaxed);
    while (running > peak && !peak_concurrency_.compare_exchange_weak(
                                 peak, running, std::memory_order_relaxed)) {
    }
    // The solve span parents the per-phase children (solve/build, /rho,
    // /delta, /stamp — emitted by DpcAlgorithm::Solve) and any per-shard
    // worker spans; the context carries the trace + parent id down.
    obs::ScopedSpan solve_span(trace.get(), "solve", request_span_id);
    if (trace != nullptr) ctx = ctx.WithTrace(trace, solve_span.id());
    const auto run_start = std::chrono::steady_clock::now();
    DpcSolution solution = algo.Solve(dataset.points,
                                      s.request.params.compute(), ctx,
                                      dataset.fingerprint);
    solve_span.End();
    running_.fetch_sub(1, std::memory_order_relaxed);
    lease->Release();
    recomputes_->Inc();
    response.run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();

    if (solution.interrupted()) {
      deadline_exceeded_->Inc();
      response.status = Status::DeadlineExceeded(
          "deadline expired after " + std::to_string(response.run_seconds) +
          "s of execution");
      return Respond(s, std::move(response));
    }

    auto shared = std::make_shared<const DpcSolution>(std::move(solution));
    {
      obs::ScopedSpan insert_span(trace.get(), "cache-insert",
                                  request_span_id);
      cache_.Insert(key, shared, shared->compute_cost_seconds);
    }
    // Label through the cache so this first threshold is memoized and
    // later identical requests alias the same immutable result; the
    // fallback covers a disabled (capacity 0) cache.
    obs::ScopedSpan finalize_span(trace.get(), "finalize", request_span_id);
    response.result = cache_.Finalize(key, threshold);
    if (response.result == nullptr) {
      response.result =
          std::make_shared<const DpcResult>(FinalizeSolution(*shared, threshold));
    }
    finalize_span.End();
    completed_->Inc();
    Respond(s, std::move(response));
  }

  const ServerOptions options_;
  ShardPool shard_pool_;
  const int lanes_;
  DatasetRegistry datasets_;
  /// Declared before cache_ (which holds a raw pointer into it) so the
  /// cache dies first on teardown.
  std::unique_ptr<store::SolutionStore> store_;
  SolutionCache cache_;
  AdmissionQueue queue_;

  /// The server's metric registry and cached handles into it (set once
  /// in the constructor; hot-path increments are lock-free). running_ /
  /// peak_concurrency_ stay raw atomics — the CAS-max update isn't a
  /// counter op — and are exposed through the gauge collector.
  obs::MetricRegistry metrics_;
  obs::Counter* submitted_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* recomputes_ = nullptr;
  obs::Counter* rethreshold_served_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* leases_granted_ = nullptr;
  obs::Counter* lease_width_total_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
  obs::Histogram* queue_hist_ = nullptr;
  obs::Histogram* run_hist_ = nullptr;
  std::atomic<uint64_t> running_{0};
  std::atomic<uint64_t> peak_concurrency_{0};

  mutable std::mutex trace_mu_;
  std::shared_ptr<obs::Trace> trace_;  ///< null = tracing off (default)

  std::mutex inflight_mu_;
  std::unordered_map<std::string, std::shared_future<void>> inflight_;

  std::mutex exec_mu_;
  std::condition_variable exec_cv_;
  std::deque<Submission> exec_queue_;  ///< guarded by exec_mu_
  bool exec_done_ = false;             ///< guarded by exec_mu_

  std::mutex join_mu_;  ///< serializes racing Shutdown calls
  // Last members: lanes and dispatcher start after everything they use.
  std::vector<std::thread> executors_;
  std::thread dispatcher_;
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_SERVER_H_
