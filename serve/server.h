// ClusterServer — the serving layer's engine: one dispatcher thread
// drains the AdmissionQueue in coalesced batches and executes each
// request over ONE shared ThreadPool, deriving a fresh-stop-state
// ExecutionContext per request (deadline armed from the request budget).
// Requests in a batch execute serially, each with the full pool — the
// paper's algorithms scale with threads, so one request at full width
// beats two at half width, and the solution cache absorbs the duplicates
// that batching exposes.
//
// The cache is the two-tier SolutionCache (serve/solution_cache.h),
// keyed by the COMPUTE configuration only: a kCluster request whose
// compute key hits answers any (rho_min, delta_min) with an O(n)
// finalize and zero algorithm work. kRethreshold and kGraph requests go
// further — they are answered synchronously at Submit, entirely off the
// dispatcher and the ThreadPool, and fail NOT_FOUND when the solution
// tier is cold instead of recomputing. ServerStats::recomputes counts
// actual algorithm executions, so "a re-threshold never recomputes" is
// an observable invariant, not a hope.
//
// Threading note: the dispatcher is the serve/ layer's only std::thread;
// all clustering parallelism still comes from parallel/thread_pool.h.
//
// Per-request outcomes (ClusterResponse::status):
//   OK                  labels computed (or served from cache/coalesced)
//   kDeadlineExceeded   budget expired in the queue (never ran) or
//                       mid-run (the ExecutionContext stopped the
//                       algorithm between / inside phases)
//   kNotFound           unknown dataset handle or algorithm name, or a
//                       kRethreshold/kGraph request against a cold cache
//   kInvalidArgument    bad params or per-algorithm options
//   kCancelled          server shut down before the request was admitted
#ifndef DPC_SERVE_SERVER_H_
#define DPC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/decision_graph.h"
#include "core/dpc.h"
#include "core/registry.h"
#include "core/status.h"
#include "parallel/execution_context.h"
#include "parallel/thread_pool.h"
#include "serve/dataset_registry.h"
#include "serve/request.h"
#include "serve/scheduler.h"
#include "serve/solution_cache.h"

namespace dpc::serve {

struct ServerOptions {
  /// Worker threads in the shared pool (0 = all hardware threads). Every
  /// request executes on this one pool.
  int pool_threads = 0;
  /// Solution-cache capacity in solutions; 0 disables caching (which
  /// also makes every kRethreshold/kGraph request fail NOT_FOUND).
  size_t cache_capacity = 64;
  /// Bound on memoized labelings per cached solution (each memo carries
  /// full DpcResult copies — see serve/solution_cache.h).
  size_t labelings_per_solution = 16;
  /// Most submissions admitted per batch.
  size_t max_batch = 8;
  /// How long an admitted batch holds the door open for more arrivals
  /// (bursts coalesce so duplicates hit the cache); zero disables
  /// coalescing.
  std::chrono::steady_clock::duration batch_window =
      std::chrono::milliseconds(2);
  /// Loop scheduling for every request (per-request option maps can
  /// still override per algorithm, e.g. scheduler=static).
  ScheduleStrategy strategy = ScheduleStrategy::kCostGuided;
};

/// Monotonic counters, snapshotted by stats().
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;           ///< responded OK (computed or cached)
  uint64_t cache_hits = 0;          ///< answered without running the algorithm
  uint64_t recomputes = 0;          ///< actual algorithm Solve executions
  uint64_t rethreshold_served = 0;  ///< kRethreshold/kGraph answered at submit
  uint64_t deadline_exceeded = 0;   ///< expired in queue or mid-run
  uint64_t errors = 0;              ///< NotFound / InvalidArgument / Cancelled
};

class ClusterServer {
 public:
  explicit ClusterServer(ServerOptions options = {})
      : options_(options),
        pool_(std::make_shared<ThreadPool>(options.pool_threads)),
        base_ctx_(pool_->size(), options.strategy, pool_),
        cache_(options.cache_capacity, options.labelings_per_solution),
        dispatcher_([this] { ServeLoop(); }) {}

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  ~ClusterServer() { Shutdown(); }

  DatasetRegistry& datasets() { return datasets_; }
  const DatasetRegistry& datasets() const { return datasets_; }
  SolutionCache& cache() { return cache_; }

  /// Validates and admits the request; the response arrives through the
  /// returned future once the dispatcher serves it. Invalid requests and
  /// submissions after Shutdown resolve immediately (the shutdown check
  /// lives inside AdmissionQueue::Push, under the queue lock, so a
  /// Submit racing Shutdown either lands in the drained-by-dispatcher
  /// queue or is rejected — never stranded). kRethreshold and kGraph
  /// requests resolve synchronously here: the threshold phase is O(n)
  /// against a cached solution, so they bypass the queue, the batch
  /// window, and the ThreadPool entirely.
  std::future<ClusterResponse> Submit(ClusterRequest request) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (const Status s = request.Validate(); !s.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return Resolved(s);
    }
    if (request.kind != RequestKind::kCluster) {
      // Honor the post-Shutdown contract on the synchronous path too: the
      // queue-based kinds are rejected by AdmissionQueue::Push, so the
      // cache-only kinds must not keep answering against a server that is
      // tearing down.
      if (queue_.shutdown_requested()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return Resolved(Status::Cancelled("server is shut down"));
      }
      std::promise<ClusterResponse> promise;
      promise.set_value(ServeFromCacheOnly(request));
      return promise.get_future();
    }
    bool accepted = true;
    std::future<ClusterResponse> future =
        queue_.Push(std::move(request), &accepted);
    if (!accepted) errors_.fetch_add(1, std::memory_order_relaxed);
    return future;
  }

  /// Stops admission, serves everything already queued, and joins the
  /// dispatcher. Idempotent and safe to race (e.g. an explicit Shutdown
  /// against the destructor); also run by the destructor.
  void Shutdown() {
    queue_.Shutdown();
    std::lock_guard<std::mutex> lock(join_mu_);
    if (dispatcher_.joinable()) dispatcher_.join();
  }

  ServerStats stats() const {
    ServerStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.recomputes = recomputes_.load(std::memory_order_relaxed);
    s.rethreshold_served =
        rethreshold_served_.load(std::memory_order_relaxed);
    s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static std::future<ClusterResponse> Resolved(Status status) {
    std::promise<ClusterResponse> promise;
    ClusterResponse response;
    response.status = std::move(status);
    promise.set_value(std::move(response));
    return promise.get_future();
  }

  /// Resolves the dataset and algorithm for a request, or returns the
  /// error status through *failure. Resolving (and thereby validating)
  /// the algorithm happens BEFORE any cache access: canonicalization is
  /// type-blind ("1e1" renders like "10"), so an invalid spelling could
  /// otherwise hit a valid config's cache entry and succeed iff the
  /// cache happens to be warm.
  std::shared_ptr<const NamedDataset> ResolveRequest(
      const ClusterRequest& request,
      StatusOr<std::unique_ptr<DpcAlgorithm>>* algo, Status* failure) {
    std::shared_ptr<const NamedDataset> dataset =
        datasets_.Find(request.dataset);
    if (dataset == nullptr) {
      *failure = Status::NotFound("unknown dataset handle '" +
                                  request.dataset + "'");
      return nullptr;
    }
    *algo = MakeAlgorithmByName(request.algorithm, request.options);
    if (!algo->ok()) {
      *failure = algo->status();
      return nullptr;
    }
    return dataset;
  }

  /// The pool-free path for kRethreshold/kGraph: answer from the
  /// solution cache or fail NOT_FOUND — never compute.
  ClusterResponse ServeFromCacheOnly(const ClusterRequest& request) {
    ClusterResponse response;
    StatusOr<std::unique_ptr<DpcAlgorithm>> algo(Status::Ok());
    const std::shared_ptr<const NamedDataset> dataset =
        ResolveRequest(request, &algo, &response.status);
    if (dataset == nullptr) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    const std::string key =
        MakeSolutionKey(dataset->fingerprint, request.algorithm,
                        request.options, request.params.compute());
    if (request.kind == RequestKind::kGraph) {
      const std::shared_ptr<const DpcSolution> solution = cache_.Lookup(key);
      if (solution == nullptr) return ColdCache(request, &response);
      response.graph =
          TopGammaPoints(solution->rho, solution->delta, request.graph_top_k);
    } else {
      response.result = cache_.Finalize(key, request.params.threshold());
      if (response.result == nullptr) return ColdCache(request, &response);
    }
    response.cache_hit = true;
    completed_.fetch_add(1, std::memory_order_relaxed);
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    rethreshold_served_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }

  ClusterResponse ColdCache(const ClusterRequest& request,
                            ClusterResponse* response) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    response->status = Status::NotFound(
        std::string(ToString(request.kind)) +
        " request found no cached solution for this compute configuration; "
        "submit a cluster request first");
    return std::move(*response);
  }

  void ServeLoop() {
    for (;;) {
      std::vector<Submission> batch =
          queue_.PopBatch(options_.max_batch, options_.batch_window);
      if (batch.empty()) return;  // shutdown, queue drained
      // Serial execution in priority order: the first run of a
      // configuration lands in the cache before its within-batch twins
      // are looked up, so a coalesced burst computes once.
      for (Submission& s : batch) Execute(s);
    }
  }

  void Execute(Submission& s) {
    ClusterResponse response;
    const auto start = std::chrono::steady_clock::now();
    response.queue_seconds =
        std::chrono::duration<double>(start - s.admitted_at).count();

    if (start >= s.deadline_at) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      response.status = Status::DeadlineExceeded(
          "deadline expired after " + std::to_string(response.queue_seconds) +
          "s in queue");
      s.promise.set_value(std::move(response));
      return;
    }

    StatusOr<std::unique_ptr<DpcAlgorithm>> algo(Status::Ok());
    const std::shared_ptr<const NamedDataset> dataset =
        ResolveRequest(s.request, &algo, &response.status);
    if (dataset == nullptr) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      s.promise.set_value(std::move(response));
      return;
    }

    const ThresholdSpec threshold = s.request.params.threshold();
    const std::string key =
        MakeSolutionKey(dataset->fingerprint, s.request.algorithm,
                        s.request.options, s.request.params.compute());
    // Solution-tier hit: ANY threshold is a finalize-only answer — the
    // re-threshold fast path that makes decision-graph exploration a
    // memory-speed workload.
    if (std::shared_ptr<const DpcResult> cached =
            cache_.Finalize(key, threshold)) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      response.result = std::move(cached);
      response.cache_hit = true;
      s.promise.set_value(std::move(response));
      return;
    }

    // Per-request context: shares the pool and policy, but deadline and
    // cancellation are this request's alone. The deprecated per-request
    // DpcParams::num_threads never reaches the compute phase — Solve
    // takes its whole execution policy from this context.
    ExecutionContext ctx = base_ctx_.WithFreshStopState();
    if (s.deadline_at != std::chrono::steady_clock::time_point::max()) {
      ctx.set_deadline(s.deadline_at);
    }

    const auto run_start = std::chrono::steady_clock::now();
    DpcSolution solution = algo.value()->Solve(
        dataset->points, s.request.params.compute(), ctx,
        dataset->fingerprint);
    recomputes_.fetch_add(1, std::memory_order_relaxed);
    response.run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();

    if (solution.interrupted()) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      response.status = Status::DeadlineExceeded(
          "deadline expired after " + std::to_string(response.run_seconds) +
          "s of execution");
      s.promise.set_value(std::move(response));
      return;
    }

    auto shared = std::make_shared<const DpcSolution>(std::move(solution));
    cache_.Insert(key, shared, shared->compute_cost_seconds);
    // Label through the cache so this first threshold is memoized and
    // later identical requests alias the same immutable result; the
    // fallback covers a disabled (capacity 0) cache.
    response.result = cache_.Finalize(key, threshold);
    if (response.result == nullptr) {
      response.result =
          std::make_shared<const DpcResult>(FinalizeSolution(*shared, threshold));
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    s.promise.set_value(std::move(response));
  }

  const ServerOptions options_;
  std::shared_ptr<ThreadPool> pool_;
  ExecutionContext base_ctx_;
  DatasetRegistry datasets_;
  SolutionCache cache_;
  AdmissionQueue queue_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> recomputes_{0};
  std::atomic<uint64_t> rethreshold_served_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> errors_{0};

  std::mutex join_mu_;      ///< serializes racing Shutdown calls
  std::thread dispatcher_;  // last member: starts after everything it uses
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_SERVER_H_
