// ClusterServer — the serving layer's engine, now a truly concurrent
// scheduler: one dispatcher thread drains the AdmissionQueue in
// coalesced batches and feeds a fixed set of EXECUTOR LANES; each lane
// leases a shard of the thread budget (serve/shard_pool.h) sized from
// the request's population cost and priority, so several independent
// requests run side by side instead of one-at-a-time at full width.
// With one lane (max_concurrent = 1) the behavior degenerates to the
// classic serial dispatch: every request gets the whole budget.
//
// Concurrent lanes can race identical requests past the batch-window
// coalescing, so an in-flight map (keyed by the same canonical solution
// key as the cache) dedupes them: the first lane computes, twins wait on
// its completion (deadline-aware) and then serve from the cache as hits
// — a coalesced burst still computes once.
//
// The cache is the two-tier SolutionCache (serve/solution_cache.h),
// keyed by the COMPUTE configuration only: a kCluster request whose
// compute key hits answers any (rho_min, delta_min) with an O(n)
// finalize and zero algorithm work. kRethreshold and kGraph requests go
// further — they are answered synchronously at Submit, entirely off the
// dispatcher and every pool, and fail NOT_FOUND when the solution tier
// is cold instead of recomputing. ServerStats::recomputes counts actual
// algorithm executions, so "a re-threshold never recomputes" is an
// observable invariant, not a hope.
//
// Threading note: the dispatcher and the executor lanes are the serve/
// layer's only std::threads; all clustering parallelism still comes from
// parallel/thread_pool.h instances owned by the ShardPool.
//
// Per-request outcomes (ClusterResponse::status):
//   OK                  labels computed (or served from cache/coalesced)
//   kDeadlineExceeded   budget expired in the queue (never ran), waiting
//                       for a shard or an in-flight twin, or mid-run
//                       (the ExecutionContext stopped the algorithm)
//   kNotFound           unknown dataset handle or algorithm name, or a
//                       kRethreshold/kGraph request against a cold cache
//   kInvalidArgument    bad params or per-algorithm options
//   kCancelled          server shut down before the request was admitted
#ifndef DPC_SERVE_SERVER_H_
#define DPC_SERVE_SERVER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/decision_graph.h"
#include "core/dpc.h"
#include "core/registry.h"
#include "core/status.h"
#include "parallel/execution_context.h"
#include "parallel/thread_pool.h"
#include "serve/dataset_registry.h"
#include "serve/request.h"
#include "serve/scheduler.h"
#include "serve/shard_pool.h"
#include "serve/solution_cache.h"
#include "store/solution_store.h"

namespace dpc::serve {

struct ServerOptions {
  /// Total worker-thread budget across all concurrently executing
  /// requests (0 = all hardware threads). The ShardPool leases slices of
  /// it per request.
  int pool_threads = 0;
  /// Executor lanes = the most requests executing at once. 0 = auto:
  /// half the thread budget, clamped to [1, 4] — small servers stay
  /// serial, big ones overlap. 1 = classic serial dispatch.
  int max_concurrent = 0;
  /// Byte budget for the in-memory solution tier (entries are charged
  /// their exact serialized size); 0 disables caching (which also makes
  /// every kRethreshold/kGraph request fail NOT_FOUND).
  size_t memory_budget_bytes = 64u << 20;
  /// Path of the persistent solution store's log; empty = no store (the
  /// in-memory cache is the only tier and evictions discard). With a
  /// store, inserts write through, evictions demote, and a restarted
  /// server answers rethreshold/graph WARM from the log.
  std::string store_path;
  /// Ceiling on the store's log file; 0 = unbounded. Enforced by
  /// oldest-first eviction + compaction (store/solution_store.h).
  uint64_t disk_budget_bytes = 0;
  /// Bound on memoized labelings per cached solution (each memo carries
  /// full DpcResult copies — see serve/solution_cache.h).
  size_t labelings_per_solution = 16;
  /// Most submissions admitted per batch.
  size_t max_batch = 8;
  /// How long an admitted batch holds the door open for more arrivals
  /// (bursts coalesce so duplicates hit the cache); zero disables
  /// coalescing.
  std::chrono::steady_clock::duration batch_window =
      std::chrono::milliseconds(2);
  /// Loop scheduling for every request (per-request option maps can
  /// still override per algorithm, e.g. scheduler=static).
  ScheduleStrategy strategy = ScheduleStrategy::kCostGuided;
};

/// Monotonic counters, snapshotted by stats().
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;           ///< responded OK (computed or cached)
  uint64_t cache_hits = 0;          ///< answered without running the algorithm
  uint64_t recomputes = 0;          ///< actual algorithm Solve executions
  uint64_t rethreshold_served = 0;  ///< kRethreshold/kGraph answered at submit
  uint64_t deadline_exceeded = 0;   ///< expired in queue or mid-run
  uint64_t errors = 0;              ///< NotFound / InvalidArgument / Cancelled
  uint64_t peak_concurrency = 0;    ///< most requests mid-Solve at once
  uint64_t leases_granted = 0;      ///< shard leases taken from the pool
  uint64_t lease_width_total = 0;   ///< sum of granted widths (occupancy)
  uint64_t warm_misses = 0;   ///< memory misses served from the store
  uint64_t promotions = 0;    ///< store solutions re-admitted to memory
  uint64_t demotions = 0;     ///< evictions that kept their store copy
  uint64_t store_bytes = 0;   ///< current size of the store's log file
};

class ClusterServer {
 public:
  explicit ClusterServer(ServerOptions options = {})
      : options_(std::move(options)),
        shard_pool_(options_.pool_threads),
        lanes_(options_.max_concurrent > 0
                   ? options_.max_concurrent
                   : std::clamp(shard_pool_.total() / 2, 1, 4)),
        store_(OpenStore(options_)),
        cache_(options_.memory_budget_bytes, options_.labelings_per_solution,
               store_.get()) {
    executors_.reserve(static_cast<size_t>(lanes_));
    for (int i = 0; i < lanes_; ++i) {
      executors_.emplace_back([this] { ExecutorLoop(); });
    }
    dispatcher_ = std::thread([this] { ServeLoop(); });
  }

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  ~ClusterServer() { Shutdown(); }

  DatasetRegistry& datasets() { return datasets_; }
  const DatasetRegistry& datasets() const { return datasets_; }
  SolutionCache& cache() { return cache_; }
  /// The persistent store behind the cache, or null when store_path was
  /// empty (or the log failed to open — the server then runs storeless).
  const store::SolutionStore* store() const { return store_.get(); }
  int lanes() const { return lanes_; }

  /// Validates and admits the request; the response arrives through the
  /// returned future once an executor lane serves it. Invalid requests
  /// and submissions after Shutdown resolve immediately (the shutdown
  /// check lives inside AdmissionQueue::Push, under the queue lock, so a
  /// Submit racing Shutdown either lands in the drained-by-dispatcher
  /// queue or is rejected — never stranded). kRethreshold and kGraph
  /// requests resolve synchronously here: the threshold phase is O(n)
  /// against a cached solution, so they bypass the queue, the batch
  /// window, and every pool entirely.
  std::future<ClusterResponse> Submit(ClusterRequest request) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (const Status s = request.Validate(); !s.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return Resolved(s);
    }
    if (request.kind != RequestKind::kCluster) {
      // Honor the post-Shutdown contract on the synchronous path too: the
      // queue-based kinds are rejected by AdmissionQueue::Push, so the
      // cache-only kinds must not keep answering against a server that is
      // tearing down.
      if (queue_.shutdown_requested()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return Resolved(Status::Cancelled("server is shut down"));
      }
      std::promise<ClusterResponse> promise;
      promise.set_value(ServeFromCacheOnly(request));
      return promise.get_future();
    }
    bool accepted = true;
    std::future<ClusterResponse> future =
        queue_.Push(std::move(request), &accepted);
    if (!accepted) errors_.fetch_add(1, std::memory_order_relaxed);
    return future;
  }

  /// Stops admission, serves everything already queued, and joins the
  /// dispatcher and every executor lane. Idempotent and safe to race
  /// (e.g. an explicit Shutdown against the destructor).
  void Shutdown() {
    queue_.Shutdown();
    std::lock_guard<std::mutex> lock(join_mu_);
    // Dispatcher exit implies every admitted submission reached the
    // executor queue and exec_done_ is set; lanes then drain and exit.
    if (dispatcher_.joinable()) dispatcher_.join();
    for (std::thread& t : executors_) {
      if (t.joinable()) t.join();
    }
  }

  ServerStats stats() const {
    ServerStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.recomputes = recomputes_.load(std::memory_order_relaxed);
    s.rethreshold_served =
        rethreshold_served_.load(std::memory_order_relaxed);
    s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.peak_concurrency = peak_concurrency_.load(std::memory_order_relaxed);
    s.leases_granted = leases_granted_.load(std::memory_order_relaxed);
    s.lease_width_total = lease_width_total_.load(std::memory_order_relaxed);
    const SolutionCache::Stats c = cache_.stats();
    s.warm_misses = c.warm_misses;
    s.promotions = c.promotions;
    s.demotions = c.demotions;
    if (store_ != nullptr) s.store_bytes = store_->stats().log_bytes;
    return s;
  }

 private:
  /// Opens (creating if needed) the persistent store, replaying its log.
  /// Failure is survivable — the server runs storeless with a warning —
  /// EXCEPT silently: the operator sees why restarts will come up cold.
  static std::unique_ptr<store::SolutionStore> OpenStore(
      const ServerOptions& options) {
    if (options.store_path.empty()) return nullptr;
    store::SolutionStoreOptions store_options;
    store_options.disk_budget_bytes = options.disk_budget_bytes;
    auto opened = store::SolutionStore::Open(options.store_path, store_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "warning: solution store disabled: %s\n",
                   opened.status().ToString().c_str());
      return nullptr;
    }
    return std::move(opened).value();
  }

  static std::future<ClusterResponse> Resolved(Status status) {
    std::promise<ClusterResponse> promise;
    ClusterResponse response;
    response.status = std::move(status);
    promise.set_value(std::move(response));
    return promise.get_future();
  }

  /// Resolves the dataset and algorithm for a request, or returns the
  /// error status through *failure. Resolving (and thereby validating)
  /// the algorithm happens BEFORE any cache access: canonicalization is
  /// type-blind ("1e1" renders like "10"), so an invalid spelling could
  /// otherwise hit a valid config's cache entry and succeed iff the
  /// cache happens to be warm.
  std::shared_ptr<const NamedDataset> ResolveRequest(
      const ClusterRequest& request,
      StatusOr<std::unique_ptr<DpcAlgorithm>>* algo, Status* failure) {
    std::shared_ptr<const NamedDataset> dataset =
        datasets_.Find(request.dataset);
    if (dataset == nullptr) {
      *failure = Status::NotFound("unknown dataset handle '" +
                                  request.dataset + "'");
      return nullptr;
    }
    *algo = MakeAlgorithmByName(request.algorithm, request.options);
    if (!algo->ok()) {
      *failure = algo->status();
      return nullptr;
    }
    return dataset;
  }

  /// The pool-free path for kRethreshold/kGraph: answer from the
  /// solution cache or fail NOT_FOUND — never compute.
  ClusterResponse ServeFromCacheOnly(const ClusterRequest& request) {
    ClusterResponse response;
    StatusOr<std::unique_ptr<DpcAlgorithm>> algo(Status::Ok());
    const std::shared_ptr<const NamedDataset> dataset =
        ResolveRequest(request, &algo, &response.status);
    if (dataset == nullptr) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    const std::string key =
        MakeSolutionKey(dataset->fingerprint, request.algorithm,
                        request.options, request.params.compute());
    if (request.kind == RequestKind::kGraph) {
      const std::shared_ptr<const DpcSolution> solution = cache_.Lookup(key);
      if (solution == nullptr) return ColdCache(request, &response);
      response.graph =
          TopGammaPoints(solution->rho, solution->delta, request.graph_top_k);
    } else {
      response.result = cache_.Finalize(key, request.params.threshold());
      if (response.result == nullptr) return ColdCache(request, &response);
    }
    response.cache_hit = true;
    completed_.fetch_add(1, std::memory_order_relaxed);
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    rethreshold_served_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }

  ClusterResponse ColdCache(const ClusterRequest& request,
                            ClusterResponse* response) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    response->status = Status::NotFound(
        std::string(ToString(request.kind)) +
        " request found no cached solution for this compute configuration; "
        "submit a cluster request first");
    return std::move(*response);
  }

  void ServeLoop() {
    for (;;) {
      std::vector<Submission> batch =
          queue_.PopBatch(options_.max_batch, options_.batch_window);
      const bool drained = batch.empty();  // shutdown, queue drained
      {
        std::lock_guard<std::mutex> lock(exec_mu_);
        for (Submission& s : batch) exec_queue_.push_back(std::move(s));
        if (drained) exec_done_ = true;
      }
      exec_cv_.notify_all();
      if (drained) return;
    }
  }

  void ExecutorLoop() {
    for (;;) {
      Submission s;
      {
        std::unique_lock<std::mutex> lock(exec_mu_);
        exec_cv_.wait(lock,
                      [this] { return exec_done_ || !exec_queue_.empty(); });
        if (exec_queue_.empty()) return;  // done and drained
        s = std::move(exec_queue_.front());
        exec_queue_.pop_front();
      }
      Execute(s);
    }
  }

  /// Erases the in-flight entry and wakes every waiting twin; runs on
  /// every path out of the compute section once a lane registered as the
  /// key's computer (including failures — twins then recompute).
  class InflightSettle {
   public:
    InflightSettle(ClusterServer* server, const std::string* key,
                   std::promise<void>* done)
        : server_(server), key_(key), done_(done) {}
    InflightSettle(const InflightSettle&) = delete;
    InflightSettle& operator=(const InflightSettle&) = delete;
    ~InflightSettle() {
      if (server_ == nullptr) return;
      {
        std::lock_guard<std::mutex> lock(server_->inflight_mu_);
        server_->inflight_.erase(*key_);
      }
      done_->set_value();
    }

   private:
    ClusterServer* server_;
    const std::string* key_;
    std::promise<void>* done_;
  };

  void Execute(Submission& s) {
    ClusterResponse response;
    const auto start = std::chrono::steady_clock::now();
    response.queue_seconds =
        std::chrono::duration<double>(start - s.admitted_at).count();

    if (start >= s.deadline_at) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      response.status = Status::DeadlineExceeded(
          "deadline expired after " + std::to_string(response.queue_seconds) +
          "s in queue");
      s.promise.set_value(std::move(response));
      return;
    }

    StatusOr<std::unique_ptr<DpcAlgorithm>> algo(Status::Ok());
    const std::shared_ptr<const NamedDataset> dataset =
        ResolveRequest(s.request, &algo, &response.status);
    if (dataset == nullptr) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      s.promise.set_value(std::move(response));
      return;
    }

    const ThresholdSpec threshold = s.request.params.threshold();
    const std::string key =
        MakeSolutionKey(dataset->fingerprint, s.request.algorithm,
                        s.request.options, s.request.params.compute());
    // Solution-tier hit: ANY threshold is a finalize-only answer — the
    // re-threshold fast path that makes decision-graph exploration a
    // memory-speed workload.
    if (std::shared_ptr<const DpcResult> cached =
            cache_.Finalize(key, threshold)) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      response.result = std::move(cached);
      response.cache_hit = true;
      s.promise.set_value(std::move(response));
      return;
    }

    // In-flight dedup: with several lanes, identical requests can race
    // past both the batch coalescing and the cache check above. The
    // first lane registers as the key's computer; twins wait
    // (deadline-aware) and then serve from the now-warm cache as hits.
    std::promise<void> inflight_done;
    std::shared_future<void> twin;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        twin = it->second;
      } else {
        inflight_.emplace(key, inflight_done.get_future().share());
      }
    }
    if (twin.valid()) {
      if (s.deadline_at != std::chrono::steady_clock::time_point::max()) {
        if (twin.wait_until(s.deadline_at) != std::future_status::ready) {
          deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
          response.status = Status::DeadlineExceeded(
              "deadline expired waiting for an identical in-flight request");
          s.promise.set_value(std::move(response));
          return;
        }
      } else {
        twin.wait();
      }
      if (std::shared_ptr<const DpcResult> cached =
              cache_.Finalize(key, threshold)) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        response.result = std::move(cached);
        response.cache_hit = true;
        s.promise.set_value(std::move(response));
        return;
      }
      // The twin failed or the cache is disabled: compute ourselves,
      // without re-registering (a second failure must not cascade waits).
      return Compute(s, std::move(response), *dataset, *algo.value(), key,
                     threshold, nullptr);
    }
    InflightSettle settle(this, &key, &inflight_done);
    Compute(s, std::move(response), *dataset, *algo.value(), key, threshold,
            &settle);
  }

  /// The actual solve: lease a shard of the budget sized from the §4.5
  /// population cost and the request priority, run with a per-request
  /// deadline context on the leased pool, insert into the cache, then
  /// respond. `settle` (may be null) wakes in-flight twins on scope exit
  /// — after the cache insert, so they find it warm.
  void Compute(Submission& s, ClusterResponse response,
               const NamedDataset& dataset, DpcAlgorithm& algo,
               const std::string& key, const ThresholdSpec& threshold,
               InflightSettle* settle) {
    (void)settle;  // held by the caller; named here for the contract
    // LPT-profile-aware width when the registry computed one (skewed
    // datasets plan wider shards); flat |P| model otherwise.
    const int width =
        dataset.cost_profile.empty()
            ? PlanShardWidth(shard_pool_.total(), lanes_,
                             static_cast<int64_t>(dataset.points.size()),
                             s.request.priority)
            : PlanShardWidth(shard_pool_.total(), lanes_,
                             dataset.cost_profile, s.request.priority);
    std::optional<ShardPool::Lease> lease =
        shard_pool_.Acquire(width, s.deadline_at);
    if (!lease.has_value()) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      response.status = Status::DeadlineExceeded(
          "deadline expired waiting for a pool shard");
      s.promise.set_value(std::move(response));
      return;
    }
    leases_granted_.fetch_add(1, std::memory_order_relaxed);
    lease_width_total_.fetch_add(static_cast<uint64_t>(lease->width()),
                                 std::memory_order_relaxed);

    // Per-request context on the leased pool: deadline and cancellation
    // are this request's alone. The deprecated per-request
    // DpcParams::num_threads never reaches the compute phase — Solve
    // takes its whole execution policy from this context.
    ExecutionContext ctx(lease->width(), options_.strategy, lease->pool());
    if (s.deadline_at != std::chrono::steady_clock::time_point::max()) {
      ctx.set_deadline(s.deadline_at);
    }

    const uint64_t running = running_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t peak = peak_concurrency_.load(std::memory_order_relaxed);
    while (running > peak && !peak_concurrency_.compare_exchange_weak(
                                 peak, running, std::memory_order_relaxed)) {
    }
    const auto run_start = std::chrono::steady_clock::now();
    DpcSolution solution = algo.Solve(dataset.points,
                                      s.request.params.compute(), ctx,
                                      dataset.fingerprint);
    running_.fetch_sub(1, std::memory_order_relaxed);
    lease->Release();
    recomputes_.fetch_add(1, std::memory_order_relaxed);
    response.run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();

    if (solution.interrupted()) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      response.status = Status::DeadlineExceeded(
          "deadline expired after " + std::to_string(response.run_seconds) +
          "s of execution");
      s.promise.set_value(std::move(response));
      return;
    }

    auto shared = std::make_shared<const DpcSolution>(std::move(solution));
    cache_.Insert(key, shared, shared->compute_cost_seconds);
    // Label through the cache so this first threshold is memoized and
    // later identical requests alias the same immutable result; the
    // fallback covers a disabled (capacity 0) cache.
    response.result = cache_.Finalize(key, threshold);
    if (response.result == nullptr) {
      response.result =
          std::make_shared<const DpcResult>(FinalizeSolution(*shared, threshold));
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    s.promise.set_value(std::move(response));
  }

  const ServerOptions options_;
  ShardPool shard_pool_;
  const int lanes_;
  DatasetRegistry datasets_;
  /// Declared before cache_ (which holds a raw pointer into it) so the
  /// cache dies first on teardown.
  std::unique_ptr<store::SolutionStore> store_;
  SolutionCache cache_;
  AdmissionQueue queue_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> recomputes_{0};
  std::atomic<uint64_t> rethreshold_served_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> running_{0};
  std::atomic<uint64_t> peak_concurrency_{0};
  std::atomic<uint64_t> leases_granted_{0};
  std::atomic<uint64_t> lease_width_total_{0};

  std::mutex inflight_mu_;
  std::unordered_map<std::string, std::shared_future<void>> inflight_;

  std::mutex exec_mu_;
  std::condition_variable exec_cv_;
  std::deque<Submission> exec_queue_;  ///< guarded by exec_mu_
  bool exec_done_ = false;             ///< guarded by exec_mu_

  std::mutex join_mu_;  ///< serializes racing Shutdown calls
  // Last members: lanes and dispatcher start after everything they use.
  std::vector<std::thread> executors_;
  std::thread dispatcher_;
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_SERVER_H_
