// Bounded LRU cache of clustering results, keyed by everything that
// determines the labels: dataset content fingerprint, algorithm name,
// canonicalized per-algorithm options, and the clustering params. The
// decision-graph workflow the paper targets (§2, Figure 1) re-runs
// clustering under many d_cut / delta_min values and revisits
// configurations while exploring — exactly the access pattern an LRU
// exploits.
//
// Execution policy (thread count, schedule strategy) is deliberately NOT
// part of the key: the library-wide determinism contract (labels are
// bit-identical across strategies and thread counts, enforced by
// tests/determinism_test.cc) is what makes a cached result valid for
// every future execution of the same configuration.
//
// Thread-safe; Lookup returns shared_ptr<const DpcResult> so hits alias
// one immutable result. Eviction is strict LRU, so a fixed access
// sequence evicts deterministically.
#ifndef DPC_SERVE_RESULT_CACHE_H_
#define DPC_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dpc.h"
#include "core/options.h"

namespace dpc::serve {

/// The canonical cache key. Numeric params render with %.17g (the same
/// normalization CanonicalOptionValue applies to option values), so any
/// two requests whose configurations are semantically identical — however
/// they were spelled — map to one key. Execution policy is excluded on
/// both fronts: DpcParams::num_threads and the per-algorithm "scheduler"
/// option (OptionsReader::Strategy) pick how loops run, not what the
/// labels are.
inline std::string MakeCacheKey(uint64_t dataset_fingerprint,
                                const std::string& algorithm,
                                const OptionsMap& options,
                                const DpcParams& params) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%016llx|%.17g|%.17g|%.17g|%.17g|",
                static_cast<unsigned long long>(dataset_fingerprint),
                params.d_cut, params.rho_min, params.delta_min,
                params.epsilon);
  OptionsMap keyed = options;
  keyed.erase("scheduler");
  return buf + algorithm + '|' + CanonicalOptionsString(keyed);
}

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  /// capacity is in entries; 0 disables the cache (every Lookup misses,
  /// Insert is a no-op).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

  /// The cached result for key, refreshing its recency; null on miss.
  std::shared_ptr<const DpcResult> Lookup(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      if (enabled()) ++stats_.misses;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // most recent first
    ++stats_.hits;
    return it->second->result;
  }

  /// Caches the result under key as most-recent, evicting the least
  /// recently used entry when full. Re-inserting an existing key
  /// refreshes its value and recency.
  void Insert(const std::string& key,
              std::shared_ptr<const DpcResult> result) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->result = std::move(result);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (lru_.size() >= capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(Entry{key, std::move(result)});
    index_[key] = lru_.begin();
    ++stats_.insertions;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Keys from most- to least-recently used (tests assert eviction
  /// determinism against this order).
  std::vector<std::string> KeysByRecency() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> keys;
    keys.reserve(lru_.size());
    for (const Entry& entry : lru_) keys.push_back(entry.key);
    return keys;
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const DpcResult> result;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_RESULT_CACHE_H_
