// Request/response vocabulary of the serving layer. A ClusterRequest is
// the serve/ subsystem's unit of work — where core/'s unit is one
// Solve/Run invocation, a request names a *registered* dataset by handle
// (serve/dataset_registry.h), an algorithm from the core registry,
// per-algorithm key=value options, and per-request service policy: a
// deadline budget and an admission priority.
//
// Request kinds mirror the library's compute/threshold split:
//
//   kCluster     — full pipeline. The server answers from the two-tier
//                  SolutionCache when the compute key hits (finalize-only,
//                  any threshold) and runs the algorithm otherwise.
//   kRethreshold — threshold phase ONLY, against a cached solution. Never
//                  touches the ThreadPool: a warm compute key is answered
//                  synchronously at submit, a cold one fails NOT_FOUND
//                  (run a kCluster request first). This is the
//                  decision-graph exploration fast path.
//   kGraph       — the top-k gamma = rho * delta points of a cached
//                  solution's decision graph (what a client renders to
//                  pick thresholds). Same warm-only, pool-free contract
//                  as kRethreshold.
//
// Lifecycle (kCluster): ClusterServer::Submit validates and enqueues the
// request with an admission timestamp; the scheduler batches it;
// execution either answers from the solution cache or derives a
// fresh-stop-state ExecutionContext (deadline armed) over the server's
// shared pool and runs the algorithm's compute phase. The response
// carries a Status — kDeadlineExceeded both for requests that expired in
// the queue and for runs interrupted mid-phase — and, on success, a
// shared immutable DpcResult.
#ifndef DPC_SERVE_REQUEST_H_
#define DPC_SERVE_REQUEST_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/decision_graph.h"
#include "core/dpc.h"
#include "core/options.h"
#include "core/status.h"

namespace dpc::serve {

enum class RequestKind {
  kCluster = 0,  ///< compute (or cached solution) + threshold
  kRethreshold,  ///< threshold only, from a cached solution
  kGraph,        ///< top-k gamma points, from a cached solution
};

inline const char* ToString(RequestKind kind) {
  switch (kind) {
    case RequestKind::kCluster:
      return "cluster";
    case RequestKind::kRethreshold:
      return "rethreshold";
    case RequestKind::kGraph:
      return "graph";
  }
  return "?";
}

struct ClusterRequest {
  RequestKind kind = RequestKind::kCluster;
  /// Handle of a dataset previously registered with the server's
  /// DatasetRegistry — clients never re-ship points per request.
  std::string dataset;
  /// A core registry name (ex-dpc, approx-dpc, ...); resolved at
  /// execution via MakeAlgorithmByName.
  std::string algorithm = "approx-dpc";
  /// Per-algorithm knobs, same grammar as `dpc_cli --opt` (core/options.h).
  OptionsMap options;
  /// Clustering knobs (d_cut, rho_min, delta_min, epsilon). Split by the
  /// server into params.compute() — the solution-cache key — and
  /// params.threshold() — the label phase. The deprecated num_threads
  /// field is ignored: execution policy belongs to the server.
  DpcParams params;
  /// kGraph only: how many gamma-ranked points to return.
  int graph_top_k = 10;
  /// Wall-clock budget measured from admission; zero means no deadline.
  /// Time spent queued counts against it, so an expired request is
  /// rejected without ever touching the pool. (kRethreshold/kGraph are
  /// answered at submit and cannot expire.)
  std::chrono::steady_clock::duration deadline{};
  /// Higher-priority requests run earlier within a batch window; ties
  /// keep submission order.
  int priority = 0;

  Status Validate() const {
    if (dataset.empty()) {
      return Status::InvalidArgument("request names no dataset handle");
    }
    if (algorithm.empty()) {
      return Status::InvalidArgument("request names no algorithm");
    }
    if (deadline.count() < 0) {
      return Status::InvalidArgument("deadline must be non-negative");
    }
    if (kind == RequestKind::kGraph && graph_top_k <= 0) {
      return Status::InvalidArgument("graph_top_k must be positive");
    }
    return params.Validate();
  }
};

struct ClusterResponse {
  Status status;
  /// Set iff status.ok() and the request labels points (kCluster /
  /// kRethreshold). Shared and immutable: cache hits, coalesced identical
  /// requests, and repeated thresholds alias the same DpcResult.
  std::shared_ptr<const DpcResult> result;
  /// kGraph only: the top-k gamma points, gamma descending.
  std::vector<GammaEntry> graph;
  /// True when the response never ran the algorithm: the solution tier
  /// hit and at most an O(n) finalize happened.
  bool cache_hit = false;
  double queue_seconds = 0.0;  ///< admission -> execution start
  double run_seconds = 0.0;    ///< algorithm wall time (0 for cache hits)
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_REQUEST_H_
