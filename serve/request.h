// Request/response vocabulary of the serving layer. A ClusterRequest is
// the serve/ subsystem's unit of work — where core/'s unit is one
// Run(points, params, ctx) invocation, a request names a *registered*
// dataset by handle (serve/dataset_registry.h), an algorithm from the
// core registry, per-algorithm key=value options, and per-request service
// policy: a deadline budget and an admission priority.
//
// Lifecycle: ClusterServer::Submit validates and enqueues the request
// with an admission timestamp; the scheduler batches it; execution either
// answers from the result cache or derives a fresh-stop-state
// ExecutionContext (deadline armed) over the server's shared pool and
// runs the algorithm. The response carries a Status — kDeadlineExceeded
// both for requests that expired in the queue and for runs interrupted
// mid-phase — and, on success, a shared immutable DpcResult.
#ifndef DPC_SERVE_REQUEST_H_
#define DPC_SERVE_REQUEST_H_

#include <chrono>
#include <memory>
#include <string>

#include "core/dpc.h"
#include "core/options.h"
#include "core/status.h"

namespace dpc::serve {

struct ClusterRequest {
  /// Handle of a dataset previously registered with the server's
  /// DatasetRegistry — clients never re-ship points per request.
  std::string dataset;
  /// A core registry name (ex-dpc, approx-dpc, ...); resolved at
  /// execution via MakeAlgorithmByName.
  std::string algorithm = "approx-dpc";
  /// Per-algorithm knobs, same grammar as `dpc_cli --opt` (core/options.h).
  OptionsMap options;
  /// Clustering knobs (d_cut, rho_min, delta_min, epsilon). The
  /// deprecated num_threads field is ignored: execution policy belongs to
  /// the server.
  DpcParams params;
  /// Wall-clock budget measured from admission; zero means no deadline.
  /// Time spent queued counts against it, so an expired request is
  /// rejected without ever touching the pool.
  std::chrono::steady_clock::duration deadline{};
  /// Higher-priority requests run earlier within a batch window; ties
  /// keep submission order.
  int priority = 0;

  Status Validate() const {
    if (dataset.empty()) {
      return Status::InvalidArgument("request names no dataset handle");
    }
    if (algorithm.empty()) {
      return Status::InvalidArgument("request names no algorithm");
    }
    if (deadline.count() < 0) {
      return Status::InvalidArgument("deadline must be non-negative");
    }
    return params.Validate();
  }
};

struct ClusterResponse {
  Status status;
  /// Set iff status.ok(). Shared and immutable: cache hits and coalesced
  /// identical requests alias the same DpcResult.
  std::shared_ptr<const DpcResult> result;
  /// True when the response was answered from the result cache.
  bool cache_hit = false;
  double queue_seconds = 0.0;  ///< admission -> execution start
  double run_seconds = 0.0;    ///< algorithm wall time (0 for cache hits)
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_REQUEST_H_
