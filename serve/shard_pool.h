// ShardPool — an elastic budget of worker threads carved into
// per-request shards, so ClusterServer can run several independent
// requests side by side instead of one request at full pool width.
//
// ThreadPool serializes concurrent Run() regions on one mutex by design
// (parallel/thread_pool.h), so true request-level overlap needs DISTINCT
// ThreadPool instances. ShardPool owns that: Acquire(width) blocks until
// `width` threads of the budget are free, then hands out an RAII Lease
// over a cached ThreadPool of exactly that width (pools are recycled by
// width, so steady-state serving spawns no threads). Only the budget is
// gated — cached idle pools may hold parked OS threads beyond it, but at
// most `total()` of them run at any instant.
//
// Width planning is deterministic: PlanShardWidth sizes a request's
// shard from the §4.5 population cost model (work scales with |P|, and
// below the parallel threshold inner loops inline serial anyway) and the
// request's priority, so a given request mix always gets the same
// placement.
#ifndef DPC_SERVE_SHARD_POOL_H_
#define DPC_SERVE_SHARD_POOL_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parallel/lpt_scheduler.h"
#include "parallel/omp_utils.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace dpc::serve {

/// Deterministic shard width for one request: an even split of the
/// budget across the executor lanes, shrunk to 1 for datasets below the
/// parallel threshold (they cannot use more), boosted one thread per
/// priority level, clamped to the budget.
inline int PlanShardWidth(int total, int lanes, int64_t cost_points,
                          int priority) {
  int width = std::max(1, total / std::max(1, lanes));
  if (cost_points < internal::kMinParallelIterations) width = 1;
  width += std::max(0, priority);
  return std::clamp(width, 1, std::max(1, total));
}

/// Cost-profile-aware width. `bin_costs` is the dataset's coarse spatial
/// cost histogram (serve/dataset_registry.h NamedDataset::cost_profile).
/// The flat |P| model above assumes the work divides evenly across a
/// shard's threads; a skewed dataset does not — its LPT makespan at the
/// flat width exceeds the even-split prediction sum/base — so the width
/// grows until the §4.5 LPT schedule of the bins meets the flat model's
/// per-lane latency target, or the budget caps it. A uniform profile
/// plans exactly the flat width (the 5% slack absorbs integer-
/// granularity remainders: 64 equal bins on 3 threads load 22/21/21,
/// which is not skew).
inline int PlanShardWidth(int total, int lanes,
                          const std::vector<double>& bin_costs, int priority) {
  double sum = 0.0;
  for (const double c : bin_costs) sum += c;
  const int64_t cost_points = static_cast<int64_t>(sum);
  if (bin_costs.empty() || cost_points < internal::kMinParallelIterations) {
    return PlanShardWidth(total, lanes, cost_points, priority);
  }
  const int budget = std::max(1, total);
  const int base = std::max(1, total / std::max(1, lanes));
  const double target = (sum / base) * 1.05;
  int width = base;
  while (width < budget && LptSchedule(bin_costs, width).makespan > target) {
    ++width;
  }
  width += std::max(0, priority);
  return std::clamp(width, 1, budget);
}

class ShardPool {
 public:
  /// total_threads 0 = all hardware threads.
  explicit ShardPool(int total_threads) : total_(ResolveThreads(total_threads)) {}

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int total() const { return total_; }
  int in_use() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_use_;
  }

  /// RAII grant of `width()` threads of the budget; returns them (and
  /// recycles the ThreadPool instance) on destruction or Release().
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = std::exchange(other.owner_, nullptr);
        pool_ = std::move(other.pool_);
        width_ = std::exchange(other.width_, 0);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    const std::shared_ptr<ThreadPool>& pool() const { return pool_; }
    int width() const { return width_; }

    void Release() {
      if (owner_ == nullptr) return;
      owner_->Return(std::move(pool_), width_);
      owner_ = nullptr;
      pool_ = nullptr;
      width_ = 0;
    }

   private:
    friend class ShardPool;
    Lease(ShardPool* owner, std::shared_ptr<ThreadPool> pool, int width)
        : owner_(owner), pool_(std::move(pool)), width_(width) {}

    ShardPool* owner_ = nullptr;
    std::shared_ptr<ThreadPool> pool_;
    int width_ = 0;
  };

  /// Blocks until `width` threads (clamped to the budget) are free or
  /// the deadline passes; nullopt = timed out. time_point::max() waits
  /// forever — safe because leases always come back: every holder is a
  /// finite solve.
  std::optional<Lease> Acquire(
      int width, std::chrono::steady_clock::time_point deadline =
                     std::chrono::steady_clock::time_point::max()) {
    const int w = std::clamp(width, 1, total_);
    std::unique_lock<std::mutex> lock(mu_);
    const auto free_enough = [&] { return in_use_ + w <= total_; };
    if (deadline == std::chrono::steady_clock::time_point::max()) {
      cv_.wait(lock, free_enough);
    } else if (!cv_.wait_until(lock, deadline, free_enough)) {
      return std::nullopt;
    }
    in_use_ += w;
    std::shared_ptr<ThreadPool> pool;
    std::vector<std::shared_ptr<ThreadPool>>& cache = free_[w];
    if (!cache.empty()) {
      pool = std::move(cache.back());
      cache.pop_back();
    }
    lock.unlock();
    // First lease of a width pays the thread spawn; reuse is free.
    if (pool == nullptr) pool = std::make_shared<ThreadPool>(w);
    return Lease(this, std::move(pool), w);
  }

 private:
  friend class Lease;

  void Return(std::shared_ptr<ThreadPool> pool, int width) {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool != nullptr) free_[width].push_back(std::move(pool));
    in_use_ -= width;
    cv_.notify_all();
  }

  const int total_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int in_use_ = 0;  ///< guarded by mu_
  /// Recycled pools by width, guarded by mu_.
  std::unordered_map<int, std::vector<std::shared_ptr<ThreadPool>>> free_;
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_SHARD_POOL_H_
