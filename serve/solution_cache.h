// Two-tier cache for the serving layer, built around the library's
// compute/threshold split:
//
//   solution tier — DpcSolutions keyed by everything the EXPENSIVE phase
//       depends on: dataset content fingerprint, algorithm name,
//       canonicalized per-algorithm options, and ComputeParams (d_cut,
//       epsilon). Threshold knobs are deliberately NOT in the key — one
//       cached solution answers every (rho_min, delta_min).
//   label tier — per-solution memo of finalized DpcResults keyed by
//       ThresholdSpec, so repeated thresholds alias one immutable result
//       and even a fresh threshold costs only an O(n) LabelSolution pass.
//
// This is what turns the decision-graph exploration workload (many
// thresholds against few compute configurations — the paper's Figure 1
// workflow) from N recomputes into one compute plus N O(n) finalizes.
//
// The memory tier is BYTE-budgeted: an entry is charged its exact
// serialized size (store/solution_format.h SerializedSolutionBytes) and
// bytes_in_use() never exceeds memory_budget_bytes. Eviction is
// GreedyDual-Size: each entry holds a credit of (global inflation L +
// compute cost / serialized bytes); hits refresh the credit; the victim
// is the minimum-credit entry and its credit becomes the new L. An
// expensive Ex-DPC solution therefore outlives many cheap approximate
// ones — per byte it occupies — yet ages out once enough cheaper traffic
// has passed, and the policy is deterministic for a fixed access
// sequence (ties break toward the least recently touched entry).
//
// With a store::SolutionStore attached the cache becomes the warm tier
// of a two-level hierarchy: Insert writes THROUGH to the store's log
// (durable before the entry is resident), eviction merely drops the
// memory copy (a demotion — the log still has it), and a memory miss
// tries the store before giving up (a WARM miss: the solution is
// promoted back and the caller finalizes it — never recomputes).
//
// Execution policy (thread count, schedule strategy) is excluded from
// keys on both tiers: the library-wide determinism contract (labels are
// bit-identical across strategies and thread counts, enforced by
// tests/determinism_test.cc) is what makes a cached artifact valid for
// every future execution of the same configuration. Thread-safe; the
// store is never called under the cache lock.
#ifndef DPC_SERVE_SOLUTION_CACHE_H_
#define DPC_SERVE_SOLUTION_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dpc.h"
#include "core/options.h"
#include "store/solution_format.h"
#include "store/solution_store.h"

namespace dpc::serve {

/// The solution-tier key. Numeric params render with %.17g (the same
/// normalization CanonicalOptionValue applies to option values), so any
/// two requests whose compute configurations are semantically identical —
/// however they were spelled — map to one key. Pure execution-policy
/// options are excluded — "scheduler", plus the "sharding"/"shards"
/// region-shard knobs (bit-identical by contract, core/sharded_dpc.h) —
/// as are rho_min and delta_min (threshold-tier concerns).
inline std::string MakeSolutionKey(uint64_t dataset_fingerprint,
                                   const std::string& algorithm,
                                   const OptionsMap& options,
                                   const ComputeParams& compute) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%016llx|%.17g|%.17g|",
                static_cast<unsigned long long>(dataset_fingerprint),
                compute.d_cut, compute.epsilon);
  OptionsMap keyed = options;
  keyed.erase("scheduler");
  keyed.erase("sharding");
  keyed.erase("shards");
  return buf + algorithm + '|' + CanonicalOptionsString(keyed);
}

/// The label-tier key within one solution entry. The halo flag is not
/// part of it: halo derivation happens downstream of labels and never
/// changes them.
inline std::string MakeThresholdKey(const ThresholdSpec& spec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g|%.17g", spec.rho_min, spec.delta_min);
  return buf;
}

class SolutionCache {
 public:
  /// One COHERENT snapshot: stats() copies every field (occupancy
  /// included) under a single mu_ acquisition, and each lookup's
  /// classification increments `lookups` in the same critical section as
  /// its hit/warm/miss counter — so the cross-field invariant
  ///   lookups == solution_hits + warm_misses + solution_misses
  /// holds in EVERY snapshot, not just quiescent ones
  /// (tests/serve_test.cc hammers this concurrently). The pre-PR-9 shape
  /// — stats(), size(), and bytes_in_use() each taking the lock at a
  /// different time — let scrapes observe torn invariants.
  struct Stats {
    uint64_t lookups = 0;          ///< classified reads (hit + warm + miss)
    uint64_t solution_hits = 0;    ///< memory-tier hits (Lookup/Finalize)
    uint64_t solution_misses = 0;  ///< missed memory AND the store
    uint64_t warm_misses = 0;  ///< missed memory, served from the store
    uint64_t promotions = 0;   ///< store solutions re-admitted to memory
    uint64_t demotions = 0;    ///< evictions whose entry lives on on disk
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t label_hits = 0;     ///< Finalize served an existing labeling
    uint64_t finalizations = 0;  ///< Finalize ran LabelSolution (O(n))
    // Occupancy, filled by stats() from the same critical section.
    uint64_t entries = 0;
    uint64_t bytes_in_use = 0;
    uint64_t budget_bytes = 0;
  };

  /// memory_budget_bytes bounds the sum of resident entries' serialized
  /// sizes; 0 disables the memory tier (every Lookup misses, Insert only
  /// writes through to the store, if any). labelings_per_solution bounds
  /// each entry's label memo (LRU within the entry) — each memoized
  /// DpcResult carries its own copies of rho/delta/dependency (the
  /// response contract), so this bound is the per-solution memory
  /// multiplier on top of the byte budget. `store` (optional, unowned)
  /// is the durable tier behind this one.
  explicit SolutionCache(size_t memory_budget_bytes,
                         size_t labelings_per_solution = 16,
                         store::SolutionStore* store = nullptr)
      : memory_budget_bytes_(memory_budget_bytes),
        labelings_per_solution_(labelings_per_solution > 0
                                    ? labelings_per_solution
                                    : 1),
        store_(store) {}

  size_t memory_budget_bytes() const { return memory_budget_bytes_; }
  bool enabled() const { return memory_budget_bytes_ > 0; }
  const store::SolutionStore* store() const { return store_; }

  /// The cached solution for key, refreshing its eviction credit — or,
  /// on a memory miss with a store attached, the promoted store copy;
  /// null when both tiers miss. For label-bearing reads prefer Finalize
  /// (one lock, memoized).
  std::shared_ptr<const DpcSolution> Lookup(const std::string& key) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      Entry* entry = Touch(key);
      if (entry != nullptr) {
        ++stats_.lookups;
        ++stats_.solution_hits;
        return entry->solution;
      }
    }
    return Promote(key);
  }

  /// Two-tier read: the finalized result for (key, spec), or null when
  /// both the memory tier and the store miss. A solution hit with a
  /// label-tier miss runs the O(n) finalize — never the algorithm —
  /// OUTSIDE the cache lock (a large-solution labeling must not convoy
  /// every other client on mu_), then memoizes under a double-checked
  /// re-lock so identical thresholds alias one immutable DpcResult.
  std::shared_ptr<const DpcResult> Finalize(const std::string& key,
                                            const ThresholdSpec& spec) {
    const std::string threshold_key = MakeThresholdKey(spec);
    std::shared_ptr<const DpcSolution> solution;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Entry* entry = Touch(key);
      if (entry != nullptr) {
        ++stats_.lookups;
        ++stats_.solution_hits;
        if (auto memo = FindLabeling(entry, threshold_key)) {
          ++stats_.label_hits;
          return memo;
        }
        solution = entry->solution;  // keeps the artifact alive unlocked
      }
    }
    if (solution == nullptr) {
      solution = Promote(key);  // the warm-miss path: store, not recompute
      if (solution == nullptr) return nullptr;
    }
    auto result =
        std::make_shared<const DpcResult>(FinalizeSolution(*solution, spec));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.finalizations;
    const auto it = index_.find(key);
    if (it == index_.end() || it->second.solution != solution) {
      // Evicted or replaced while labeling (or the promotion didn't fit):
      // the result is still correct for the solution we read, just not
      // memoizable against the key.
      return result;
    }
    if (auto memo = FindLabeling(&it->second, threshold_key)) {
      // Raced with another finalizer: alias the first-memoized result so
      // repeated thresholds stay pointer-identical.
      return memo;
    }
    it->second.labelings.emplace_front(threshold_key, result);
    if (it->second.labelings.size() > labelings_per_solution_) {
      it->second.labelings.pop_back();
    }
    return result;
  }

  /// Caches the solution under key with the given eviction cost
  /// (typically DpcSolution::compute_cost_seconds). Writes through to
  /// the store first (durability does not depend on residency), then
  /// admits the entry to memory, evicting minimum-credit entries until
  /// its serialized size fits the byte budget. Re-inserting an existing
  /// key refreshes its value, cost, and credit, and drops its stale
  /// label memo.
  void Insert(const std::string& key,
              std::shared_ptr<const DpcSolution> solution, double cost) {
    if (cost < 0.0) cost = 0.0;
    if (store_ != nullptr && !solution->interrupted()) {
      // Write-through; a store I/O failure degrades durability, never
      // serving (the memory tier still admits the entry below).
      (void)store_->Put(key, *solution);
    }
    if (!enabled()) return;
    const size_t bytes = store::SerializedSolutionBytes(*solution);
    std::lock_guard<std::mutex> lock(mu_);
    InsertLocked(key, std::move(solution), cost, bytes);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    bytes_in_use_ = 0;
    inflation_ = 0.0;
    seq_ = 0;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }

  /// Sum of resident entries' serialized sizes; <= memory_budget_bytes()
  /// at all times (the acceptance invariant serve_test asserts).
  size_t bytes_in_use() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_in_use_;
  }

  /// Every counter AND the occupancy fields, copied under one lock — the
  /// coherent snapshot path (see Stats).
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    Stats s = stats_;
    s.entries = static_cast<uint64_t>(index_.size());
    s.bytes_in_use = static_cast<uint64_t>(bytes_in_use_);
    s.budget_bytes = static_cast<uint64_t>(memory_budget_bytes_);
    return s;
  }

  /// Keys in eviction order — the next victim first (ascending credit,
  /// ties oldest-touch first). Tests assert eviction determinism against
  /// this order.
  std::vector<std::string> KeysByEvictionOrder() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<const std::string*, const Entry*>> entries;
    entries.reserve(index_.size());
    for (const auto& [key, entry] : index_) entries.push_back({&key, &entry});
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                if (a.second->credit != b.second->credit) {
                  return a.second->credit < b.second->credit;
                }
                return a.second->touch_seq < b.second->touch_seq;
              });
    std::vector<std::string> keys;
    keys.reserve(entries.size());
    for (const auto& [key, entry] : entries) keys.push_back(*key);
    return keys;
  }

 private:
  struct Entry {
    std::shared_ptr<const DpcSolution> solution;
    double cost = 0.0;     ///< compute cost backing the credit refreshes
    size_t bytes = 0;      ///< serialized size — the budget charge
    double credit = 0.0;   ///< GreedyDual-Size: inflation + cost / bytes
    uint64_t touch_seq = 0;  ///< recency, the deterministic tie-break
    /// Label memo, most recently used first, bounded by
    /// labelings_per_solution_.
    std::list<std::pair<std::string, std::shared_ptr<const DpcResult>>>
        labelings;
  };

  static double CreditFor(double inflation, double cost, size_t bytes) {
    return inflation + cost / static_cast<double>(bytes > 0 ? bytes : 1);
  }

  /// The warm-miss path: fetch from the store (outside mu_ — promotion
  /// I/O must not convoy the memory tier) and re-admit. Counts the miss
  /// taxonomy: solution_misses only when BOTH tiers miss.
  std::shared_ptr<const DpcSolution> Promote(const std::string& key) {
    if (!enabled()) return nullptr;
    std::shared_ptr<const DpcSolution> fetched =
        store_ != nullptr ? store_->Fetch(key) : nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    if (fetched == nullptr) {
      ++stats_.lookups;
      ++stats_.solution_misses;
      return nullptr;
    }
    ++stats_.lookups;
    ++stats_.warm_misses;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      // A racing promoter or inserter beat us; alias the resident copy.
      it->second.credit = CreditFor(inflation_, it->second.cost,
                                    it->second.bytes);
      it->second.touch_seq = ++seq_;
      return it->second.solution;
    }
    const size_t bytes = store::SerializedSolutionBytes(*fetched);
    if (InsertLocked(key, fetched, fetched->compute_cost_seconds, bytes)) {
      ++stats_.promotions;
    }
    return fetched;
  }

  /// Admits (key, solution) charged `bytes` against the budget, evicting
  /// until it fits; an entry larger than the whole budget is not
  /// admitted. Returns whether the entry is resident. Caller holds mu_.
  bool InsertLocked(const std::string& key,
                    std::shared_ptr<const DpcSolution> solution, double cost,
                    size_t bytes) {
    bool existed = false;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      // Re-insert: drop the old incarnation (stale labelings included)
      // and admit the new one through the same budget gate.
      existed = true;
      bytes_in_use_ -= it->second.bytes;
      index_.erase(it);
    }
    if (bytes > memory_budget_bytes_) return false;
    while (bytes_in_use_ + bytes > memory_budget_bytes_ && !index_.empty()) {
      EvictOne();
    }
    Entry entry;
    entry.solution = std::move(solution);
    entry.cost = cost;
    entry.bytes = bytes;
    entry.credit = CreditFor(inflation_, cost, bytes);
    entry.touch_seq = ++seq_;
    bytes_in_use_ += bytes;
    index_.emplace(key, std::move(entry));
    if (!existed) ++stats_.insertions;
    return true;
  }

  /// The memoized labeling for threshold_key (refreshed to most recent),
  /// or null. Caller holds mu_.
  std::shared_ptr<const DpcResult> FindLabeling(
      Entry* entry, const std::string& threshold_key) {
    for (auto it = entry->labelings.begin(); it != entry->labelings.end();
         ++it) {
      if (it->first == threshold_key) {
        entry->labelings.splice(entry->labelings.begin(), entry->labelings,
                                it);  // most recent first
        return entry->labelings.front().second;
      }
    }
    return nullptr;
  }

  /// Looks up and, on a hit, refreshes credit/recency. Stats are the
  /// caller's job (a memory miss may still be a warm one). Caller holds
  /// mu_.
  Entry* Touch(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    it->second.credit = CreditFor(inflation_, it->second.cost,
                                  it->second.bytes);
    it->second.touch_seq = ++seq_;
    return &it->second;
  }

  /// Removes the minimum-credit entry (oldest touch on ties) and raises
  /// the inflation level to its credit — the GreedyDual aging step that
  /// lets cheap-but-hot traffic eventually displace an expensive cold
  /// entry. With a store attached this is a DEMOTION: the write-through
  /// copy in the log survives, only the memory copy goes. Caller holds
  /// mu_.
  void EvictOne() {
    auto victim = index_.begin();
    for (auto it = std::next(index_.begin()); it != index_.end(); ++it) {
      const Entry& a = it->second;
      const Entry& b = victim->second;
      if (a.credit < b.credit ||
          (a.credit == b.credit && a.touch_seq < b.touch_seq)) {
        victim = it;
      }
    }
    inflation_ = victim->second.credit;
    bytes_in_use_ -= victim->second.bytes;
    index_.erase(victim);
    ++stats_.evictions;
    if (store_ != nullptr) ++stats_.demotions;
  }

  const size_t memory_budget_bytes_;
  const size_t labelings_per_solution_;
  store::SolutionStore* const store_;  ///< durable tier; unowned, may be null
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> index_;
  size_t bytes_in_use_ = 0;
  double inflation_ = 0.0;  ///< GreedyDual "L": credit of the last victim
  uint64_t seq_ = 0;
  Stats stats_;
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_SOLUTION_CACHE_H_
