// Two-tier cache for the serving layer, built around the library's
// compute/threshold split:
//
//   solution tier — DpcSolutions keyed by everything the EXPENSIVE phase
//       depends on: dataset content fingerprint, algorithm name,
//       canonicalized per-algorithm options, and ComputeParams (d_cut,
//       epsilon). Threshold knobs are deliberately NOT in the key — one
//       cached solution answers every (rho_min, delta_min).
//   label tier — per-solution memo of finalized DpcResults keyed by
//       ThresholdSpec, so repeated thresholds alias one immutable result
//       and even a fresh threshold costs only an O(n) LabelSolution pass.
//
// This is what turns the decision-graph exploration workload (many
// thresholds against few compute configurations — the paper's Figure 1
// workflow) from N recomputes into one compute plus N O(n) finalizes.
//
// Eviction is cost-scaled LRU (GreedyDual): each entry holds a credit of
// (global inflation L + its compute cost); hits refresh the credit; the
// victim is the minimum-credit entry and its credit becomes the new L.
// An expensive Ex-DPC solution therefore outlives many cheap approximate
// ones, yet ages out once enough cheaper traffic has passed — and the
// whole policy is deterministic for a fixed access sequence (ties break
// toward the least recently touched entry). Label memos ride with their
// entry and are bounded per solution (LRU within the entry).
//
// Execution policy (thread count, schedule strategy) is excluded from
// keys on both tiers: the library-wide determinism contract (labels are
// bit-identical across strategies and thread counts, enforced by
// tests/determinism_test.cc) is what makes a cached artifact valid for
// every future execution of the same configuration. Thread-safe.
#ifndef DPC_SERVE_SOLUTION_CACHE_H_
#define DPC_SERVE_SOLUTION_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dpc.h"
#include "core/options.h"

namespace dpc::serve {

/// The solution-tier key. Numeric params render with %.17g (the same
/// normalization CanonicalOptionValue applies to option values), so any
/// two requests whose compute configurations are semantically identical —
/// however they were spelled — map to one key. Pure execution-policy
/// options are excluded — "scheduler", plus the "sharding"/"shards"
/// region-shard knobs (bit-identical by contract, core/sharded_dpc.h) —
/// as are rho_min and delta_min (threshold-tier concerns).
inline std::string MakeSolutionKey(uint64_t dataset_fingerprint,
                                   const std::string& algorithm,
                                   const OptionsMap& options,
                                   const ComputeParams& compute) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%016llx|%.17g|%.17g|",
                static_cast<unsigned long long>(dataset_fingerprint),
                compute.d_cut, compute.epsilon);
  OptionsMap keyed = options;
  keyed.erase("scheduler");
  keyed.erase("sharding");
  keyed.erase("shards");
  return buf + algorithm + '|' + CanonicalOptionsString(keyed);
}

/// The label-tier key within one solution entry. The halo flag is not
/// part of it: halo derivation happens downstream of labels and never
/// changes them.
inline std::string MakeThresholdKey(const ThresholdSpec& spec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g|%.17g", spec.rho_min, spec.delta_min);
  return buf;
}

class SolutionCache {
 public:
  struct Stats {
    uint64_t solution_hits = 0;    ///< compute-tier hits (Lookup/Finalize)
    uint64_t solution_misses = 0;  ///< compute-tier misses
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t label_hits = 0;   ///< Finalize served an existing labeling
    uint64_t finalizations = 0;  ///< Finalize ran LabelSolution (O(n))
  };

  /// capacity is in solutions; 0 disables the cache (every Lookup misses,
  /// Insert is a no-op). labelings_per_solution bounds each entry's label
  /// memo (LRU within the entry) — each memoized DpcResult carries its
  /// own copies of rho/delta/dependency (the response contract), so this
  /// bound is the per-solution memory multiplier; byte-budgeted capacity
  /// is a ROADMAP follow-on.
  explicit SolutionCache(size_t capacity, size_t labelings_per_solution = 16)
      : capacity_(capacity),
        labelings_per_solution_(labelings_per_solution > 0
                                    ? labelings_per_solution
                                    : 1) {}

  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

  /// The cached solution for key, refreshing its eviction credit; null on
  /// miss. For label-bearing reads prefer Finalize (one lock, memoized).
  std::shared_ptr<const DpcSolution> Lookup(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* entry = Touch(key);
    return entry != nullptr ? entry->solution : nullptr;
  }

  /// Two-tier read: the finalized result for (key, spec), or null when
  /// the solution tier misses. A solution hit with a label-tier miss runs
  /// the O(n) finalize — never the algorithm — OUTSIDE the cache lock
  /// (a large-solution labeling must not convoy every other client on
  /// mu_), then memoizes under a double-checked re-lock so identical
  /// thresholds alias one immutable DpcResult.
  std::shared_ptr<const DpcResult> Finalize(const std::string& key,
                                            const ThresholdSpec& spec) {
    const std::string threshold_key = MakeThresholdKey(spec);
    std::shared_ptr<const DpcSolution> solution;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Entry* entry = Touch(key);
      if (entry == nullptr) return nullptr;
      if (auto memo = FindLabeling(entry, threshold_key)) {
        ++stats_.label_hits;
        return memo;
      }
      solution = entry->solution;  // keeps the artifact alive unlocked
    }
    auto result =
        std::make_shared<const DpcResult>(FinalizeSolution(*solution, spec));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.finalizations;
    const auto it = index_.find(key);
    if (it == index_.end() || it->second.solution != solution) {
      // Evicted or replaced while labeling: the result is still correct
      // for the solution we read, just not memoizable against the key.
      return result;
    }
    if (auto memo = FindLabeling(&it->second, threshold_key)) {
      // Raced with another finalizer: alias the first-memoized result so
      // repeated thresholds stay pointer-identical.
      return memo;
    }
    it->second.labelings.emplace_front(threshold_key, result);
    if (it->second.labelings.size() > labelings_per_solution_) {
      it->second.labelings.pop_back();
    }
    return result;
  }

  /// Caches the solution under key with the given eviction cost
  /// (typically DpcSolution::compute_cost_seconds), evicting the
  /// minimum-credit entry when full. Re-inserting an existing key
  /// refreshes its value, cost, and credit, and drops its stale label
  /// memo.
  void Insert(const std::string& key,
              std::shared_ptr<const DpcSolution> solution, double cost) {
    if (!enabled()) return;
    if (cost < 0.0) cost = 0.0;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      Entry& entry = it->second;
      entry.solution = std::move(solution);
      entry.cost = cost;
      entry.credit = inflation_ + cost;
      entry.touch_seq = ++seq_;
      entry.labelings.clear();
      return;
    }
    if (index_.size() >= capacity_) EvictOne();
    Entry entry;
    entry.solution = std::move(solution);
    entry.cost = cost;
    entry.credit = inflation_ + cost;
    entry.touch_seq = ++seq_;
    index_.emplace(key, std::move(entry));
    ++stats_.insertions;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    inflation_ = 0.0;
    seq_ = 0;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Keys in eviction order — the next victim first (ascending credit,
  /// ties oldest-touch first). Tests assert eviction determinism against
  /// this order.
  std::vector<std::string> KeysByEvictionOrder() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<const std::string*, const Entry*>> entries;
    entries.reserve(index_.size());
    for (const auto& [key, entry] : index_) entries.push_back({&key, &entry});
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                if (a.second->credit != b.second->credit) {
                  return a.second->credit < b.second->credit;
                }
                return a.second->touch_seq < b.second->touch_seq;
              });
    std::vector<std::string> keys;
    keys.reserve(entries.size());
    for (const auto& [key, entry] : entries) keys.push_back(*key);
    return keys;
  }

 private:
  struct Entry {
    std::shared_ptr<const DpcSolution> solution;
    double cost = 0.0;    ///< compute cost backing the credit refreshes
    double credit = 0.0;  ///< GreedyDual credit: inflation at touch + cost
    uint64_t touch_seq = 0;  ///< recency, the deterministic tie-break
    /// Label memo, most recently used first, bounded by
    /// labelings_per_solution_.
    std::list<std::pair<std::string, std::shared_ptr<const DpcResult>>>
        labelings;
  };

  /// The memoized labeling for threshold_key (refreshed to most recent),
  /// or null. Caller holds mu_.
  std::shared_ptr<const DpcResult> FindLabeling(
      Entry* entry, const std::string& threshold_key) {
    for (auto it = entry->labelings.begin(); it != entry->labelings.end();
         ++it) {
      if (it->first == threshold_key) {
        entry->labelings.splice(entry->labelings.begin(), entry->labelings,
                                it);  // most recent first
        return entry->labelings.front().second;
      }
    }
    return nullptr;
  }

  /// Looks up and, on a hit, refreshes credit/recency; counts the stats.
  /// Caller holds mu_.
  Entry* Touch(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      if (enabled()) ++stats_.solution_misses;
      return nullptr;
    }
    it->second.credit = inflation_ + it->second.cost;
    it->second.touch_seq = ++seq_;
    ++stats_.solution_hits;
    return &it->second;
  }

  /// Removes the minimum-credit entry (oldest touch on ties) and raises
  /// the inflation level to its credit — the GreedyDual aging step that
  /// lets cheap-but-hot traffic eventually displace an expensive cold
  /// entry. Caller holds mu_.
  void EvictOne() {
    auto victim = index_.begin();
    for (auto it = std::next(index_.begin()); it != index_.end(); ++it) {
      const Entry& a = it->second;
      const Entry& b = victim->second;
      if (a.credit < b.credit ||
          (a.credit == b.credit && a.touch_seq < b.touch_seq)) {
        victim = it;
      }
    }
    inflation_ = victim->second.credit;
    index_.erase(victim);
    ++stats_.evictions;
  }

  const size_t capacity_;
  const size_t labelings_per_solution_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> index_;
  double inflation_ = 0.0;  ///< GreedyDual "L": credit of the last victim
  uint64_t seq_ = 0;
  Stats stats_;
};

}  // namespace dpc::serve

#endif  // DPC_SERVE_SOLUTION_CACHE_H_
