// The store/ subsystem: versioned solution serialization (bit-exact
// roundtrip, size formula, checksum-first rejection of damage), the
// append-only log (replay, torn-tail truncation, mid-log corruption,
// header mismatch), the directory and buffer pool byte accounting,
// SolutionStore end-to-end (put/fetch/erase/reopen, damaged records
// going cold, compaction, disk-budget eviction), and the tentpole's
// acceptance test: a server restarted over the same log answers a
// re-threshold WARM — zero recomputes, bit-identical labels.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "core/registry.h"
#include "data/generators.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/solution_cache.h"
#include "store/buffer_pool.h"
#include "store/directory.h"
#include "store/solution_format.h"
#include "store/solution_log.h"
#include "store/solution_store.h"
#include "tests/test_util.h"

namespace {

std::string TmpPath(const std::string& name) {
  return "/tmp/dpc_store_test_" + std::to_string(::getpid()) + "_" + name;
}

/// A fully populated synthetic solution with every field class the
/// format persists: infinities, negative ids, a non-trivial fingerprint.
dpc::DpcSolution MakeSolution(dpc::PointId n, double salt = 0.0) {
  dpc::DpcSolution s;
  s.algorithm = "ex-dpc";
  s.points_fingerprint = 0xfeedbeefcafe0000ull + static_cast<uint64_t>(n);
  s.compute.d_cut = 2000.0 + salt;
  s.compute.epsilon = 0.125;
  s.compute_cost_seconds = 0.25 + salt;
  s.rho.resize(static_cast<size_t>(n));
  s.delta.resize(static_cast<size_t>(n));
  s.dependency.resize(static_cast<size_t>(n));
  for (dpc::PointId i = 0; i < n; ++i) {
    s.rho[static_cast<size_t>(i)] = static_cast<double>(n - i) + salt;
    s.delta[static_cast<size_t>(i)] =
        i == 0 ? std::numeric_limits<double>::infinity()
               : 1.0 / static_cast<double>(i);
    s.dependency[static_cast<size_t>(i)] = i - 1;  // 0 points at -1
  }
  s.density_order = dpc::DensityOrder(s.rho);
  return s;
}

void CheckSolutionsBitIdentical(const dpc::DpcSolution& a,
                                const dpc::DpcSolution& b) {
  CHECK(a.algorithm == b.algorithm);
  CHECK_EQ(a.points_fingerprint, b.points_fingerprint);
  CHECK_EQ(a.compute.d_cut, b.compute.d_cut);
  CHECK_EQ(a.compute.epsilon, b.compute.epsilon);
  CHECK_EQ(a.compute_cost_seconds, b.compute_cost_seconds);
  CHECK_EQ(a.interrupted(), b.interrupted());
  CHECK(a.rho == b.rho);
  // delta holds an infinity — vector== is exact on it, which is the point.
  CHECK(a.delta == b.delta);
  CHECK(a.dependency == b.dependency);
  CHECK(a.density_order == b.density_order);
}

void TestFormatRoundtrip() {
  const dpc::DpcSolution original = MakeSolution(37);
  std::string buf;
  dpc::store::EncodeSolution(original, &buf);
  // The size formula is exact — the serve cache's byte accounting charges
  // precisely what the log stores.
  CHECK_EQ(buf.size(), dpc::store::SerializedSolutionBytes(original));

  auto decoded = dpc::store::DecodeSolution(buf);
  CHECK(decoded.ok());
  CheckSolutionsBitIdentical(original, decoded.value());

  // An interrupted solve (empty density_order, flag set) round-trips too.
  dpc::DpcSolution interrupted = MakeSolution(5);
  interrupted.stats.interrupted = true;
  interrupted.density_order.clear();
  dpc::store::EncodeSolution(interrupted, &buf);
  CHECK_EQ(buf.size(), dpc::store::SerializedSolutionBytes(interrupted));
  auto decoded2 = dpc::store::DecodeSolution(buf);
  CHECK(decoded2.ok());
  CHECK(decoded2.value().interrupted());
  CHECK(decoded2.value().density_order.empty());
}

void TestFormatRejectsDamage() {
  std::string buf;
  dpc::store::EncodeSolution(MakeSolution(16), &buf);

  // Any flipped byte fails the trailing checksum — corruption is caught
  // before a single field is trusted.
  for (const size_t at : {size_t{0}, size_t{5}, buf.size() / 2}) {
    std::string bad = buf;
    bad[at] = static_cast<char>(bad[at] ^ 0x40);
    CHECK(!dpc::store::DecodeSolution(bad).ok());
  }
  // Truncation at every boundary class fails cleanly.
  for (const size_t keep : {size_t{0}, size_t{3}, size_t{40}, buf.size() - 1}) {
    CHECK(!dpc::store::DecodeSolution(buf.data(), keep).ok());
  }
  // A future format version is refused (with its checksum made valid
  // again, so the version check itself is what rejects).
  std::string future = buf.substr(0, buf.size() - sizeof(uint64_t));
  future[4] = 9;  // version u32 lives right after the 4-byte magic
  const uint64_t checksum = dpc::Fnv1aBytes(future.data(), future.size());
  future.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  const auto refused = dpc::store::DecodeSolution(future);
  CHECK(!refused.ok());
  CHECK(refused.status().message().find("version") != std::string::npos);
}

void TestLogAppendReplay() {
  const std::string path = TmpPath("replay.log");
  std::remove(path.c_str());

  std::string p1 = "payload-one";
  std::string p2(1000, 'x');
  uint64_t off1 = 0;
  uint64_t off2 = 0;
  {
    std::vector<dpc::store::LogRecord> replayed;
    auto log = dpc::store::SolutionLog::Open(path, 1, &replayed);
    CHECK(log.ok());
    CHECK(replayed.empty());
    auto a1 = log.value()->Append(dpc::store::kRecordPut, "k1", p1);
    CHECK(a1.ok());
    off1 = a1.value();
    auto a2 = log.value()->Append(dpc::store::kRecordPut, "k2", p2);
    CHECK(a2.ok());
    off2 = a2.value();
    CHECK(log.value()->Append(dpc::store::kRecordErase, "k1", "").ok());
    // The size accounting matches the static per-record formula.
    CHECK_EQ(log.value()->size_bytes(),
             dpc::store::SolutionLog::kHeaderBytes +
                 dpc::store::SolutionLog::RecordBytes(2, p1.size()) +
                 dpc::store::SolutionLog::RecordBytes(2, p2.size()) +
                 dpc::store::SolutionLog::RecordBytes(2, 0));
    // Payloads read back through the same handle.
    std::string out;
    CHECK(log.value()->ReadPayload(off1, p1.size(), &out).ok());
    CHECK(out == p1);
  }
  // Reopen: every record replays with the same offsets, types and keys.
  std::vector<dpc::store::LogRecord> replayed;
  auto log = dpc::store::SolutionLog::Open(path, 1, &replayed);
  CHECK(log.ok());
  CHECK_EQ(replayed.size(), 3u);
  CHECK_EQ(replayed[0].type, dpc::store::kRecordPut);
  CHECK(replayed[0].key == "k1");
  CHECK_EQ(replayed[0].payload_offset, off1);
  CHECK_EQ(replayed[1].payload_offset, off2);
  CHECK_EQ(replayed[2].type, dpc::store::kRecordErase);
  std::string out;
  CHECK(log.value()->ReadPayload(off2, p2.size(), &out).ok());
  CHECK(out == p2);
  std::remove(path.c_str());
}

/// Truncates `path` to `size` bytes — the torn-write simulator.
void TruncateFile(const std::string& path, long size) {
  CHECK_EQ(truncate(path.c_str(), size), 0);
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  CHECK(f != nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

void TestLogTornTail() {
  const std::string path = TmpPath("torn.log");
  std::remove(path.c_str());
  {
    std::vector<dpc::store::LogRecord> replayed;
    auto log = dpc::store::SolutionLog::Open(path, 1, &replayed);
    CHECK(log.ok());
    CHECK(log.value()->Append(dpc::store::kRecordPut, "a", "first").ok());
    CHECK(log.value()->Append(dpc::store::kRecordPut, "b", "second").ok());
    CHECK(log.value()->Append(dpc::store::kRecordPut, "c", "third").ok());
  }
  // A crash mid-append leaves a partial final record: replay keeps the
  // two complete ones and truncates the tear away.
  TruncateFile(path, FileSize(path) - 3);
  {
    std::vector<dpc::store::LogRecord> replayed;
    auto log = dpc::store::SolutionLog::Open(path, 1, &replayed);
    CHECK(log.ok());
    CHECK_EQ(replayed.size(), 2u);
    CHECK(replayed[1].key == "b");
    // The next append starts on a clean boundary and survives reopen.
    CHECK(log.value()->Append(dpc::store::kRecordPut, "d", "fourth").ok());
  }
  std::vector<dpc::store::LogRecord> replayed;
  auto log = dpc::store::SolutionLog::Open(path, 1, &replayed);
  CHECK(log.ok());
  CHECK_EQ(replayed.size(), 3u);
  CHECK(replayed[2].key == "d");
  std::remove(path.c_str());
}

void TestLogCorruptMiddle() {
  const std::string path = TmpPath("corrupt.log");
  std::remove(path.c_str());
  long second_start = 0;
  {
    std::vector<dpc::store::LogRecord> replayed;
    auto log = dpc::store::SolutionLog::Open(path, 1, &replayed);
    CHECK(log.ok());
    CHECK(log.value()->Append(dpc::store::kRecordPut, "a", "first").ok());
    second_start = static_cast<long>(log.value()->size_bytes());
    CHECK(log.value()->Append(dpc::store::kRecordPut, "b", "second").ok());
    CHECK(log.value()->Append(dpc::store::kRecordPut, "c", "third").ok());
  }
  // Flip a payload byte inside the middle record: its checksum fails, so
  // replay stops at the last valid record — the corrupt record AND
  // everything after it are dropped (order is the log's only index).
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    CHECK(f != nullptr);
    // 17-byte record head + 1-byte key "b" + 2 -> the 'c' of "second".
    std::fseek(f, second_start + 17 + 1 + 2, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  std::vector<dpc::store::LogRecord> replayed;
  auto log = dpc::store::SolutionLog::Open(path, 1, &replayed);
  CHECK(log.ok());
  CHECK_EQ(replayed.size(), 1u);
  CHECK(replayed[0].key == "a");
  CHECK_EQ(static_cast<long>(log.value()->size_bytes()), second_start);
  std::remove(path.c_str());
}

void TestLogBadHeader() {
  const std::string path = TmpPath("notalog.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    CHECK(f != nullptr);
    std::fputs("definitely not a solution log", f);
    std::fclose(f);
  }
  std::vector<dpc::store::LogRecord> replayed;
  auto log = dpc::store::SolutionLog::Open(path, 1, &replayed);
  CHECK(!log.ok());
  CHECK(log.status().code() == dpc::StatusCode::kIoError);
  // The store surfaces the same failure (the server then runs storeless).
  auto store = dpc::store::SolutionStore::Open(path);
  CHECK(!store.ok());
  std::remove(path.c_str());
}

void TestBufferPool() {
  dpc::store::BufferPool pool(100);
  auto solution = std::make_shared<const dpc::DpcSolution>(MakeSolution(4));
  CHECK(pool.Get("a") == nullptr);
  pool.Put("a", solution, 40);
  pool.Put("b", solution, 40);
  CHECK_EQ(pool.bytes_in_use(), 80u);
  CHECK(pool.Get("a") != nullptr);  // refreshes "a": "b" is now LRU
  pool.Put("c", solution, 40);      // evicts "b"
  CHECK_EQ(pool.bytes_in_use(), 80u);
  CHECK(pool.Get("b") == nullptr);
  CHECK(pool.Get("a") != nullptr);
  // Re-putting a key replaces its charge instead of double-counting.
  pool.Put("a", solution, 60);
  CHECK_EQ(pool.bytes_in_use(), 100u);
  CHECK_EQ(pool.entries(), 2u);
  // Over-budget entries are refused; the pool is unchanged.
  pool.Put("huge", solution, 101);
  CHECK(pool.Get("huge") == nullptr);
  CHECK_EQ(pool.bytes_in_use(), 100u);
  pool.Erase("a");
  CHECK_EQ(pool.bytes_in_use(), 40u);
  const auto stats = pool.stats();
  CHECK_EQ(stats.evictions, 1u);
  CHECK_EQ(stats.hits, 2u);    // the two Get("a") hits above
  CHECK_EQ(stats.misses, 3u);  // initial "a", evicted "b", refused "huge"
}

void TestDirectory() {
  dpc::store::Directory dir;
  CHECK(dir.empty());
  dir.Put("a", {100, 50, 0});
  dir.Put("b", {200, 30, 1});
  CHECK_EQ(dir.live_payload_bytes(), 80u);
  // Supersede: newer offset wins, live bytes track the delta.
  dir.Put("a", {300, 70, 2});
  CHECK_EQ(dir.live_payload_bytes(), 100u);
  CHECK_EQ(dir.Find("a")->offset, 300u);
  // Oldest = smallest put sequence, which is now "b".
  CHECK(dir.OldestKey() == "b");
  CHECK(dir.Erase("b"));
  CHECK(!dir.Erase("b"));
  CHECK_EQ(dir.live_payload_bytes(), 70u);
  CHECK_EQ(dir.size(), 1u);
}

void TestStoreRoundtripAndReopen() {
  const std::string path = TmpPath("store.log");
  std::remove(path.c_str());
  const dpc::DpcSolution s1 = MakeSolution(64, 1.0);
  const dpc::DpcSolution s2 = MakeSolution(32, 2.0);
  {
    auto store = dpc::store::SolutionStore::Open(path);
    CHECK(store.ok());
    CHECK(store.value()->Put("k1", s1).ok());
    CHECK(store.value()->Put("k2", s2).ok());
    CHECK(store.value()->Contains("k1"));
    CHECK(!store.value()->Contains("nope"));

    const auto fetched = store.value()->Fetch("k1");
    CHECK(fetched != nullptr);
    CheckSolutionsBitIdentical(s1, *fetched);
    // The second fetch is a pool hit — no disk read, same pointer.
    const auto again = store.value()->Fetch("k1");
    CHECK(again.get() == fetched.get());
    const auto stats = store.value()->stats();
    CHECK_EQ(stats.log_reads, 1u);
    CHECK_EQ(stats.pool_hits, 1u);
    CHECK_EQ(stats.live_solutions, 2u);

    CHECK(store.value()->Erase("k2").ok());
    CHECK(store.value()->Fetch("k2") == nullptr);
  }
  // Reopen: the directory rebuilds from replay; the erased key stays
  // gone (its tombstone replays too) and k1 is still bit-identical.
  auto store = dpc::store::SolutionStore::Open(path);
  CHECK(store.ok());
  CHECK_EQ(store.value()->stats().live_solutions, 1u);
  CHECK(!store.value()->Contains("k2"));
  const auto fetched = store.value()->Fetch("k1");
  CHECK(fetched != nullptr);
  CheckSolutionsBitIdentical(s1, *fetched);
  std::remove(path.c_str());
}

void TestStoreDamagedPayloadGoesCold() {
  const std::string path = TmpPath("damaged.log");
  std::remove(path.c_str());
  {
    auto store = dpc::store::SolutionStore::Open(path);
    CHECK(store.ok());
    CHECK(store.value()->Put("good", MakeSolution(16)).ok());
  }
  // Splice in a record whose LOG framing is valid but whose payload is a
  // future solution-format version — exactly what a downgrade after an
  // upgrade would leave behind.
  {
    std::string payload;
    dpc::store::EncodeSolution(MakeSolution(8), &payload);
    payload[4] = 9;  // bump the version field...
    const uint64_t checksum =  // ...and re-seal the payload checksum
        dpc::Fnv1aBytes(payload.data(), payload.size() - sizeof(uint64_t));
    payload.replace(payload.size() - sizeof(uint64_t), sizeof(uint64_t),
                    reinterpret_cast<const char*>(&checksum),
                    sizeof(checksum));
    std::vector<dpc::store::LogRecord> replayed;
    auto log = dpc::store::SolutionLog::Open(path, 1, &replayed);
    CHECK(log.ok());
    CHECK(log.value()->Append(dpc::store::kRecordPut, "vnext", payload).ok());
  }
  auto store = dpc::store::SolutionStore::Open(path);
  CHECK(store.ok());
  CHECK_EQ(store.value()->stats().live_solutions, 2u);
  // The undecodable key returns null — never crashes — and goes cold (a
  // second fetch doesn't even try the log again); the good key is
  // untouched.
  CHECK(store.value()->Fetch("vnext") == nullptr);
  CHECK_EQ(store.value()->stats().decode_failures, 1u);
  CHECK(!store.value()->Contains("vnext"));
  CHECK(store.value()->Fetch("vnext") == nullptr);
  CHECK_EQ(store.value()->stats().decode_failures, 1u);
  CHECK(store.value()->Fetch("good") != nullptr);
  std::remove(path.c_str());
}

void TestStoreCompaction() {
  const std::string path = TmpPath("compact.log");
  std::remove(path.c_str());
  auto store = dpc::store::SolutionStore::Open(path);
  CHECK(store.ok());
  const dpc::DpcSolution v1 = MakeSolution(64, 1.0);
  const dpc::DpcSolution v2 = MakeSolution(64, 2.0);
  CHECK(store.value()->Put("k1", v1).ok());
  CHECK(store.value()->Put("k1", v2).ok());  // supersedes v1
  CHECK(store.value()->Put("dead", MakeSolution(48)).ok());
  CHECK(store.value()->Erase("dead").ok());
  const uint64_t before = store.value()->stats().log_bytes;

  // Compaction drops the superseded v1, the tombstoned payload, and the
  // tombstone itself: the file shrinks to exactly the live set.
  CHECK(store.value()->Compact().ok());
  const auto stats = store.value()->stats();
  CHECK(stats.log_bytes < before);
  CHECK_EQ(stats.log_bytes,
           dpc::store::SolutionLog::kHeaderBytes +
               dpc::store::SolutionLog::RecordBytes(
                   2, dpc::store::SerializedSolutionBytes(v2)));
  CHECK_EQ(stats.compactions, 1u);
  CHECK_EQ(stats.live_solutions, 1u);
  // The survivor is the NEWEST version, still bit-identical.
  const auto fetched = store.value()->Fetch("k1");
  CHECK(fetched != nullptr);
  CheckSolutionsBitIdentical(v2, *fetched);
  // And the compacted file replays cleanly.
  store = dpc::store::SolutionStore::Open(path);
  CHECK(store.ok());
  const auto reread = store.value()->Fetch("k1");
  CHECK(reread != nullptr);
  CheckSolutionsBitIdentical(v2, *reread);
  std::remove(path.c_str());
}

void TestStoreDiskBudget() {
  const std::string path = TmpPath("budget.log");
  std::remove(path.c_str());
  const dpc::DpcSolution sample = MakeSolution(64);
  const uint64_t record =
      dpc::store::SolutionLog::RecordBytes(
          2, dpc::store::SerializedSolutionBytes(sample));
  dpc::store::SolutionStoreOptions options;
  // Room for three live records; the budget bounds the file at every
  // enforcement point, evicting oldest puts first.
  options.disk_budget_bytes =
      dpc::store::SolutionLog::kHeaderBytes + 3 * record + record / 2;
  auto store = dpc::store::SolutionStore::Open(path, options);
  CHECK(store.ok());
  for (int i = 0; i < 8; ++i) {
    CHECK(store.value()
              ->Put("k" + std::to_string(i), MakeSolution(64, i))
              .ok());
    CHECK(store.value()->stats().log_bytes <= options.disk_budget_bytes);
  }
  const auto stats = store.value()->stats();
  CHECK_EQ(stats.live_solutions, 3u);
  CHECK(stats.budget_evictions >= 5u);
  CHECK(stats.compactions >= 1u);
  // The newest keys survive, the oldest are gone.
  CHECK(store.value()->Contains("k7"));
  CHECK(store.value()->Contains("k5"));
  CHECK(!store.value()->Contains("k0"));
  std::remove(path.c_str());
}

/// The tentpole's acceptance test, in-process: server A computes against
/// a store-backed cache and dies; server B over the same log answers a
/// re-threshold request WARM — zero algorithm executions, at least one
/// promotion, labels bit-identical to what A served.
void TestServerRestartWarm() {
  const std::string path = TmpPath("restart.log");
  std::remove(path.c_str());
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 700;
  gen.num_clusters = 3;
  gen.seed = 17;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);

  dpc::DpcParams params;
  params.d_cut = 2000.0;
  params.rho_min = 2.0;
  params.delta_min = 8000.0;

  dpc::serve::ClusterRequest request;
  request.dataset = "pts";
  request.algorithm = "ex-dpc";
  request.params = params;

  dpc::serve::ClusterRequest rethreshold = request;
  rethreshold.kind = dpc::serve::RequestKind::kRethreshold;
  rethreshold.params.rho_min = 4.0;
  rethreshold.params.delta_min = 6000.0;

  std::vector<int64_t> labels_before;
  {
    dpc::serve::ServerOptions options;
    options.pool_threads = 2;
    options.store_path = path;
    dpc::serve::ClusterServer a(options);
    a.datasets().Register("pts", points);
    CHECK(a.Submit(request).get().status.ok());
    const auto r = a.Submit(rethreshold).get();
    CHECK(r.status.ok());
    labels_before = r.result->label;
    CHECK_EQ(a.stats().recomputes, 1u);
  }  // server A is gone; only the log remains

  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  options.store_path = path;
  dpc::serve::ClusterServer b(options);
  b.datasets().Register("pts", points);
  const auto warm = b.Submit(rethreshold).get();
  CHECK(warm.status.ok());
  CHECK(warm.cache_hit);
  const auto stats = b.stats();
  CHECK_EQ(stats.recomputes, 0u);  // promoted, never recomputed
  CHECK(stats.warm_misses >= 1u);
  CHECK(stats.promotions >= 1u);
  CHECK(dpc::test::BitIdenticalLabels(warm.result->label, labels_before));
  // A full cluster request at yet another threshold is also finalize-only.
  dpc::serve::ClusterRequest cluster = request;
  cluster.params.rho_min = 3.0;
  const auto c = b.Submit(cluster).get();
  CHECK(c.status.ok());
  CHECK(c.cache_hit);
  CHECK_EQ(b.stats().recomputes, 0u);
  std::remove(path.c_str());
}

}  // namespace

int main() {
  TestFormatRoundtrip();
  TestFormatRejectsDamage();
  TestLogAppendReplay();
  TestLogTornTail();
  TestLogCorruptMiddle();
  TestLogBadHeader();
  TestBufferPool();
  TestDirectory();
  TestStoreRoundtripAndReopen();
  TestStoreDamagedPayloadGoesCold();
  TestStoreCompaction();
  TestStoreDiskBudget();
  TestServerRestartWarm();
  std::printf("store_test OK\n");
  return 0;
}
