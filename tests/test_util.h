// Assertion macros for the dependency-free ctest units, plus the shared
// bit-identity helpers (dpc::test) that every determinism-style test
// compares results with. A failed CHECK prints the expression and
// location and exits non-zero, which ctest reports as the test failure.
#ifndef DPC_TESTS_TEST_UTIL_H_
#define DPC_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/dpc.h"

#define CHECK(cond)                                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                   \
      std::exit(1);                                                          \
    }                                                                        \
  } while (0)

#define CHECK_EQ(a, b)                                                        \
  do {                                                                        \
    const auto va = (a);                                                      \
    const auto vb = (b);                                                      \
    if (!(va == vb)) {                                                        \
      std::fprintf(stderr,                                                    \
                   "CHECK_EQ failed at %s:%d: %s == %s (%.17g vs %.17g)\n",   \
                   __FILE__, __LINE__, #a, #b, static_cast<double>(va),       \
                   static_cast<double>(vb));                                  \
      std::exit(1);                                                           \
    }                                                                         \
  } while (0)

#define CHECK_NEAR(a, b, tol)                                                 \
  do {                                                                        \
    const double va = (a);                                                    \
    const double vb = (b);                                                    \
    if (!(std::fabs(va - vb) <= (tol))) {                                     \
      std::fprintf(stderr,                                                    \
                   "CHECK_NEAR failed at %s:%d: |%s - %s| = %.17g > %.17g\n", \
                   __FILE__, __LINE__, #a, #b, std::fabs(va - vb),            \
                   static_cast<double>(tol));                                 \
      std::exit(1);                                                           \
    }                                                                         \
  } while (0)

namespace dpc::test {

/// Exact (bitwise) label equality — the form every determinism assertion
/// in this suite means by "identical".
inline bool BitIdenticalLabels(const std::vector<int64_t>& a,
                               const std::vector<int64_t>& b) {
  return a == b;
}

inline bool BitIdenticalLabels(const DpcResult& a, const DpcResult& b) {
  return BitIdenticalLabels(a.label, b.label);
}

/// Asserts two results are bit-identical in every field the library's
/// determinism contract covers: labels, densities, dependent distances,
/// dependency pointers, and centers. Exact double comparison is the
/// point — "close" is a bug here.
inline void AssertSolutionsEqual(const DpcResult& a, const DpcResult& b) {
  CHECK(a.label == b.label);
  CHECK(a.rho == b.rho);
  CHECK(a.delta == b.delta);
  CHECK(a.dependency == b.dependency);
  CHECK(a.centers == b.centers);
}

}  // namespace dpc::test

#endif  // DPC_TESTS_TEST_UTIL_H_
