// Assertion macros for the dependency-free ctest units. A failed CHECK
// prints the expression and location and exits non-zero, which ctest
// reports as the test failure.
#ifndef DPC_TESTS_TEST_UTIL_H_
#define DPC_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>

#define CHECK(cond)                                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                   \
      std::exit(1);                                                          \
    }                                                                        \
  } while (0)

#define CHECK_EQ(a, b)                                                        \
  do {                                                                        \
    const auto va = (a);                                                      \
    const auto vb = (b);                                                      \
    if (!(va == vb)) {                                                        \
      std::fprintf(stderr,                                                    \
                   "CHECK_EQ failed at %s:%d: %s == %s (%.17g vs %.17g)\n",   \
                   __FILE__, __LINE__, #a, #b, static_cast<double>(va),       \
                   static_cast<double>(vb));                                  \
      std::exit(1);                                                           \
    }                                                                         \
  } while (0)

#define CHECK_NEAR(a, b, tol)                                                 \
  do {                                                                        \
    const double va = (a);                                                    \
    const double vb = (b);                                                    \
    if (!(std::fabs(va - vb) <= (tol))) {                                     \
      std::fprintf(stderr,                                                    \
                   "CHECK_NEAR failed at %s:%d: |%s - %s| = %.17g > %.17g\n", \
                   __FILE__, __LINE__, #a, #b, std::fabs(va - vb),            \
                   static_cast<double>(tol));                                 \
      std::exit(1);                                                           \
    }                                                                         \
  } while (0)

#endif  // DPC_TESTS_TEST_UTIL_H_
