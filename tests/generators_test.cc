// data/generators.h contract: cardinality, dimensionality, domain bounds,
// noise-rate bounds, ground-truth consistency, seed (in)equality, and the
// real-like stand-ins clustering non-degenerately at their papers'
// default d_cut.
#include <cstdio>
#include <vector>

#include "core/approx_dpc.h"
#include "data/generators.h"
#include "data/real_like.h"
#include "tests/test_util.h"

namespace {

void CheckInDomain(const dpc::PointSet& points, double domain) {
  for (dpc::PointId i = 0; i < points.size(); ++i) {
    for (int d = 0; d < points.dim(); ++d) {
      CHECK(points.Coord(i, d) >= 0.0);
      CHECK(points.Coord(i, d) <= domain);
    }
  }
}

}  // namespace

int main() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 5000;
  gen.num_clusters = 7;
  gen.dim = 3;
  gen.domain = 5e4;
  gen.overlap = 0.02;
  gen.noise_rate = 0.1;
  gen.seed = 1234;

  std::vector<int64_t> truth;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen, &truth);
  CHECK_EQ(points.size(), gen.num_points);
  CHECK_EQ(points.dim(), gen.dim);
  CHECK_EQ(static_cast<dpc::PointId>(truth.size()), gen.num_points);
  CheckInDomain(points, gen.domain);

  // Truth labels are component ids in [0, k) or kNoise, and the realized
  // noise fraction is within 4 sigma of the requested Bernoulli rate.
  int64_t noise = 0;
  for (const int64_t t : truth) {
    CHECK(t == dpc::kNoise || (t >= 0 && t < gen.num_clusters));
    if (t == dpc::kNoise) ++noise;
  }
  const double rate = static_cast<double>(noise) / static_cast<double>(gen.num_points);
  CHECK_NEAR(rate, gen.noise_rate, 4.0 * 0.3 / std::sqrt(5000.0) + 0.01);

  // Same seed reproduces; a different seed must differ.
  CHECK(points.raw() == dpc::data::GaussianBenchmark(gen).raw());
  gen.seed = 1235;
  CHECK(points.raw() != dpc::data::GaussianBenchmark(gen).raw());

  // Random walk: bounds, size, determinism.
  dpc::data::RandomWalkParams walk;
  walk.num_points = 20000;
  walk.noise_rate = 0.05;
  walk.seed = 9;
  const dpc::PointSet syn = dpc::data::RandomWalk(walk);
  CHECK_EQ(syn.size(), walk.num_points);
  CHECK_EQ(syn.dim(), walk.dim);
  CheckInDomain(syn, walk.domain);
  CHECK(syn.raw() == dpc::data::RandomWalk(walk).raw());

  // Real-like stand-ins: four specs, deterministic, spec-shaped.
  CHECK_EQ(static_cast<int>(dpc::data::RealDatasetSpecs().size()), 4);
  const auto& sensor = dpc::data::RealDatasetSpecByName("Sensor");
  CHECK_EQ(sensor.dim, 8);
  const dpc::PointSet feed = dpc::data::MakeRealLike(sensor, 3000);
  CHECK_EQ(feed.size(), 3000);
  CHECK_EQ(feed.dim(), 8);
  CHECK(feed.raw() == dpc::data::MakeRealLike(sensor, 3000).raw());

  // The Sensor-like stand-in must cluster NON-degenerately at the
  // paper's default d_cut (5000): enough within-d_cut neighbors that a
  // modest rho_min keeps most points, and several of the 20 planted
  // modes recovered. (This regressed to "everything is noise" before the
  // spread was rescaled for chi^2_dim concentration — see real_like.h.)
  {
    dpc::DpcParams params;
    params.d_cut = sensor.default_d_cut;
    params.rho_min = 4.0;
    params.delta_min = 5.0 * sensor.default_d_cut;
    dpc::ApproxDpc algo;
    const dpc::DpcResult result = algo.Run(feed, params);
    CHECK(result.num_clusters() >= 4);
    CHECK(result.num_clusters() <= 40);
    int64_t noise = 0;
    for (dpc::PointId i = 0; i < feed.size(); ++i) {
      if (result.is_noise(i)) ++noise;
    }
    CHECK(noise < feed.size() / 2);
  }

  // Bernoulli subsampling is deterministic and approximately sized.
  const dpc::PointSet half = points.Sample(0.5, 77);
  CHECK(half.size() > 2000 && half.size() < 3000);
  CHECK(half.raw() == points.Sample(0.5, 77).raw());

  std::printf("generators_test OK\n");
  return 0;
}
