// Determinism guarantees: identical results across repeated runs, across
// thread counts, AND across schedule strategies (the parallel phases only
// write disjoint per-point slots; ties are broken by id, never by arrival
// order — so static chunks, dynamic claiming, and LPT bins all land on
// the same bits).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cfsfdp_a.h"
#include "baselines/lsh_ddp.h"
#include "core/approx_dpc.h"
#include "core/ex_dpc.h"
#include "core/kernels.h"
#include "core/registry.h"
#include "core/s_approx_dpc.h"
#include "data/generators.h"
#include "parallel/thread_pool.h"
#include "tests/test_util.h"

int main() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 8000;
  gen.num_clusters = 6;
  gen.noise_rate = 0.02;
  gen.seed = 99;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);

  // Same seed => bit-identical dataset.
  const dpc::PointSet again = dpc::data::GaussianBenchmark(gen);
  CHECK(points.raw() == again.raw());

  dpc::DpcParams params;
  params.d_cut = 1500.0;
  params.rho_min = 5.0;
  params.delta_min = 8000.0;

  for (const bool approx : {false, true}) {
    dpc::ExDpc exact_algo;
    dpc::ApproxDpc approx_algo;
    dpc::DpcAlgorithm& algo =
        approx ? static_cast<dpc::DpcAlgorithm&>(approx_algo)
               : static_cast<dpc::DpcAlgorithm&>(exact_algo);

    params.num_threads = 1;
    const dpc::DpcResult serial = algo.Run(points, params);
    const dpc::DpcResult serial2 = algo.Run(points, params);
    dpc::test::AssertSolutionsEqual(serial, serial2);

    params.num_threads = 4;
    const dpc::DpcResult parallel = algo.Run(points, params);
    dpc::test::AssertSolutionsEqual(serial, parallel);

    CHECK(serial.num_clusters() > 0);
  }

  // The sampled algorithms draw their randomness from seeded hashes
  // (LSH projection directions, S-Approx-DPC's candidate coins), never
  // from thread scheduling — labels stay bit-identical across 1/2/8
  // workers.
  {
    dpc::LshDdp lsh_ddp;
    dpc::SApproxDpc s_approx;
    dpc::CfsfdpA cfsfdp_a;
    dpc::DpcParams p = params;
    p.epsilon = 0.5;
    for (dpc::DpcAlgorithm* algo :
         {static_cast<dpc::DpcAlgorithm*>(&lsh_ddp),
          static_cast<dpc::DpcAlgorithm*>(&s_approx),
          static_cast<dpc::DpcAlgorithm*>(&cfsfdp_a)}) {
      p.num_threads = 1;
      const dpc::DpcResult serial = algo->Run(points, p);
      for (const int threads : {2, 8}) {
        p.num_threads = threads;
        dpc::test::AssertSolutionsEqual(serial, algo->Run(points, p));
      }
      CHECK(serial.num_clusters() > 0);
    }
  }

  // API v2 sweep: every registered algorithm under
  // {static, dynamic, LPT} x {1, 2, 8} threads, all through ONE shared
  // ThreadPool — labels must be bit-identical to the 1-thread static
  // baseline. (A smaller input keeps the quadratic baselines affordable
  // while still exceeding the parallel-region threshold.)
  {
    dpc::data::GaussianBenchmarkParams small = gen;
    small.num_points = 3000;
    small.seed = 123;
    const dpc::PointSet pts = dpc::data::GaussianBenchmark(small);
    dpc::DpcParams p = params;
    p.num_threads = 0;
    p.epsilon = 0.5;

    auto pool = std::make_shared<dpc::ThreadPool>(8);
    for (const std::string& name : dpc::RegisteredAlgorithmNames()) {
      auto algo = dpc::MakeAlgorithmByName(name);
      CHECK(algo.ok());
      const dpc::ExecutionContext base(1, dpc::ScheduleStrategy::kStatic, pool);
      const dpc::DpcResult baseline = algo.value()->Run(pts, p, base);
      CHECK(baseline.num_clusters() > 0);
      for (const auto strategy :
           {dpc::ScheduleStrategy::kStatic, dpc::ScheduleStrategy::kDynamic,
            dpc::ScheduleStrategy::kCostGuided}) {
        for (const int threads : {1, 2, 8}) {
          const dpc::ExecutionContext ctx(threads, strategy, pool);
          dpc::test::AssertSolutionsEqual(baseline, algo.value()->Run(pts, p, ctx));
        }
      }
      std::printf("%-12s identical across strategies x threads\n", name.c_str());
    }
  }

  // SoA cell reordering is a memory-layout choice, never a semantic one:
  // every registered algorithm must produce bit-identical labels with the
  // cell-ordered hot-path views disabled (core/kernels.h).
  {
    dpc::data::GaussianBenchmarkParams small = gen;
    small.num_points = 3000;
    small.seed = 123;
    const dpc::PointSet pts = dpc::data::GaussianBenchmark(small);
    dpc::DpcParams p = params;
    p.num_threads = 2;
    p.epsilon = 0.5;

    CHECK(dpc::kernels::SoaCellReorderEnabled());  // default on
    for (const std::string& name : dpc::RegisteredAlgorithmNames()) {
      auto algo = dpc::MakeAlgorithmByName(name);
      CHECK(algo.ok());
      dpc::kernels::SetSoaCellReorder(true);
      const dpc::DpcResult reordered = algo.value()->Run(pts, p);
      dpc::kernels::SetSoaCellReorder(false);
      const dpc::DpcResult flat = algo.value()->Run(pts, p);
      dpc::kernels::SetSoaCellReorder(true);
      dpc::test::AssertSolutionsEqual(reordered, flat);
      std::printf("%-12s identical with cell reordering on/off\n", name.c_str());
    }
  }

  std::printf("determinism_test OK\n");
  return 0;
}
