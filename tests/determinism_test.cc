// Determinism guarantees: identical results across repeated runs AND
// across thread counts (the parallel phases only write disjoint per-point
// slots; ties are broken by id, never by arrival order).
#include <cstdio>
#include <vector>

#include "baselines/cfsfdp_a.h"
#include "baselines/lsh_ddp.h"
#include "core/approx_dpc.h"
#include "core/ex_dpc.h"
#include "core/s_approx_dpc.h"
#include "data/generators.h"
#include "tests/test_util.h"

namespace {

void CheckSameResult(const dpc::DpcResult& a, const dpc::DpcResult& b) {
  CHECK(a.label == b.label);
  CHECK(a.rho == b.rho);
  CHECK(a.delta == b.delta);
  CHECK(a.dependency == b.dependency);
  CHECK(a.centers == b.centers);
}

}  // namespace

int main() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 8000;
  gen.num_clusters = 6;
  gen.noise_rate = 0.02;
  gen.seed = 99;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);

  // Same seed => bit-identical dataset.
  const dpc::PointSet again = dpc::data::GaussianBenchmark(gen);
  CHECK(points.raw() == again.raw());

  dpc::DpcParams params;
  params.d_cut = 1500.0;
  params.rho_min = 5.0;
  params.delta_min = 8000.0;

  for (const bool approx : {false, true}) {
    dpc::ExDpc exact_algo;
    dpc::ApproxDpc approx_algo;
    dpc::DpcAlgorithm& algo =
        approx ? static_cast<dpc::DpcAlgorithm&>(approx_algo)
               : static_cast<dpc::DpcAlgorithm&>(exact_algo);

    params.num_threads = 1;
    const dpc::DpcResult serial = algo.Run(points, params);
    const dpc::DpcResult serial2 = algo.Run(points, params);
    CheckSameResult(serial, serial2);

    params.num_threads = 4;
    const dpc::DpcResult parallel = algo.Run(points, params);
    CheckSameResult(serial, parallel);

    CHECK(serial.num_clusters() > 0);
  }

  // The sampled algorithms draw their randomness from seeded hashes
  // (LSH projection directions, S-Approx-DPC's candidate coins), never
  // from thread scheduling — labels stay bit-identical across 1/2/8
  // workers.
  {
    dpc::LshDdp lsh_ddp;
    dpc::SApproxDpc s_approx;
    dpc::CfsfdpA cfsfdp_a;
    dpc::DpcParams p = params;
    p.epsilon = 0.5;
    for (dpc::DpcAlgorithm* algo :
         {static_cast<dpc::DpcAlgorithm*>(&lsh_ddp),
          static_cast<dpc::DpcAlgorithm*>(&s_approx),
          static_cast<dpc::DpcAlgorithm*>(&cfsfdp_a)}) {
      p.num_threads = 1;
      const dpc::DpcResult serial = algo->Run(points, p);
      for (const int threads : {2, 8}) {
        p.num_threads = threads;
        CheckSameResult(serial, algo->Run(points, p));
      }
      CHECK(serial.num_clusters() > 0);
    }
  }

  std::printf("determinism_test OK\n");
  return 0;
}
