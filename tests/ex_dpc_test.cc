// Ex-DPC correctness: rho/delta/dependency match an O(n^2) brute-force
// reference on a small input, and the algorithm recovers k planted,
// well-separated Gaussian clusters on a larger one.
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "core/ex_dpc.h"
#include "data/generators.h"
#include "eval/cluster_stats.h"
#include "eval/rand_index.h"
#include "tests/test_util.h"

namespace {

void TestAgainstBruteForce() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 400;
  gen.num_clusters = 3;
  gen.dim = 2;
  gen.overlap = 0.03;
  gen.noise_rate = 0.05;
  gen.seed = 11;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);
  const int dim = points.dim();
  const dpc::PointId n = points.size();

  dpc::DpcParams params;
  params.d_cut = 4000.0;
  params.rho_min = 2.0;
  params.delta_min = 20000.0;
  params.num_threads = 2;

  dpc::ExDpc algo;
  const dpc::DpcResult result = algo.Run(points, params);
  CHECK_EQ(static_cast<dpc::PointId>(result.label.size()), n);

  for (dpc::PointId i = 0; i < n; ++i) {
    dpc::PointId rho = 0;
    for (dpc::PointId j = 0; j < n; ++j) {
      if (j != i &&
          dpc::Distance(points[i], points[j], dim) <= params.d_cut) {
        ++rho;
      }
    }
    CHECK_EQ(result.rho[static_cast<size_t>(i)], static_cast<double>(rho));
  }
  for (dpc::PointId i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    dpc::PointId best_id = -1;
    for (dpc::PointId j = 0; j < n; ++j) {
      if (!dpc::DenserThan(result.rho[static_cast<size_t>(j)], j,
                           result.rho[static_cast<size_t>(i)], i)) {
        continue;
      }
      const double d = dpc::Distance(points[i], points[j], dim);
      if (d < best) {
        best = d;
        best_id = j;
      }
    }
    CHECK_EQ(result.dependency[static_cast<size_t>(i)], best_id);
    if (best_id >= 0) {
      CHECK_NEAR(result.delta[static_cast<size_t>(i)], best, 1e-9 * (1.0 + best));
    } else {
      CHECK(std::isinf(result.delta[static_cast<size_t>(i)]));
    }
  }
}

void TestRecoversPlantedClusters() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 6000;
  gen.num_clusters = 5;
  gen.dim = 2;
  gen.overlap = 0.015;
  gen.noise_rate = 0.01;
  gen.seed = 42;
  std::vector<int64_t> truth;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen, &truth);

  dpc::DpcParams params;
  params.d_cut = 1500.0;
  params.rho_min = 5.0;
  params.delta_min = 9000.0;
  params.num_threads = 0;
  CHECK(params.Validate().ok());

  dpc::ExDpc algo;
  const dpc::DpcResult result = algo.Run(points, params);

  CHECK_EQ(result.num_clusters(), 5);
  const auto summary = dpc::eval::Summarize(result);
  CHECK_EQ(summary.num_points, 6000);
  CHECK(summary.num_noise < 600);
  CHECK(summary.largest_cluster > 600);
  CHECK(dpc::eval::AdjustedRandIndex(result.label, truth) > 0.95);
  CHECK(result.stats.total_seconds >= 0.0);
  CHECK(result.stats.index_memory_bytes > 0);
}

}  // namespace

int main() {
  TestAgainstBruteForce();
  TestRecoversPlantedClusters();
  std::printf("ex_dpc_test OK\n");
  return 0;
}
