// data/io.h round-trips (CSV and binary) and eval/ metric sanity
// (Rand index, ARI, cluster summaries).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/dpc.h"
#include "data/generators.h"
#include "data/io.h"
#include "eval/cluster_stats.h"
#include "eval/rand_index.h"
#include "tests/test_util.h"

namespace {

void TestIoRoundTrip() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 500;
  gen.dim = 3;
  gen.seed = 8;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);

  const std::string csv = "io_eval_test.csv";
  const std::string bin = "io_eval_test.bin";
  CHECK(dpc::data::SaveCsv(points, csv).ok());
  CHECK(dpc::data::SaveBinary(points, bin).ok());

  auto from_csv = dpc::data::LoadCsv(csv);
  CHECK(from_csv.ok());
  CHECK_EQ(from_csv.value().size(), points.size());
  CHECK_EQ(from_csv.value().dim(), points.dim());
  for (dpc::PointId i = 0; i < points.size(); ++i) {
    for (int d = 0; d < points.dim(); ++d) {
      // %.17g round-trips doubles exactly.
      CHECK_EQ(from_csv.value().Coord(i, d), points.Coord(i, d));
    }
  }

  auto from_bin = dpc::data::LoadBinary(bin);
  CHECK(from_bin.ok());
  CHECK(from_bin.value().raw() == points.raw());

  // Labeled CSV: one row per point, trailing label column.
  std::vector<int64_t> label(static_cast<size_t>(points.size()), 0);
  label[0] = dpc::kNoise;
  CHECK(dpc::data::SaveLabeledCsv(points, label, csv).ok());
  auto labeled = dpc::data::LoadCsv(csv);
  CHECK(labeled.ok());
  CHECK_EQ(labeled.value().dim(), points.dim() + 1);
  CHECK_EQ(static_cast<int64_t>(labeled.value().Coord(0, points.dim())),
           dpc::kNoise);

  CHECK(!dpc::data::LoadCsv("does_not_exist.csv").ok());
  std::remove(csv.c_str());
  std::remove(bin.c_str());
}

// A leading header (or preamble) row is skipped; dimensionality is
// inferred from the first data row; later non-numeric rows still fail.
void TestCsvHeader() {
  const std::string path = "io_eval_header_test.csv";

  auto write = [&](const char* contents) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    CHECK(f != nullptr);
    std::fputs(contents, f);
    std::fclose(f);
  };

  write("x,y\n1,2\n3,4\n");
  auto with_header = dpc::data::LoadCsv(path);
  CHECK(with_header.ok());
  CHECK_EQ(with_header.value().size(), 2);
  CHECK_EQ(with_header.value().dim(), 2);
  CHECK_EQ(with_header.value().Coord(0, 0), 1.0);
  CHECK_EQ(with_header.value().Coord(1, 1), 4.0);

  // Headerless files load identically (the header skip must not consume
  // a data row).
  write("1,2\n3,4\n");
  auto headerless = dpc::data::LoadCsv(path);
  CHECK(headerless.ok());
  CHECK(headerless.value().raw() == with_header.value().raw());

  // Column names with numeric prefixes (strtod half-eats "nan..." and
  // "2d...") are still recognized as a header.
  write("nanoseconds,count\n1,2\n3,4\n");
  auto nan_header = dpc::data::LoadCsv(path);
  CHECK(nan_header.ok());
  CHECK(nan_header.value().raw() == with_header.value().raw());
  write("2d_x,2d_y\n1,2\n3,4\n");
  CHECK(dpc::data::LoadCsv(path).ok());

  // A header alone has no points; garbage after data is still an error,
  // and so are non-finite coordinates.
  write("x,y\n");
  CHECK(!dpc::data::LoadCsv(path).ok());
  write("1,2\nnot,numbers\n");
  CHECK(!dpc::data::LoadCsv(path).ok());
  write("1,2\nnan,4\n");
  CHECK(!dpc::data::LoadCsv(path).ok());
  write("1,2\ninf,4\n");
  CHECK(!dpc::data::LoadCsv(path).ok());

  // Only ONE leading row may be skipped: a second unparsable row is an
  // error, never silent data loss.
  write("x,y\nalso,bad\n1,2\n");
  CHECK(!dpc::data::LoadCsv(path).ok());
  write("1x,2\nnot,num\n1,2\n");
  CHECK(!dpc::data::LoadCsv(path).ok());

  std::remove(path.c_str());
}

void TestMetrics() {
  const std::vector<int64_t> a = {0, 0, 0, 1, 1, 1, 2, 2, -1};
  // Identical partitions (under relabeling) score 1.0 on both metrics.
  const std::vector<int64_t> relabeled = {5, 5, 5, 3, 3, 3, 7, 7, 9};
  CHECK_NEAR(dpc::eval::RandIndex(a, relabeled), 1.0, 1e-12);
  CHECK_NEAR(dpc::eval::AdjustedRandIndex(a, relabeled), 1.0, 1e-12);

  // Known hand-computed case: merge clusters 1 and 2 of `a`.
  const std::vector<int64_t> merged = {0, 0, 0, 1, 1, 1, 1, 1, -1};
  // Disagreeing pairs: the 6 (cluster-1 x cluster-2) pairs; total C(9,2)=36.
  CHECK_NEAR(dpc::eval::RandIndex(a, merged), 30.0 / 36.0, 1e-12);
  CHECK(dpc::eval::AdjustedRandIndex(a, merged) < 1.0);
  CHECK(dpc::eval::AdjustedRandIndex(a, merged) > 0.0);

  // Chance-level agreement: ARI near 0, far below Rand.
  const std::vector<int64_t> left = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int64_t> across = {0, 1, 0, 1, 0, 1, 0, 1};
  CHECK(std::fabs(dpc::eval::AdjustedRandIndex(left, across)) < 0.2);

  dpc::DpcResult result;
  result.label = {0, 0, 1, 1, 1, dpc::kNoise, dpc::kUnassigned};
  result.centers = {0, 2};
  const auto summary = dpc::eval::Summarize(result);
  CHECK_EQ(summary.num_points, 7);
  CHECK_EQ(summary.num_clusters, 2);
  CHECK_EQ(summary.num_noise, 1);
  CHECK_EQ(summary.num_unassigned, 1);
  CHECK_EQ(summary.largest_cluster, 3);
  CHECK(!dpc::eval::ToString(summary).empty());
}

}  // namespace

int main() {
  TestIoRoundTrip();
  TestCsvHeader();
  TestMetrics();
  std::printf("io_eval_test OK\n");
  return 0;
}
