// kd-tree vs brute force: range count, range report, and
// nearest-accepted-neighbor on random point sets across dimensions.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/rng.h"
#include "index/kdtree.h"
#include "tests/test_util.h"

namespace {

dpc::PointSet RandomPoints(int dim, dpc::PointId n, uint64_t seed) {
  dpc::Rng rng(seed);
  dpc::PointSet points(dim);
  points.Reserve(n);
  std::vector<double> p(static_cast<size_t>(dim));
  for (dpc::PointId i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) p[static_cast<size_t>(d)] = rng.Uniform(0, 1000);
    points.Add(p.data());
  }
  return points;
}

void TestDim(int dim) {
  const dpc::PointId n = 2000;
  const dpc::PointSet points = RandomPoints(dim, n, 7000 + static_cast<uint64_t>(dim));
  dpc::KdTree tree;
  tree.Build(points);
  CHECK(tree.MemoryBytes() > 0);

  dpc::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const dpc::PointId q = static_cast<dpc::PointId>(rng.NextBelow(n));
    const double radius = rng.Uniform(10.0, 400.0);
    const double r_sq = radius * radius;

    dpc::PointId brute_count = 0;
    std::vector<dpc::PointId> brute_ids;
    for (dpc::PointId j = 0; j < n; ++j) {
      if (dpc::SquaredDistance(points[q], points[j], dim) <= r_sq) {
        ++brute_count;
        brute_ids.push_back(j);
      }
    }

    CHECK_EQ(tree.RangeCount(points[q], radius), brute_count);

    std::vector<dpc::PointId> tree_ids;
    tree.RangeReport(points[q], radius, &tree_ids);
    std::sort(tree_ids.begin(), tree_ids.end());
    CHECK(tree_ids == brute_ids);

    // Nearest neighbor among even-id points, excluding the query itself.
    const auto accept = [q](dpc::PointId j) { return j % 2 == 0 && j != q; };
    double tree_dist = 0.0;
    const dpc::PointId tree_nn = tree.NearestAccepted(points[q], accept, &tree_dist);
    dpc::PointId brute_nn = -1;
    double brute_sq = std::numeric_limits<double>::infinity();
    for (dpc::PointId j = 0; j < n; ++j) {
      if (!accept(j)) continue;
      const double d_sq = dpc::SquaredDistance(points[q], points[j], dim);
      if (d_sq < brute_sq) {
        brute_sq = d_sq;
        brute_nn = j;
      }
    }
    CHECK_EQ(tree_nn, brute_nn);
    CHECK_NEAR(tree_dist * tree_dist, brute_sq, 1e-6);
  }

  // A predicate nothing satisfies must report "no neighbor".
  double dist = 0.0;
  const dpc::PointId none =
      tree.NearestAccepted(points[0], [](dpc::PointId) { return false; }, &dist);
  CHECK_EQ(none, -1);
  CHECK(std::isinf(dist));
}

}  // namespace

int main() {
  for (const int dim : {1, 2, 3, 5, 8}) TestDim(dim);

  // Empty and tiny trees must not crash.
  dpc::PointSet empty(2);
  dpc::KdTree tree;
  tree.Build(empty);
  const double origin[2] = {0.0, 0.0};
  CHECK_EQ(tree.RangeCount(origin, 10.0), 0);

  std::printf("kdtree_test OK\n");
  return 0;
}
