// Conformance of the §6 baselines against Ex-DPC on planted Gaussians:
//
//   * Scan is exact by construction — rho identical, labels and centers
//     identical, deltas equal up to floating ties;
//   * R-tree + Scan shares Scan's exactness (the index only accelerates
//     the counting);
//   * CFSFDP-A and LSH-DDP approximate rho, so they only need to stay
//     close: Rand index >= 0.90 against the exact labeling.
#include <cstdio>
#include <vector>

#include "baselines/cfsfdp_a.h"
#include "baselines/lsh_ddp.h"
#include "baselines/scan_dpc.h"
#include "core/ex_dpc.h"
#include "data/generators.h"
#include "eval/rand_index.h"
#include "tests/test_util.h"

int main() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 4000;
  gen.num_clusters = 5;
  gen.overlap = 0.015;
  gen.noise_rate = 0.02;
  gen.seed = 42;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);

  dpc::DpcParams params;
  params.d_cut = 1500.0;
  params.rho_min = 5.0;
  params.delta_min = 10000.0;
  params.num_threads = 2;

  dpc::ExDpc exact;
  const dpc::DpcResult ground = exact.Run(points, params);
  CHECK(ground.num_clusters() >= 2);

  // Scan: ground truth by construction — must agree with Ex-DPC exactly.
  dpc::ScanDpc scan;
  const dpc::DpcResult scan_result = scan.Run(points, params);
  CHECK(scan_result.rho == ground.rho);
  CHECK(scan_result.label == ground.label);
  CHECK(scan_result.centers == ground.centers);
  for (size_t i = 0; i < ground.delta.size(); ++i) {
    if (std::isinf(ground.delta[i])) {
      CHECK(std::isinf(scan_result.delta[i]));  // the global density peak
    } else {
      CHECK_NEAR(scan_result.delta[i], ground.delta[i], 1e-9);
    }
  }

  // R-tree + Scan: identical counting, identical dependent pass.
  dpc::RtreeScanDpc rtree_scan;
  const dpc::DpcResult rtree_result = rtree_scan.Run(points, params);
  CHECK(rtree_result.rho == scan_result.rho);
  CHECK(rtree_result.label == scan_result.label);
  CHECK(rtree_result.centers == scan_result.centers);

  // Approximate-density baselines: close, not exact.
  dpc::CfsfdpA cfsfdp_a;
  const double ri_cfsfdp =
      dpc::eval::RandIndex(cfsfdp_a.Run(points, params).label, ground.label);
  std::printf("CFSFDP-A Rand index vs Ex-DPC: %.4f\n", ri_cfsfdp);
  CHECK(ri_cfsfdp >= 0.90);

  dpc::LshDdp lsh_ddp;
  const double ri_lsh =
      dpc::eval::RandIndex(lsh_ddp.Run(points, params).label, ground.label);
  std::printf("LSH-DDP Rand index vs Ex-DPC: %.4f\n", ri_lsh);
  CHECK(ri_lsh >= 0.90);

  std::printf("baselines_test OK\n");
  return 0;
}
