// core/options.h canonicalization: semantically identical `--opt`
// spellings must render to one canonical string (the serving layer's
// result-cache key depends on this), while semantically different option
// sets must stay distinct.
#include <cstdio>
#include <string>
#include <vector>

#include "core/options.h"
#include "tests/test_util.h"

namespace {

dpc::OptionsMap Parse(const std::vector<std::string>& items) {
  auto parsed = dpc::ParseOptionList(items);
  CHECK(parsed.ok());
  return parsed.value();
}

}  // namespace

int main() {
  // Value-level normalization: numbers re-render via %.17g...
  CHECK(dpc::CanonicalOptionValue("0.50") == std::string("0.5"));
  CHECK(dpc::CanonicalOptionValue("5e-1") == std::string("0.5"));
  CHECK(dpc::CanonicalOptionValue(".5") == std::string("0.5"));
  CHECK(dpc::CanonicalOptionValue("02") == std::string("2"));
  CHECK(dpc::CanonicalOptionValue("2") == std::string("2"));
  CHECK(dpc::CanonicalOptionValue("1e3") == std::string("1000"));
  CHECK(dpc::CanonicalOptionValue("-07") == std::string("-7"));
  // Exact integers canonicalize through int64, not double: values above
  // 2^53 that differ by 1 must NOT collapse to one cache key.
  CHECK(dpc::CanonicalOptionValue("9007199254740993") ==
        std::string("9007199254740993"));
  CHECK(dpc::CanonicalOptionValue("9007199254740993") !=
        dpc::CanonicalOptionValue("9007199254740992"));
  CHECK(dpc::CanonicalOptionValue("09007199254740993") ==
        std::string("9007199254740993"));
  // ...boolean words collapse to 1/0 (OptionsReader::Bool's vocabulary)...
  CHECK(dpc::CanonicalOptionValue("true") == std::string("1"));
  CHECK(dpc::CanonicalOptionValue("on") == std::string("1"));
  CHECK(dpc::CanonicalOptionValue("yes") == std::string("1"));
  CHECK(dpc::CanonicalOptionValue("false") == std::string("0"));
  CHECK(dpc::CanonicalOptionValue("off") == std::string("0"));
  CHECK(dpc::CanonicalOptionValue("no") == std::string("0"));
  // ...and everything else (enum values, malformed numerics, overflow)
  // is preserved byte-for-byte.
  CHECK(dpc::CanonicalOptionValue("lpt") == std::string("lpt"));
  CHECK(dpc::CanonicalOptionValue("static") == std::string("static"));
  CHECK(dpc::CanonicalOptionValue("") == std::string(""));
  CHECK(dpc::CanonicalOptionValue("1.5x") == std::string("1.5x"));
  CHECK(dpc::CanonicalOptionValue("1e999") == std::string("1e999"));

  // The regression this exists for: different CLI spellings of one
  // configuration canonicalize to one string (and therefore one cache
  // key), regardless of --opt order.
  const dpc::OptionsMap a =
      Parse({"sample_rate=0.50", "joint_range_search=true", "num_tables=08"});
  const dpc::OptionsMap b =
      Parse({"num_tables=8", "sample_rate=5e-1", "joint_range_search=1"});
  CHECK(dpc::CanonicalOptionsString(a) == dpc::CanonicalOptionsString(b));
  CHECK(dpc::CanonicalOptionsString(a) ==
        std::string("joint_range_search=1,num_tables=8,sample_rate=0.5"));
  CHECK(dpc::CanonicalizeOptions(a) == dpc::CanonicalizeOptions(b));

  // Semantically different values stay distinct.
  const dpc::OptionsMap c = Parse({"sample_rate=0.25"});
  const dpc::OptionsMap d = Parse({"sample_rate=0.5"});
  CHECK(dpc::CanonicalOptionsString(c) != dpc::CanonicalOptionsString(d));

  // Canonicalized maps still parse identically through OptionsReader.
  double rate = 0.0;
  bool joint = false;
  int tables = 0;
  const dpc::OptionsMap canonical = dpc::CanonicalizeOptions(a);
  dpc::OptionsReader reader(canonical);  // OptionsReader holds a reference
  reader.Double("sample_rate", &rate)
      .Bool("joint_range_search", &joint)
      .Int("num_tables", &tables);
  CHECK(reader.status().ok());
  CHECK_EQ(rate, 0.5);
  CHECK(joint);
  CHECK_EQ(tables, 8);

  // Empty map -> empty canonical string.
  CHECK(dpc::CanonicalOptionsString(dpc::OptionsMap{}) == std::string(""));

  std::printf("options_test OK\n");
  return 0;
}
