// Decision-graph helpers: the graph is delta-sorted, SuggestDeltaMinForK
// re-thresholds to exactly k clusters via FinalizeClusters, the gap
// heuristic finds the planted k on separated data, and the CSV writer
// produces a parseable file.
#include <cstdio>
#include <string>
#include <vector>

#include "core/decision_graph.h"
#include "core/ex_dpc.h"
#include "core/halo.h"
#include "core/registry.h"
#include "data/generators.h"
#include "tests/test_util.h"

int main() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 8000;
  gen.num_clusters = 9;
  gen.overlap = 0.015;
  gen.noise_rate = 0.01;
  gen.seed = 31;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);

  dpc::DpcParams params;
  params.d_cut = 1200.0;
  params.rho_min = 4.0;
  params.delta_min = params.d_cut * 1.0001;  // permissive: threshold later
  params.num_threads = 0;

  dpc::ExDpc algo;
  dpc::DpcResult result = algo.Run(points, params);

  const auto graph = dpc::BuildDecisionGraph(result);
  CHECK_EQ(static_cast<dpc::PointId>(graph.size()), points.size());
  for (size_t i = 1; i < graph.size(); ++i) {
    CHECK(graph[i - 1].delta >= graph[i].delta);
  }

  // Exactly-k selection while k honest centers exist.
  for (const int k : {3, 6, 9}) {
    dpc::DpcParams p = params;
    p.delta_min = dpc::SuggestDeltaMinForK(result, params, k);
    CHECK(p.delta_min > params.d_cut);
    dpc::FinalizeClusters(p, &result);
    CHECK_EQ(result.num_clusters(), k);
  }

  // Asking for more centers than separable clusters must not push the
  // threshold to or below d_cut (which would admit grid-approximated
  // deltas as centers) — it yields the honest count instead.
  {
    dpc::DpcParams p = params;
    p.delta_min = dpc::SuggestDeltaMinForK(result, params, 500);
    CHECK(p.delta_min > params.d_cut);
    dpc::FinalizeClusters(p, &result);
    CHECK(result.num_clusters() <= 500);
    CHECK(result.num_clusters() >= 9);
  }

  // The gap heuristic lands on the planted cluster count.
  dpc::DpcParams gap_params = params;
  gap_params.delta_min = dpc::SuggestDeltaMinByGap(result, params);
  dpc::FinalizeClusters(gap_params, &result);
  CHECK_EQ(result.num_clusters(), 9);

  // Halo: sizes bounded by cluster membership, noise never in a halo.
  const dpc::HaloResult halo = dpc::ComputeHalo(points, result, params.d_cut);
  CHECK_EQ(static_cast<int64_t>(halo.halo_size.size()), result.num_clusters());
  for (size_t i = 0; i < result.label.size(); ++i) {
    if (result.label[i] < 0) CHECK(halo.in_halo[i] == 0);
  }

  // Registry round-trip plus a precise error for unknown names (full
  // per-algorithm coverage lives in registry_test).
  auto made = dpc::MakeAlgorithmByName("ex-dpc");
  CHECK(made.ok());
  CHECK(made.value()->name() == "Ex-DPC");
  CHECK(dpc::MakeAlgorithmByName("s-approx-dpc").ok());
  CHECK(dpc::MakeAlgorithmByName("nope").status().code() ==
        dpc::StatusCode::kNotFound);

  // CSV writer emits header + one row per point.
  const std::string path = "decision_graph_test.csv";
  CHECK(dpc::WriteDecisionGraphCsv(graph, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  CHECK(f != nullptr);
  int64_t lines = 0;
  for (int c = std::fgetc(f); c != EOF; c = std::fgetc(f)) {
    if (c == '\n') ++lines;
  }
  std::fclose(f);
  std::remove(path.c_str());
  CHECK_EQ(lines, static_cast<int64_t>(graph.size()) + 1);

  std::printf("decision_graph_test OK\n");
  return 0;
}
