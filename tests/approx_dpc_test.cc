// Approx-DPC vs Ex-DPC: identical centers (the paper's exactness claim),
// label agreement >= 0.95 Rand index, and valid structural invariants.
#include <cstdio>
#include <vector>

#include "core/approx_dpc.h"
#include "core/ex_dpc.h"
#include "eval/cluster_stats.h"
#include "eval/rand_index.h"
#include "data/generators.h"
#include "tests/test_util.h"

int main() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 12000;
  gen.num_clusters = 8;
  gen.dim = 2;
  gen.overlap = 0.02;
  gen.noise_rate = 0.02;
  gen.seed = 5;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);

  dpc::DpcParams params;
  params.d_cut = 1500.0;
  params.rho_min = 5.0;
  params.delta_min = 8000.0;
  params.num_threads = 0;

  dpc::ExDpc exact;
  dpc::ApproxDpc approx;
  const dpc::DpcResult ex = exact.Run(points, params);
  const dpc::DpcResult ap = approx.Run(points, params);

  // rho is exact in both algorithms, so it must agree bitwise.
  CHECK(ex.rho == ap.rho);

  // Approx-DPC's headline property: the same centers as Ex-DPC.
  CHECK(ex.centers == ap.centers);
  CHECK(ex.num_clusters() >= 8);  // 8 planted blobs; overlap may split ties

  // Non-center deltas are approximate, but labels must agree strongly.
  const double rand = dpc::eval::RandIndex(ap.label, ex.label);
  std::printf("rand index approx vs exact: %.5f\n", rand);
  CHECK(rand >= 0.95);

  // Joint range search on/off (§4.2, ablation A): per-point counts must
  // reproduce the joint traversal's rho — and therefore labels — exactly.
  {
    dpc::ApproxDpcOptions off;
    off.joint_range_search = false;
    const dpc::DpcResult ap_off = dpc::ApproxDpc(off).Run(points, params);
    CHECK(ap_off.rho == ap.rho);
    CHECK(ap_off.centers == ap.centers);
    CHECK(ap_off.label == ap.label);
  }

  // Forced subset counts (Equation (2), ablation C): the density-ordered
  // subset search is exact for any s, so labels and deltas never move.
  for (const int s : {1, 3, 17}) {
    dpc::ApproxDpcOptions forced;
    forced.force_num_subsets = s;
    const dpc::DpcResult r = dpc::ApproxDpc(forced).Run(points, params);
    CHECK(r.delta == ap.delta);
    CHECK(r.centers == ap.centers);
    CHECK(r.label == ap.label);
  }
  CHECK(dpc::ApproxDpc::SolveNumSubsets(0, 2) == 1);
  CHECK(dpc::ApproxDpc::SolveNumSubsets(points.size(), 2) >= 1);

  // Structural invariants: every non-noise point reaches its cluster via
  // a denser dependency, and noise is exactly the sub-rho_min set.
  for (size_t i = 0; i < ap.label.size(); ++i) {
    if (ap.rho[i] < params.rho_min) {
      CHECK_EQ(ap.label[i], dpc::kNoise);
      continue;
    }
    CHECK(ap.label[i] >= 0);
    const dpc::PointId dep = ap.dependency[i];
    if (dep >= 0) {
      CHECK(dpc::DenserThan(ap.rho[static_cast<size_t>(dep)], dep, ap.rho[i],
                            static_cast<dpc::PointId>(i)));
    }
  }
  std::printf("approx_dpc_test OK\n");
  return 0;
}
