// Metamorphic properties of S-Approx-DPC's epsilon knob on planted
// Gaussians:
//
//   * centers match Ex-DPC's exactly at every epsilon (the §5 design:
//     peak deltas only grow under candidate subsampling, and the usual
//     delta_min >> d_cut margin absorbs the growth);
//   * label agreement with Ex-DPC degrades monotonically as epsilon
//     sweeps {0.01, 0.2, 1.0} — the candidate samples are NESTED, so a
//     larger epsilon can only lose dependency information;
//   * epsilon = 0.01 keeps ~96% of candidates and must agree >= 0.99;
//   * epsilon -> 0 keeps everyone and collapses to Approx-DPC exactly.
#include <cstdio>
#include <vector>

#include "core/approx_dpc.h"
#include "core/ex_dpc.h"
#include "core/s_approx_dpc.h"
#include "data/generators.h"
#include "eval/rand_index.h"
#include "tests/test_util.h"

int main() {
  // Dense enough that grid cells hold many points (cell side
  // d_cut/sqrt(2) ~ 3500 on the 1e5 domain) — with near-empty cells
  // every point is its own peak and the epsilon knob would have nothing
  // to subsample.
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 20000;
  gen.num_clusters = 6;
  gen.overlap = 0.03;
  gen.noise_rate = 0.08;
  gen.seed = 7;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);

  dpc::DpcParams params;
  params.d_cut = 5000.0;
  params.rho_min = 5.0;
  params.delta_min = 20000.0;
  params.num_threads = 2;

  dpc::ExDpc exact;
  const dpc::DpcResult ground = exact.Run(points, params);
  CHECK(ground.num_clusters() >= 2);

  std::vector<double> rand_index;
  for (const double eps : {0.01, 0.2, 1.0}) {
    dpc::DpcParams p = params;
    p.epsilon = eps;
    dpc::SApproxDpc algo;
    const dpc::DpcResult r = algo.Run(points, p);
    CHECK(r.centers == ground.centers);  // exact centers at every epsilon
    const double ri = dpc::eval::RandIndex(r.label, ground.label);
    std::printf("eps=%.2f: Rand index vs Ex-DPC = %.6f\n", eps, ri);
    rand_index.push_back(ri);
  }
  CHECK(rand_index[0] >= 0.99);
  CHECK(rand_index[0] >= rand_index[1]);  // nested samples: accuracy only
  CHECK(rand_index[1] >= rand_index[2]);  // degrades as epsilon grows
  CHECK(rand_index[2] < 1.0);  // ... and the knob actually bites here

  // epsilon -> 0 keeps every candidate: bit-identical to Approx-DPC.
  {
    dpc::DpcParams p = params;
    p.epsilon = 1e-12;
    dpc::SApproxDpc s_approx;
    dpc::ApproxDpc approx;
    const dpc::DpcResult a = s_approx.Run(points, p);
    const dpc::DpcResult b = approx.Run(points, p);
    CHECK(a.label == b.label);
    CHECK(a.dependency == b.dependency);
    CHECK(a.centers == b.centers);
  }

  std::printf("s_approx_dpc_test OK\n");
  return 0;
}
