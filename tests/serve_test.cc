// The serve/ subsystem: dataset fingerprint stability, the two-tier
// SolutionCache (solution-tier keying, cost-scaled eviction determinism,
// byte-budget accounting, label memoization, demotion/promotion against
// a backing store), LPT-profile-aware shard width planning,
// admission-queue priority order, end-to-end serving (responses
// bit-identical to direct Run), the re-threshold / decision-graph fast
// path (zero recompute, asserted via server stats), mixed-deadline
// batches, error paths, and concurrent submissions (the TSan CI job
// runs this binary).
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/decision_graph.h"
#include "core/registry.h"
#include "data/generators.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/dataset_registry.h"
#include "serve/request.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/shard_pool.h"
#include "serve/solution_cache.h"
#include "store/solution_format.h"
#include "store/solution_store.h"
#include "tests/test_util.h"

namespace {

dpc::PointSet TestPoints(uint64_t seed = 11, dpc::PointId n = 600) {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = n;
  gen.num_clusters = 3;
  gen.seed = seed;
  return dpc::data::GaussianBenchmark(gen);
}

dpc::DpcParams TestParams(double d_cut = 2000.0) {
  dpc::DpcParams params;
  params.d_cut = d_cut;
  params.rho_min = 2.0;
  params.delta_min = 4.0 * d_cut;
  return params;
}

void TestFingerprintAndRegistry() {
  const dpc::PointSet points = TestPoints();

  // Content-determined: same bytes -> same fingerprint, including via a
  // copy registered under another name; any coordinate change diverges.
  // (FingerprintPoints lives in core now; the serve alias must resolve.)
  const uint64_t fp = dpc::serve::FingerprintPoints(points);
  CHECK_EQ(dpc::FingerprintPoints(points), fp);
  dpc::PointSet perturbed = points;
  perturbed.MutablePoint(0)[0] += 1.0;
  CHECK(dpc::serve::FingerprintPoints(perturbed) != fp);
  // Same coordinate multiset, different order -> different content.
  dpc::PointSet swapped(points.dim());
  swapped.Add(points[1]);
  swapped.Add(points[0]);
  dpc::PointSet forward(points.dim());
  forward.Add(points[0]);
  forward.Add(points[1]);
  CHECK(dpc::serve::FingerprintPoints(swapped) !=
        dpc::serve::FingerprintPoints(forward));

  dpc::serve::DatasetRegistry registry;
  CHECK_EQ(registry.Register("a", points), fp);
  CHECK_EQ(registry.Register("b", points), fp);  // alias, same content
  CHECK_EQ(registry.size(), 2u);

  const auto found = registry.Find("a");
  CHECK(found != nullptr);
  CHECK_EQ(found->fingerprint, fp);
  CHECK_EQ(found->points.size(), points.size());
  CHECK(registry.Find("nope") == nullptr);

  // A replaced handle leaves earlier holders' entry alive and intact.
  CHECK(registry.Register("a", perturbed) != fp);
  CHECK_EQ(found->fingerprint, fp);
  CHECK(registry.Find("a")->fingerprint != fp);

  CHECK(registry.Unregister("b"));
  CHECK(!registry.Unregister("b"));
  CHECK_EQ(registry.size(), 1u);
}

/// A tiny hand-built solution whose labels depend on the threshold:
///   rho   = {5, 4, 3, 1}
///   delta = {inf, 10, 2, 1}, dependency = {-1, 0, 1, 2}
/// (rho_min=2, delta_min=5)  -> labels {0, 1, 1, noise}
/// (rho_min=2, delta_min=20) -> labels {0, 0, 0, noise}
std::shared_ptr<const dpc::DpcSolution> TinySolution() {
  auto s = std::make_shared<dpc::DpcSolution>();
  s->algorithm = "test";
  s->rho = {5.0, 4.0, 3.0, 1.0};
  s->delta = {std::numeric_limits<double>::infinity(), 10.0, 2.0, 1.0};
  s->dependency = {-1, 0, 1, 2};
  s->density_order = dpc::DensityOrder(s->rho);
  return s;
}

/// The cache charges an entry its exact serialized size, so test budgets
/// are expressed in units of one TinySolution.
size_t TinyBytes() { return dpc::store::SerializedSolutionBytes(*TinySolution()); }

dpc::ThresholdSpec Spec(double rho_min, double delta_min) {
  dpc::ThresholdSpec spec;
  spec.rho_min = rho_min;
  spec.delta_min = delta_min;
  return spec;
}

void TestSolutionCacheTwoTier() {
  dpc::serve::SolutionCache cache(4 * TinyBytes());
  CHECK(cache.enabled());
  CHECK(cache.Lookup("a") == nullptr);
  CHECK(cache.Finalize("a", Spec(2.0, 5.0)) == nullptr);

  cache.Insert("a", TinySolution(), 1.0);
  CHECK(cache.Lookup("a") != nullptr);

  // Label tier: first Finalize computes, the second aliases the SAME
  // immutable result; a different threshold labels differently.
  const auto r1 = cache.Finalize("a", Spec(2.0, 5.0));
  CHECK(r1 != nullptr);
  CHECK(r1->label == (std::vector<int64_t>{0, 1, 1, dpc::kNoise}));
  CHECK(r1->centers == (std::vector<dpc::PointId>{0, 1}));
  const auto r2 = cache.Finalize("a", Spec(2.0, 5.0));
  CHECK(r2.get() == r1.get());
  const auto r3 = cache.Finalize("a", Spec(2.0, 20.0));
  CHECK(r3->label == (std::vector<int64_t>{0, 0, 0, dpc::kNoise}));
  CHECK_EQ(r3->num_clusters(), 1);

  const auto stats = cache.stats();
  CHECK_EQ(stats.finalizations, 2u);
  CHECK_EQ(stats.label_hits, 1u);

  // Re-inserting a key drops its stale label memo.
  cache.Insert("a", TinySolution(), 1.0);
  const auto r4 = cache.Finalize("a", Spec(2.0, 5.0));
  CHECK(r4.get() != r1.get());
  CHECK(r4->label == r1->label);

  // The per-entry memo is bounded: with a bound of 2, sweeping 3
  // thresholds evicts the least recently used labeling.
  dpc::serve::SolutionCache bounded(2 * TinyBytes(), 2);
  bounded.Insert("a", TinySolution(), 1.0);
  (void)bounded.Finalize("a", Spec(2.0, 5.0));
  (void)bounded.Finalize("a", Spec(2.0, 20.0));
  (void)bounded.Finalize("a", Spec(2.0, 30.0));  // evicts the 5.0 memo
  (void)bounded.Finalize("a", Spec(2.0, 5.0));   // recomputed
  CHECK_EQ(bounded.stats().finalizations, 4u);

  // A zero byte budget disables caching entirely.
  dpc::serve::SolutionCache off(0);
  CHECK(!off.enabled());
  off.Insert("a", TinySolution(), 1.0);
  CHECK(off.Lookup("a") == nullptr);
  CHECK_EQ(off.size(), 0u);
}

void TestSolutionCacheCostAwareEviction() {
  // GreedyDual-Size (cost-per-byte-scaled LRU): an expensive solution
  // outlives many cheap ones, but inflation eventually ages it out. The
  // entries here are all one TinySolution in size, so credits order
  // exactly as cost and the whole sequence is deterministic.
  dpc::serve::SolutionCache cache(2 * TinyBytes());
  cache.Insert("expensive", TinySolution(), 10.0);
  cache.Insert("cheap1", TinySolution(), 1.0);
  // Plain LRU would evict "expensive" (least recently used); cost-scaled
  // eviction picks the low-credit "cheap1" instead.
  cache.Insert("cheap2", TinySolution(), 1.0);
  CHECK(cache.KeysByEvictionOrder() ==
        (std::vector<std::string>{"cheap2", "expensive"}));
  cache.Insert("cheap3", TinySolution(), 1.0);  // evicts cheap2 (credit 2)
  CHECK(cache.KeysByEvictionOrder() ==
        (std::vector<std::string>{"cheap3", "expensive"}));
  CHECK_EQ(cache.stats().evictions, 2u);

  // Aging: with each eviction the inflation level rises by the victim's
  // credit, so a stream of cheap solutions eventually displaces the
  // expensive one. In units of cost/TinyBytes the credits go 4, 5, ...,
  // 10; the tie at 10 breaks toward the older entry — "expensive" — on
  // the 8th insert.
  for (int i = 0; i < 8; ++i) {
    cache.Insert("stream" + std::to_string(i), TinySolution(), 1.0);
  }
  CHECK(cache.Lookup("expensive") == nullptr);

  // A hit refreshes the credit: after touching, the expensive entry is
  // again the last to go.
  dpc::serve::SolutionCache touchy(2 * TinyBytes());
  touchy.Insert("expensive", TinySolution(), 10.0);
  touchy.Insert("cheap1", TinySolution(), 1.0);
  CHECK(touchy.Lookup("expensive") != nullptr);
  touchy.Insert("cheap2", TinySolution(), 1.0);
  CHECK(touchy.Lookup("expensive") != nullptr);
  CHECK(touchy.Lookup("cheap1") == nullptr);
}

void TestSolutionCacheByteBudget() {
  const size_t tiny = TinyBytes();
  // Room for two tiny entries (plus slack below a third): across an
  // insert storm, bytes_in_use tracks the resident set exactly and NEVER
  // exceeds the budget — the acceptance invariant of the byte-budgeted
  // tier.
  dpc::serve::SolutionCache cache(2 * tiny + tiny / 2);
  for (int i = 0; i < 16; ++i) {
    cache.Insert("k" + std::to_string(i), TinySolution(), 1.0 + i);
    CHECK(cache.bytes_in_use() <= cache.memory_budget_bytes());
    CHECK_EQ(cache.bytes_in_use(), cache.size() * tiny);
  }
  CHECK_EQ(cache.size(), 2u);

  // An artifact bigger than the whole budget is refused outright — and
  // refusing it does not evict the resident entries.
  auto big = std::make_shared<dpc::DpcSolution>();
  big->algorithm = "test";
  big->rho.assign(4096, 1.0);
  big->delta.assign(4096, 1.0);
  big->dependency.assign(4096, -1);
  big->density_order = dpc::DensityOrder(big->rho);
  CHECK(dpc::store::SerializedSolutionBytes(*big) >
        cache.memory_budget_bytes());
  cache.Insert("big", big, 100.0);
  CHECK(cache.Lookup("big") == nullptr);
  CHECK_EQ(cache.size(), 2u);
  CHECK(cache.bytes_in_use() <= cache.memory_budget_bytes());

  // Re-inserting an existing key replaces its charge, not doubles it.
  cache.Insert("k15", TinySolution(), 99.0);
  CHECK_EQ(cache.bytes_in_use(), 2 * tiny);
}

/// The cache as the warm tier over a SolutionStore: eviction demotes (the
/// log keeps the record), a memory miss promotes (warm miss — served
/// from the store, never recomputed), and the miss taxonomy separates
/// the two from a true both-tier miss.
void TestCacheStoreDemotePromote() {
  const std::string path =
      "/tmp/dpc_serve_test_tier_" + std::to_string(::getpid()) + ".log";
  std::remove(path.c_str());
  auto store = dpc::store::SolutionStore::Open(path);
  CHECK(store.ok());
  const size_t tiny = TinyBytes();
  {
    dpc::serve::SolutionCache cache(2 * tiny + tiny / 2, 4,
                                    store.value().get());
    cache.Insert("a", TinySolution(), 1.0);
    cache.Insert("b", TinySolution(), 2.0);
    cache.Insert("c", TinySolution(), 3.0);  // evicts "a" -> demotion
    auto stats = cache.stats();
    CHECK_EQ(stats.evictions, 1u);
    CHECK_EQ(stats.demotions, 1u);
    CHECK(store.value()->Contains("a"));

    // The demoted key is a WARM miss: promoted back and served.
    const auto a = cache.Lookup("a");
    CHECK(a != nullptr);
    stats = cache.stats();
    CHECK_EQ(stats.warm_misses, 1u);
    CHECK_EQ(stats.promotions, 1u);
    CHECK_EQ(stats.solution_misses, 0u);
    CHECK(cache.bytes_in_use() <= cache.memory_budget_bytes());

    // Finalize on a now-demoted key takes the same path: finalize-only
    // against the promoted artifact, labels as if it never left memory.
    const auto r = cache.Finalize("b", Spec(2.0, 5.0));
    CHECK(r != nullptr);
    CHECK(r->label == (std::vector<int64_t>{0, 1, 1, dpc::kNoise}));

    // A key neither tier has is a genuine miss.
    CHECK(cache.Lookup("nope") == nullptr);
    CHECK_EQ(cache.stats().solution_misses, 1u);
  }
  std::remove(path.c_str());
}

/// Satellite: PlanShardWidth's LPT-profile overload. A uniform cost
/// profile plans the flat width; a skewed one widens until the LPT
/// makespan meets the flat per-lane target (or the budget caps it).
void TestPlanShardWidthProfiles() {
  // Flat model baseline: 8 threads over 4 lanes -> width 2 above the
  // parallel threshold, 1 below it.
  CHECK_EQ(dpc::serve::PlanShardWidth(8, 4, int64_t{100000}, 0), 2);
  CHECK_EQ(dpc::serve::PlanShardWidth(8, 4, int64_t{10}, 0), 1);

  // Uniform profile: LPT of 16 x 4000 on 2 threads has makespan 32000,
  // within 5% of the even-split 32000 -> the flat width stands.
  const std::vector<double> uniform(16, 4000.0);
  CHECK_EQ(dpc::serve::PlanShardWidth(8, 4, uniform, 0), 2);

  // One dominant bin: no width can beat its 40000 makespan, so the
  // planner widens all the way to the budget.
  std::vector<double> skewed(25, 1000.0);
  skewed[0] = 40000.0;
  CHECK_EQ(dpc::serve::PlanShardWidth(8, 4, skewed, 0), 8);

  // Two heavy bins level out at width 3: {30000, 30000, 4000} makespans
  // 34000 @2 (over the 33600 target) but 30000 @3.
  const std::vector<double> two_heavy = {30000.0, 30000.0, 4000.0};
  CHECK_EQ(dpc::serve::PlanShardWidth(8, 4, two_heavy, 0), 3);

  // Below the parallel threshold the profile is ignored — inner loops
  // run serial anyway.
  const std::vector<double> small(16, 10.0);
  CHECK_EQ(dpc::serve::PlanShardWidth(8, 4, small, 0), 1);

  // Priority boosts ride on top, clamped to the budget.
  CHECK_EQ(dpc::serve::PlanShardWidth(8, 4, uniform, 3), 5);
  CHECK_EQ(dpc::serve::PlanShardWidth(8, 4, skewed, 3), 8);
}

void TestSolutionKey() {
  const dpc::ComputeParams compute = TestParams().compute();
  // Differently spelled but semantically identical options -> one key.
  dpc::OptionsMap spelled_a{{"num_tables", "08"}, {"bucket_width_factor", "0.50"}};
  dpc::OptionsMap spelled_b{{"bucket_width_factor", "5e-1"}, {"num_tables", "8"}};
  CHECK(dpc::serve::MakeSolutionKey(1, "lsh-ddp", spelled_a, compute) ==
        dpc::serve::MakeSolutionKey(1, "lsh-ddp", spelled_b, compute));

  // Every key component discriminates.
  const std::string base =
      dpc::serve::MakeSolutionKey(1, "lsh-ddp", spelled_a, compute);
  CHECK(dpc::serve::MakeSolutionKey(2, "lsh-ddp", spelled_a, compute) != base);
  CHECK(dpc::serve::MakeSolutionKey(1, "ex-dpc", spelled_a, compute) != base);
  CHECK(dpc::serve::MakeSolutionKey(1, "lsh-ddp", {}, compute) != base);
  dpc::ComputeParams other = compute;
  other.d_cut *= 2.0;
  CHECK(dpc::serve::MakeSolutionKey(1, "lsh-ddp", spelled_a, other) != base);
  dpc::ComputeParams eps = compute;
  eps.epsilon *= 2.0;
  CHECK(dpc::serve::MakeSolutionKey(1, "lsh-ddp", spelled_a, eps) != base);

  // Threshold knobs are NOT part of the solution key — that is the whole
  // point of the two-tier split: one solution answers every threshold.
  dpc::DpcParams rethresholded = TestParams();
  rethresholded.rho_min = 99.0;
  rethresholded.delta_min = 9000.0;
  CHECK(dpc::serve::MakeSolutionKey(1, "lsh-ddp", spelled_a,
                                    rethresholded.compute()) == base);

  // Execution policy is NOT part of the key (labels are thread-count and
  // strategy independent by the determinism contract).
  dpc::OptionsMap with_scheduler = spelled_a;
  with_scheduler["scheduler"] = "static";
  CHECK(dpc::serve::MakeSolutionKey(1, "lsh-ddp", with_scheduler, compute) ==
        base);
  with_scheduler["scheduler"] = "lpt";
  CHECK(dpc::serve::MakeSolutionKey(1, "lsh-ddp", with_scheduler, compute) ==
        base);

  // Threshold keys canonicalize spelling-equal values too.
  CHECK(dpc::serve::MakeThresholdKey(Spec(2.0, 5.0)) ==
        dpc::serve::MakeThresholdKey(Spec(2.0, 5.0)));
  CHECK(dpc::serve::MakeThresholdKey(Spec(2.0, 5.0)) !=
        dpc::serve::MakeThresholdKey(Spec(2.0, 6.0)));
}

void TestAdmissionQueuePriority() {
  dpc::serve::AdmissionQueue queue;
  auto push = [&](int priority) {
    dpc::serve::ClusterRequest request;
    request.dataset = "d";
    request.priority = priority;
    return queue.Push(std::move(request));
  };
  // Futures must outlive the queue pop (promises travel with the
  // submissions).
  std::vector<std::future<dpc::serve::ClusterResponse>> futures;
  futures.push_back(push(0));
  futures.push_back(push(5));
  futures.push_back(push(1));
  futures.push_back(push(5));

  auto batch = queue.PopBatch(3, std::chrono::milliseconds(0));
  CHECK_EQ(batch.size(), 3u);
  // (priority desc, admission order asc): the two 5s in arrival order,
  // then the 1.
  CHECK_EQ(batch[0].request.priority, 5);
  CHECK_EQ(batch[0].seq, 1u);
  CHECK_EQ(batch[1].request.priority, 5);
  CHECK_EQ(batch[1].seq, 3u);
  CHECK_EQ(batch[2].request.priority, 1);
  CHECK_EQ(queue.pending(), 1u);

  queue.Shutdown();
  auto rest = queue.PopBatch(3, std::chrono::milliseconds(0));
  CHECK_EQ(rest.size(), 1u);
  CHECK_EQ(rest[0].request.priority, 0);
  CHECK(queue.PopBatch(3, std::chrono::milliseconds(0)).empty());
}

void TestServerEndToEnd() {
  const dpc::PointSet points = TestPoints();
  const dpc::DpcParams params = TestParams();

  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  // A 30 KB budget fits exactly ONE solution for the 600-point dataset
  // (each is ~19.3 KB serialized), to also exercise server-level eviction.
  options.memory_budget_bytes = 30u << 10;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);

  dpc::serve::ClusterRequest request;
  request.dataset = "pts";
  request.algorithm = "ex-dpc";
  request.params = params;

  // Miss -> computed; identical resubmission -> cache hit aliasing the
  // same immutable result; both bit-identical to a direct Run.
  const auto first = server.Submit(request).get();
  CHECK(first.status.ok());
  CHECK(!first.cache_hit);
  const auto second = server.Submit(request).get();
  CHECK(second.status.ok());
  CHECK(second.cache_hit);
  CHECK(second.result.get() == first.result.get());
  CHECK_EQ(second.run_seconds, 0.0);

  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  CHECK(algo.ok());
  const dpc::DpcResult direct = algo.value()->Run(points, params);
  CHECK(dpc::test::BitIdenticalLabels(first.result->label, direct.label));
  CHECK(first.result->centers == direct.centers);
  CHECK(first.result->dependency == direct.dependency);

  // THE TWO-TIER PAYOFF: same compute configuration, new thresholds ->
  // still a cache hit (finalize-only, zero algorithm work), labels
  // bit-identical to a fresh Run at those thresholds.
  const uint64_t recomputes_before = server.stats().recomputes;
  dpc::serve::ClusterRequest rethresholded = request;
  rethresholded.params.rho_min = 5.0;
  rethresholded.params.delta_min = 3.0 * params.d_cut;
  const auto r = server.Submit(rethresholded).get();
  CHECK(r.status.ok());
  CHECK(r.cache_hit);
  CHECK_EQ(server.stats().recomputes, recomputes_before);
  CHECK(dpc::test::BitIdenticalLabels(
      r.result->label, algo.value()->Run(points, rethresholded.params).label));

  // A different COMPUTE configuration evicts the capacity-1 cache; the
  // original then recomputes (deterministically the same labels).
  dpc::serve::ClusterRequest other = request;
  other.params.d_cut *= 1.5;
  other.params.delta_min *= 1.5;
  CHECK(!server.Submit(other).get().cache_hit);
  const auto recomputed = server.Submit(request).get();
  CHECK(recomputed.status.ok());
  CHECK(!recomputed.cache_hit);
  CHECK(dpc::test::BitIdenticalLabels(recomputed.result->label, direct.label));

  // The deprecated per-request thread knob must not change the outcome
  // (the server owns execution policy) — and must hit the same cache key.
  dpc::serve::ClusterRequest threaded = request;
  threaded.params.num_threads = 1;
  CHECK(server.Submit(threaded).get().cache_hit);

  const auto stats = server.stats();
  CHECK_EQ(stats.submitted, 6u);
  CHECK_EQ(stats.completed, 6u);
  CHECK_EQ(stats.cache_hits, 3u);
  CHECK_EQ(stats.recomputes, 3u);
  CHECK_EQ(stats.errors, 0u);
}

void TestRethresholdAndGraphRequests() {
  const dpc::PointSet points = TestPoints();
  const dpc::DpcParams params = TestParams();

  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);

  dpc::serve::ClusterRequest warmup;
  warmup.dataset = "pts";
  warmup.algorithm = "ex-dpc";
  warmup.params = params;

  // Cold cache: the threshold-only kinds refuse to compute.
  dpc::serve::ClusterRequest cold = warmup;
  cold.kind = dpc::serve::RequestKind::kRethreshold;
  CHECK(server.Submit(cold).get().status.code() ==
        dpc::StatusCode::kNotFound);
  CHECK_EQ(server.stats().recomputes, 0u);

  // Warm the solution tier with one real run.
  CHECK(server.Submit(warmup).get().status.ok());
  const uint64_t recomputes = server.stats().recomputes;
  CHECK_EQ(recomputes, 1u);

  // Re-threshold: answered synchronously from the cached solution — the
  // recompute counter NEVER moves, and labels match a fresh direct Run.
  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  for (const double delta_min : {3000.0, 5000.0, 12000.0}) {
    dpc::serve::ClusterRequest re = warmup;
    re.kind = dpc::serve::RequestKind::kRethreshold;
    re.params.delta_min = delta_min;
    re.params.rho_min = 3.0;
    const auto response = server.Submit(re).get();
    CHECK(response.status.ok());
    CHECK(response.cache_hit);
    CHECK_EQ(response.run_seconds, 0.0);
    CHECK(dpc::test::BitIdenticalLabels(response.result->label,
                                        algo.value()->Run(points, re.params).label));
  }
  CHECK_EQ(server.stats().recomputes, recomputes);
  CHECK_EQ(server.stats().rethreshold_served, 3u);

  // Graph: the top-k gamma ranking of the cached solution, identical to
  // computing it directly from a fresh run's rho/delta.
  dpc::serve::ClusterRequest graph = warmup;
  graph.kind = dpc::serve::RequestKind::kGraph;
  graph.graph_top_k = 5;
  const auto g = server.Submit(graph).get();
  CHECK(g.status.ok());
  CHECK(g.cache_hit);
  CHECK_EQ(g.graph.size(), 5u);
  const dpc::DpcResult direct = algo.value()->Run(points, params);
  const auto expected = dpc::TopGammaPoints(direct.rho, direct.delta, 5);
  for (size_t i = 0; i < expected.size(); ++i) {
    CHECK_EQ(g.graph[i].id, expected[i].id);
    CHECK_EQ(g.graph[i].gamma, expected[i].gamma);
  }
  // Gamma ranks descending.
  for (size_t i = 1; i < g.graph.size(); ++i) {
    CHECK(g.graph[i - 1].gamma >= g.graph[i].gamma);
  }
  CHECK_EQ(server.stats().recomputes, recomputes);

  // Unknown dataset / bad top_k fail cleanly without computing.
  dpc::serve::ClusterRequest bad = graph;
  bad.dataset = "nope";
  CHECK(server.Submit(bad).get().status.code() == dpc::StatusCode::kNotFound);
  dpc::serve::ClusterRequest bad_k = graph;
  bad_k.graph_top_k = 0;
  CHECK(server.Submit(bad_k).get().status.code() ==
        dpc::StatusCode::kInvalidArgument);
  CHECK_EQ(server.stats().recomputes, recomputes);
}

void TestMixedDeadlineBatch() {
  const dpc::PointSet points = TestPoints();

  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  options.memory_budget_bytes = 0;  // force both survivors to really run
  options.batch_window = std::chrono::milliseconds(20);
  options.max_batch = 8;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);

  // One request whose budget (1ns) cannot survive even admission, two
  // healthy ones — submitted back-to-back so the window batches them.
  dpc::serve::ClusterRequest doomed;
  doomed.dataset = "pts";
  doomed.algorithm = "ex-dpc";
  doomed.params = TestParams();
  doomed.deadline = std::chrono::nanoseconds(1);
  dpc::serve::ClusterRequest healthy1 = doomed;
  healthy1.deadline = {};
  dpc::serve::ClusterRequest healthy2 = healthy1;
  healthy2.params = TestParams(3000.0);

  auto f_doomed = server.Submit(doomed);
  auto f1 = server.Submit(healthy1);
  auto f2 = server.Submit(healthy2);

  const auto r_doomed = f_doomed.get();
  CHECK(r_doomed.status.code() == dpc::StatusCode::kDeadlineExceeded);
  CHECK(r_doomed.result == nullptr);

  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  const auto r1 = f1.get();
  CHECK(r1.status.ok());
  CHECK(dpc::test::BitIdenticalLabels(
      r1.result->label, algo.value()->Run(points, healthy1.params).label));
  const auto r2 = f2.get();
  CHECK(r2.status.ok());
  CHECK(dpc::test::BitIdenticalLabels(
      r2.result->label, algo.value()->Run(points, healthy2.params).label));

  CHECK_EQ(server.stats().deadline_exceeded, 1u);
}

void TestErrorPaths() {
  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", TestPoints());

  dpc::serve::ClusterRequest request;
  request.dataset = "pts";
  request.algorithm = "ex-dpc";
  request.params = TestParams();

  // Validation failures resolve immediately.
  dpc::serve::ClusterRequest no_dataset = request;
  no_dataset.dataset.clear();
  CHECK(server.Submit(no_dataset).get().status.code() ==
        dpc::StatusCode::kInvalidArgument);
  dpc::serve::ClusterRequest bad_params = request;
  bad_params.params.d_cut = -1.0;
  CHECK(server.Submit(bad_params).get().status.code() ==
        dpc::StatusCode::kInvalidArgument);

  // Execution-time failures come back through the future.
  dpc::serve::ClusterRequest unknown_dataset = request;
  unknown_dataset.dataset = "nope";
  CHECK(server.Submit(unknown_dataset).get().status.code() ==
        dpc::StatusCode::kNotFound);
  dpc::serve::ClusterRequest unknown_algo = request;
  unknown_algo.algorithm = "nope";
  CHECK(server.Submit(unknown_algo).get().status.code() ==
        dpc::StatusCode::kNotFound);
  dpc::serve::ClusterRequest bad_option = request;
  bad_option.options["no_such_knob"] = "1";
  CHECK(server.Submit(bad_option).get().status.code() ==
        dpc::StatusCode::kInvalidArgument);

  // Options validate before the cache is consulted: a spelling the
  // reader rejects ("1e1" for an int) must fail even when a valid
  // spelling of the same canonical config already warmed the cache —
  // on the queued path AND the submit-time rethreshold path.
  dpc::serve::ClusterRequest lsh = request;
  lsh.algorithm = "lsh-ddp";
  lsh.options["num_tables"] = "10";
  CHECK(server.Submit(lsh).get().status.ok());
  dpc::serve::ClusterRequest lsh_bad = lsh;
  lsh_bad.options["num_tables"] = "1e1";
  CHECK(server.Submit(lsh_bad).get().status.code() ==
        dpc::StatusCode::kInvalidArgument);
  dpc::serve::ClusterRequest lsh_bad_re = lsh_bad;
  lsh_bad_re.kind = dpc::serve::RequestKind::kRethreshold;
  CHECK(server.Submit(lsh_bad_re).get().status.code() ==
        dpc::StatusCode::kInvalidArgument);

  // Requests already admitted still complete across Shutdown; later
  // submissions are rejected as cancelled.
  auto inflight = server.Submit(request);
  server.Shutdown();
  CHECK(inflight.get().status.ok());
  CHECK(server.Submit(request).get().status.code() ==
        dpc::StatusCode::kCancelled);
  // The synchronous cache-only kinds honor the shutdown contract too —
  // even though the cache is warm enough to answer.
  dpc::serve::ClusterRequest re_after = request;
  re_after.kind = dpc::serve::RequestKind::kRethreshold;
  CHECK(server.Submit(re_after).get().status.code() ==
        dpc::StatusCode::kCancelled);
}

void TestConcurrentSubmissions() {
  const dpc::PointSet points = TestPoints(13, 800);

  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  options.memory_budget_bytes = 8u << 20;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);

  // Expected labels per config, computed directly. The two configs share
  // d_cut (one compute key!) and differ only in thresholds, so the
  // concurrent clients also hammer the label-memo tier.
  std::vector<dpc::DpcParams> configs = {TestParams(2000.0),
                                         TestParams(2000.0)};
  configs[1].rho_min = 5.0;
  configs[1].delta_min = 6000.0;
  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  std::vector<std::vector<int64_t>> expected;
  for (const auto& params : configs) {
    expected.push_back(algo.value()->Run(points, params).label);
  }

  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kPerClient; ++q) {
        const size_t which = static_cast<size_t>((c + q) % 2);
        dpc::serve::ClusterRequest request;
        request.dataset = "pts";
        request.algorithm = "ex-dpc";
        request.params = configs[which];
        const auto response = server.Submit(std::move(request)).get();
        if (!response.status.ok() ||
            !dpc::test::BitIdenticalLabels(response.result->label, expected[which])) {
          ++failures[static_cast<size_t>(c)];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const int f : failures) CHECK_EQ(f, 0);

  const auto stats = server.stats();
  CHECK_EQ(stats.submitted, static_cast<uint64_t>(kClients * kPerClient));
  CHECK_EQ(stats.completed, static_cast<uint64_t>(kClients * kPerClient));
  // One compute configuration -> at most a couple of real computations
  // (a burst can race past the first insert); hits dominate.
  CHECK(stats.cache_hits >= static_cast<uint64_t>(kClients * kPerClient - 2));
  CHECK_EQ(stats.errors, 0u);
}

// The tentpole's serving leg: with several executor lanes, DISTINCT
// requests genuinely overlap (peak_concurrency proves it), every
// response stays bit-identical to a direct Run, a low-priority
// no-deadline request is never starved, and the mixed synchronous kinds
// keep working against the same server. The TSan CI job runs this.
void TestConcurrentExecutionOverlap() {
  const dpc::PointSet points = TestPoints(29, 3000);

  dpc::serve::ServerOptions options;
  options.pool_threads = 4;
  options.max_concurrent = 3;
  options.memory_budget_bytes = 8u << 20;
  options.batch_window = std::chrono::milliseconds(5);
  dpc::serve::ClusterServer server(options);
  CHECK_EQ(server.lanes(), 3);
  server.datasets().Register("pts", points);

  // Six DISTINCT compute configurations — distinct cache keys, so
  // neither the batch coalescing nor the in-flight dedup can collapse
  // them: three lanes must execute them overlapped.
  std::vector<dpc::DpcParams> configs;
  for (int i = 0; i < 6; ++i) {
    configs.push_back(TestParams(1500.0 + 250.0 * i));
  }
  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  std::vector<std::vector<int64_t>> expected;
  for (const auto& params : configs) {
    expected.push_back(algo.value()->Run(points, params).label);
  }

  std::vector<std::future<dpc::serve::ClusterResponse>> futures;
  for (size_t i = 0; i < configs.size(); ++i) {
    dpc::serve::ClusterRequest request;
    request.dataset = "pts";
    request.algorithm = "ex-dpc";
    request.params = configs[i];
    if (i == 0) request.priority = -3;  // dispatched last; must still finish
    if (i == 1) request.deadline = std::chrono::minutes(1);  // generous
    futures.push_back(server.Submit(std::move(request)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const auto response = futures[i].get();
    CHECK(response.status.ok());
    CHECK(!response.cache_hit);
    CHECK(dpc::test::BitIdenticalLabels(response.result->label, expected[i]));
  }

  // Mixed kinds against the warmed server: synchronous re-threshold and
  // graph requests interleave with queued resubmissions — nothing
  // recomputes, everything stays bit-identical.
  const uint64_t recomputes = server.stats().recomputes;
  dpc::serve::ClusterRequest re;
  re.dataset = "pts";
  re.algorithm = "ex-dpc";
  re.params = configs[2];
  re.params.rho_min = 5.0;
  re.kind = dpc::serve::RequestKind::kRethreshold;
  const auto r = server.Submit(re).get();
  CHECK(r.status.ok());
  CHECK(r.cache_hit);
  CHECK(dpc::test::BitIdenticalLabels(r.result->label,
                                      algo.value()->Run(points, re.params).label));
  dpc::serve::ClusterRequest graph = re;
  graph.kind = dpc::serve::RequestKind::kGraph;
  graph.params = configs[3];
  graph.graph_top_k = 4;
  CHECK_EQ(server.Submit(graph).get().graph.size(), 4u);
  dpc::serve::ClusterRequest again;
  again.dataset = "pts";
  again.algorithm = "ex-dpc";
  again.params = configs[4];
  CHECK(server.Submit(again).get().cache_hit);
  CHECK_EQ(server.stats().recomputes, recomputes);

  const auto stats = server.stats();
  // The overlap proof: at least two requests were mid-Solve at once
  // (with 3 lanes and 6 multi-millisecond solves, serial execution
  // cannot produce this), and every compute held a shard lease.
  CHECK(stats.peak_concurrency >= 2u);
  CHECK_EQ(stats.leases_granted, 6u);
  CHECK(stats.lease_width_total >= stats.leases_granted);
  CHECK_EQ(stats.errors, 0u);
  CHECK_EQ(stats.deadline_exceeded, 0u);
}

/// Satellite: the stats surface the `dpc_server stats` command prints —
/// cache byte occupancy and store occupancy — plus the warm-restart
/// promotion counters, against a real store-backed server.
void TestServerStoreStats() {
  const std::string store_path =
      "/tmp/dpc_serve_test_store_" + std::to_string(::getpid()) + ".log";
  std::remove(store_path.c_str());
  const dpc::PointSet points = TestPoints();

  dpc::serve::ClusterRequest request;
  request.dataset = "pts";
  request.algorithm = "ex-dpc";
  request.params = TestParams();

  {
    dpc::serve::ServerOptions options;
    options.pool_threads = 2;
    options.store_path = store_path;
    dpc::serve::ClusterServer server(options);
    CHECK(server.store() != nullptr);
    server.datasets().Register("pts", points);
    CHECK(server.Submit(request).get().status.ok());

    const auto stats = server.stats();
    CHECK(stats.store_bytes > 0u);  // the write-through landed in the log
    CHECK_EQ(server.store()->stats().live_solutions, 1u);
    CHECK(server.cache().bytes_in_use() > 0u);
    CHECK(server.cache().bytes_in_use() <=
          server.cache().memory_budget_bytes());
  }

  // A restarted server over the same log answers a re-threshold WARM:
  // the solution promotes from the store (no recompute, ever) and the
  // labels are bit-identical to a fresh direct Run.
  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  options.store_path = store_path;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);
  dpc::serve::ClusterRequest re = request;
  re.kind = dpc::serve::RequestKind::kRethreshold;
  re.params.rho_min = 3.0;
  const auto r = server.Submit(re).get();
  CHECK(r.status.ok());
  CHECK(r.cache_hit);
  const auto stats = server.stats();
  CHECK_EQ(stats.recomputes, 0u);
  CHECK(stats.warm_misses >= 1u);
  CHECK(stats.promotions >= 1u);
  CHECK(stats.store_bytes > 0u);
  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  CHECK(dpc::test::BitIdenticalLabels(
      r.result->label, algo.value()->Run(points, re.params).label));
  std::remove(store_path.c_str());
}

/// Sharded execution through the server: `sharding=region` requests hit
/// the SAME cache key as unsharded ones (execution options are stripped
/// from the solution key), and a sharded compute's labels are
/// bit-identical to the unsharded direct Run.
void TestShardedRequestsShareCacheKey() {
  const dpc::PointSet points = TestPoints(31, 1200);
  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);

  dpc::serve::ClusterRequest sharded;
  sharded.dataset = "pts";
  sharded.algorithm = "ex-dpc";
  sharded.params = TestParams();
  sharded.options = {{"sharding", "region"}, {"shards", "4"}};
  const auto first = server.Submit(sharded).get();
  CHECK(first.status.ok());
  CHECK(!first.cache_hit);

  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  CHECK(dpc::test::BitIdenticalLabels(
      first.result->label, algo.value()->Run(points, sharded.params).label));

  // The unsharded spelling of the same compute config is a cache hit —
  // sharding is an execution detail, not an identity.
  dpc::serve::ClusterRequest plain = sharded;
  plain.options.clear();
  const auto second = server.Submit(plain).get();
  CHECK(second.status.ok());
  CHECK(second.cache_hit);
  CHECK(second.result.get() == first.result.get());
}

void TestCoherentStatsSnapshot() {
  // The cross-field invariant the telemetry refactor exists to make
  // observable: every cache lookup is classified exactly once, and
  // stats() copies counters AND occupancy under ONE lock, so
  // lookups == solution_hits + warm_misses + solution_misses holds in
  // every snapshot — including snapshots raced against live traffic.
  const dpc::PointSet points = TestPoints();
  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  options.memory_budget_bytes = 4u << 20;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);

  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const dpc::serve::ServerStats s = server.stats();
      const dpc::serve::SolutionCache::Stats& c = s.cache;
      CHECK_EQ(c.lookups, c.solution_hits + c.warm_misses + c.solution_misses);
    }
  });
  for (int i = 0; i < 6; ++i) {
    dpc::serve::ClusterRequest request;
    request.dataset = "pts";
    request.algorithm = "ex-dpc";
    request.params = TestParams(1500.0 + 250.0 * (i % 3));
    CHECK(server.Submit(request).get().status.ok());
  }
  stop.store(true, std::memory_order_relaxed);
  observer.join();

  const dpc::serve::ServerStats quiesced = server.stats();
  CHECK(quiesced.cache.lookups > 0);
  CHECK_EQ(quiesced.cache.lookups,
           quiesced.cache.solution_hits + quiesced.cache.warm_misses +
               quiesced.cache.solution_misses);
  // The flat legacy fields are views of the same snapshot.
  CHECK_EQ(quiesced.warm_misses, quiesced.cache.warm_misses);
  CHECK_EQ(quiesced.promotions, quiesced.cache.promotions);
}

void TestServerMetricsSurface() {
  // The registry view must agree with ServerStats, and latency
  // histograms must cover every completed request with finite tails.
  const dpc::PointSet points = TestPoints();
  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  options.memory_budget_bytes = 4u << 20;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);

  dpc::serve::ClusterRequest request;
  request.dataset = "pts";
  request.algorithm = "ex-dpc";
  request.params = TestParams();
  CHECK(server.Submit(request).get().status.ok());
  CHECK(server.Submit(request).get().cache_hit);

  const std::vector<dpc::obs::MetricSample> samples =
      server.metrics().Snapshot();
  auto find = [&](const std::string& name) -> const dpc::obs::MetricSample* {
    for (const dpc::obs::MetricSample& s : samples) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const dpc::obs::MetricSample* submitted = find("dpc_requests_total");
  const dpc::obs::MetricSample* completed = find("dpc_requests_completed_total");
  const dpc::obs::MetricSample* hits = find("dpc_cache_hits_total");
  const dpc::obs::MetricSample* lookups = find("dpc_cache_lookups_total");
  const dpc::obs::MetricSample* latency = find("dpc_request_latency_seconds");
  CHECK(submitted != nullptr && completed != nullptr && hits != nullptr &&
        lookups != nullptr && latency != nullptr);
  CHECK_EQ(submitted->value, 2.0);
  CHECK_EQ(completed->value, 2.0);
  CHECK_EQ(hits->value, 1.0);
  // The collector publishes the same coherent cache snapshot stats() uses.
  const dpc::obs::MetricSample* sol_hits = find("dpc_cache_solution_hits_total");
  const dpc::obs::MetricSample* sol_misses =
      find("dpc_cache_solution_misses_total");
  const dpc::obs::MetricSample* warm = find("dpc_cache_warm_misses_total");
  CHECK(sol_hits != nullptr && sol_misses != nullptr && warm != nullptr);
  CHECK_EQ(lookups->value, sol_hits->value + sol_misses->value + warm->value);
  // Both requests flowed through the latency recorder; tails are finite.
  CHECK_EQ(latency->histogram.count, uint64_t{2});
  CHECK(std::isfinite(latency->histogram.Percentile(99.0)));
  CHECK(latency->histogram.Percentile(50.0) > 0.0);

  // The exposition formats render this registry without tripping.
  const std::string text = dpc::obs::ToPrometheusText(samples);
  CHECK(text.find("dpc_requests_total 2") != std::string::npos);
  const std::string json = dpc::obs::ToJson(samples);
  CHECK(json.find("\"dpc_requests_total\":2") != std::string::npos);

  // The kernel-tier info gauge: labels ride inside the sample name. The
  // TYPE line must carry the bare family name, the sample line the full
  // labeled name, and the JSON key must escape the embedded quotes (the
  // CI telemetry session feeds this line to a real JSON parser).
  std::string tier_name = "dpc_kernel_tier_info{dispatch=\"";
  tier_name += dpc::kernels::DispatchName();
  tier_name += "\",tier=\"";
  tier_name += dpc::kernels::ActiveTierName();
  tier_name += "\"}";
  const dpc::obs::MetricSample* tier_info = find(tier_name);
  CHECK(tier_info != nullptr);
  CHECK_EQ(tier_info->value, 1.0);
  CHECK(text.find("# TYPE dpc_kernel_tier_info gauge\n") != std::string::npos);
  CHECK(text.find(tier_name + " 1") != std::string::npos);
  CHECK(json.find("dpc_kernel_tier_info{dispatch=\\\"") != std::string::npos);
}

void TestServerTraceSpans() {
  // With a trace attached, one computed request must produce a span tree
  // whose solve children (re-tiled from DpcStats laps plus the stamp
  // tail) account for the solve span's wall time, and whose spans all
  // parent back to the root "request" span.
  const dpc::PointSet points = TestPoints(17, 1000);
  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  options.memory_budget_bytes = 0;  // force a real computation
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);
  const auto trace = std::make_shared<dpc::obs::Trace>();
  server.set_trace(trace);

  dpc::serve::ClusterRequest request;
  request.dataset = "pts";
  request.algorithm = "ex-dpc";
  request.params = TestParams();
  CHECK(server.Submit(request).get().status.ok());
  server.set_trace(nullptr);
  server.Shutdown();  // joins the executor: the root span is recorded

  const std::vector<dpc::obs::SpanRecord> spans = trace->Snapshot();
  const dpc::obs::SpanRecord* request_span = nullptr;
  const dpc::obs::SpanRecord* solve = nullptr;
  bool saw_queue_wait = false;
  for (const dpc::obs::SpanRecord& span : spans) {
    if (std::string(span.name) == "request") request_span = &span;
    if (std::string(span.name) == "solve") solve = &span;
    if (std::string(span.name) == "queue-wait") saw_queue_wait = true;
  }
  CHECK(request_span != nullptr);
  CHECK(solve != nullptr);
  CHECK(saw_queue_wait);
  CHECK_EQ(solve->parent, request_span->id);

  // Children of the solve span tile its interval: their summed duration
  // lands within 20% of the solve wall time (the acceptance bound).
  double children_seconds = 0.0;
  size_t solve_children = 0;
  for (const dpc::obs::SpanRecord& span : spans) {
    if (span.parent == solve->id) {
      ++solve_children;
      children_seconds += span.duration_seconds();
      CHECK(span.start_ns >= solve->start_ns);
      CHECK(span.end_ns <= solve->end_ns + 1000000);  // 1ms slack
    }
  }
  CHECK(solve_children >= 2);  // at least rho/delta phases + stamp
  const double solve_seconds = solve->duration_seconds();
  CHECK(children_seconds >= 0.8 * solve_seconds);
  CHECK(children_seconds <= 1.2 * solve_seconds);

  // The dump round-trips as a structurally valid Chrome trace array.
  const std::string json = trace->ToChromeJson();
  CHECK(json.front() == '[');
  CHECK(json.find("\"name\":\"request\"") != std::string::npos);
}

}  // namespace

int main() {
  TestFingerprintAndRegistry();
  TestSolutionCacheTwoTier();
  TestSolutionCacheCostAwareEviction();
  TestSolutionCacheByteBudget();
  TestCacheStoreDemotePromote();
  TestPlanShardWidthProfiles();
  TestSolutionKey();
  TestAdmissionQueuePriority();
  TestServerEndToEnd();
  TestRethresholdAndGraphRequests();
  TestMixedDeadlineBatch();
  TestErrorPaths();
  TestConcurrentSubmissions();
  TestConcurrentExecutionOverlap();
  TestShardedRequestsShareCacheKey();
  TestServerStoreStats();
  TestCoherentStatsSnapshot();
  TestServerMetricsSurface();
  TestServerTraceSpans();
  std::printf("serve_test OK\n");
  return 0;
}
