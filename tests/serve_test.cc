// The serve/ subsystem: dataset fingerprint stability, result-cache
// hit/miss + deterministic LRU eviction, cache-key canonicalization,
// admission-queue priority order, end-to-end serving (responses
// bit-identical to direct Run), mixed-deadline batches, error paths, and
// concurrent submissions (the TSan CI job runs this binary).
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "data/generators.h"
#include "serve/dataset_registry.h"
#include "serve/request.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "tests/test_util.h"

namespace {

dpc::PointSet TestPoints(uint64_t seed = 11, dpc::PointId n = 600) {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = n;
  gen.num_clusters = 3;
  gen.seed = seed;
  return dpc::data::GaussianBenchmark(gen);
}

dpc::DpcParams TestParams(double d_cut = 2000.0) {
  dpc::DpcParams params;
  params.d_cut = d_cut;
  params.rho_min = 2.0;
  params.delta_min = 4.0 * d_cut;
  return params;
}

void TestFingerprintAndRegistry() {
  const dpc::PointSet points = TestPoints();

  // Content-determined: same bytes -> same fingerprint, including via a
  // copy registered under another name; any coordinate change diverges.
  const uint64_t fp = dpc::serve::FingerprintPoints(points);
  CHECK_EQ(dpc::serve::FingerprintPoints(points), fp);
  dpc::PointSet perturbed = points;
  perturbed.MutablePoint(0)[0] += 1.0;
  CHECK(dpc::serve::FingerprintPoints(perturbed) != fp);
  // Same coordinate multiset, different order -> different content.
  dpc::PointSet swapped(points.dim());
  swapped.Add(points[1]);
  swapped.Add(points[0]);
  dpc::PointSet forward(points.dim());
  forward.Add(points[0]);
  forward.Add(points[1]);
  CHECK(dpc::serve::FingerprintPoints(swapped) !=
        dpc::serve::FingerprintPoints(forward));

  dpc::serve::DatasetRegistry registry;
  CHECK_EQ(registry.Register("a", points), fp);
  CHECK_EQ(registry.Register("b", points), fp);  // alias, same content
  CHECK_EQ(registry.size(), 2u);

  const auto found = registry.Find("a");
  CHECK(found != nullptr);
  CHECK_EQ(found->fingerprint, fp);
  CHECK_EQ(found->points.size(), points.size());
  CHECK(registry.Find("nope") == nullptr);

  // A replaced handle leaves earlier holders' entry alive and intact.
  CHECK(registry.Register("a", perturbed) != fp);
  CHECK_EQ(found->fingerprint, fp);
  CHECK(registry.Find("a")->fingerprint != fp);

  CHECK(registry.Unregister("b"));
  CHECK(!registry.Unregister("b"));
  CHECK_EQ(registry.size(), 1u);
}

void TestResultCache() {
  auto result_with_clusters = [](int64_t k) {
    auto r = std::make_shared<dpc::DpcResult>();
    r->centers.assign(static_cast<size_t>(k), dpc::PointId{0});
    return std::shared_ptr<const dpc::DpcResult>(std::move(r));
  };

  dpc::serve::ResultCache cache(2);
  CHECK(cache.enabled());
  CHECK(cache.Lookup("a") == nullptr);
  cache.Insert("a", result_with_clusters(1));
  cache.Insert("b", result_with_clusters(2));
  CHECK_EQ(cache.size(), 2u);

  // Touching "a" makes "b" the LRU victim of the next insert —
  // deterministic eviction order.
  CHECK(cache.Lookup("a") != nullptr);
  cache.Insert("c", result_with_clusters(3));
  CHECK(cache.Lookup("b") == nullptr);
  CHECK_EQ(cache.Lookup("a")->num_clusters(), 1);
  CHECK_EQ(cache.Lookup("c")->num_clusters(), 3);
  CHECK(cache.KeysByRecency() == (std::vector<std::string>{"c", "a"}));

  // Re-insert refreshes value and recency without growing.
  cache.Insert("a", result_with_clusters(4));
  CHECK_EQ(cache.size(), 2u);
  CHECK_EQ(cache.Lookup("a")->num_clusters(), 4);

  const auto stats = cache.stats();
  CHECK_EQ(stats.evictions, 1u);
  CHECK_EQ(stats.misses, 2u);  // initial "a", evicted "b"

  // Capacity 0 disables caching entirely.
  dpc::serve::ResultCache off(0);
  CHECK(!off.enabled());
  off.Insert("a", result_with_clusters(1));
  CHECK(off.Lookup("a") == nullptr);
  CHECK_EQ(off.size(), 0u);
}

void TestCacheKey() {
  const dpc::DpcParams params = TestParams();
  // Differently spelled but semantically identical options -> one key.
  dpc::OptionsMap spelled_a{{"num_tables", "08"}, {"bucket_width_factor", "0.50"}};
  dpc::OptionsMap spelled_b{{"bucket_width_factor", "5e-1"}, {"num_tables", "8"}};
  CHECK(dpc::serve::MakeCacheKey(1, "lsh-ddp", spelled_a, params) ==
        dpc::serve::MakeCacheKey(1, "lsh-ddp", spelled_b, params));

  // Every key component discriminates.
  const std::string base =
      dpc::serve::MakeCacheKey(1, "lsh-ddp", spelled_a, params);
  CHECK(dpc::serve::MakeCacheKey(2, "lsh-ddp", spelled_a, params) != base);
  CHECK(dpc::serve::MakeCacheKey(1, "ex-dpc", spelled_a, params) != base);
  CHECK(dpc::serve::MakeCacheKey(1, "lsh-ddp", {}, params) != base);
  dpc::DpcParams other = params;
  other.d_cut *= 2.0;
  other.delta_min *= 2.0;
  CHECK(dpc::serve::MakeCacheKey(1, "lsh-ddp", spelled_a, other) != base);

  // Execution policy is NOT part of the key (labels are thread-count and
  // strategy independent by the determinism contract): neither the
  // deprecated num_threads nor the "scheduler" option discriminates.
  dpc::DpcParams threaded = params;
  threaded.num_threads = 7;
  CHECK(dpc::serve::MakeCacheKey(1, "lsh-ddp", spelled_a, threaded) == base);
  dpc::OptionsMap with_scheduler = spelled_a;
  with_scheduler["scheduler"] = "static";
  CHECK(dpc::serve::MakeCacheKey(1, "lsh-ddp", with_scheduler, params) == base);
  with_scheduler["scheduler"] = "lpt";
  CHECK(dpc::serve::MakeCacheKey(1, "lsh-ddp", with_scheduler, params) == base);
}

void TestAdmissionQueuePriority() {
  dpc::serve::AdmissionQueue queue;
  auto push = [&](int priority) {
    dpc::serve::ClusterRequest request;
    request.dataset = "d";
    request.priority = priority;
    return queue.Push(std::move(request));
  };
  // Futures must outlive the queue pop (promises travel with the
  // submissions).
  std::vector<std::future<dpc::serve::ClusterResponse>> futures;
  futures.push_back(push(0));
  futures.push_back(push(5));
  futures.push_back(push(1));
  futures.push_back(push(5));

  auto batch = queue.PopBatch(3, std::chrono::milliseconds(0));
  CHECK_EQ(batch.size(), 3u);
  // (priority desc, admission order asc): the two 5s in arrival order,
  // then the 1.
  CHECK_EQ(batch[0].request.priority, 5);
  CHECK_EQ(batch[0].seq, 1u);
  CHECK_EQ(batch[1].request.priority, 5);
  CHECK_EQ(batch[1].seq, 3u);
  CHECK_EQ(batch[2].request.priority, 1);
  CHECK_EQ(queue.pending(), 1u);

  queue.Shutdown();
  auto rest = queue.PopBatch(3, std::chrono::milliseconds(0));
  CHECK_EQ(rest.size(), 1u);
  CHECK_EQ(rest[0].request.priority, 0);
  CHECK(queue.PopBatch(3, std::chrono::milliseconds(0)).empty());
}

void TestServerEndToEnd() {
  const dpc::PointSet points = TestPoints();
  const dpc::DpcParams params = TestParams();

  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  options.cache_capacity = 1;  // tiny, to also exercise server-level eviction
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);

  dpc::serve::ClusterRequest request;
  request.dataset = "pts";
  request.algorithm = "ex-dpc";
  request.params = params;

  // Miss -> computed; identical resubmission -> cache hit aliasing the
  // same immutable result; both bit-identical to a direct Run.
  const auto first = server.Submit(request).get();
  CHECK(first.status.ok());
  CHECK(!first.cache_hit);
  const auto second = server.Submit(request).get();
  CHECK(second.status.ok());
  CHECK(second.cache_hit);
  CHECK(second.result.get() == first.result.get());
  CHECK_EQ(second.run_seconds, 0.0);

  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  CHECK(algo.ok());
  const dpc::DpcResult direct = algo.value()->Run(points, params);
  CHECK(first.result->label == direct.label);
  CHECK(first.result->centers == direct.centers);
  CHECK(first.result->dependency == direct.dependency);

  // A different configuration evicts the capacity-1 cache; the original
  // then recomputes (deterministically the same labels).
  dpc::serve::ClusterRequest other = request;
  other.params.d_cut *= 1.5;
  other.params.delta_min *= 1.5;
  CHECK(!server.Submit(other).get().cache_hit);
  const auto recomputed = server.Submit(request).get();
  CHECK(recomputed.status.ok());
  CHECK(!recomputed.cache_hit);
  CHECK(recomputed.result->label == direct.label);

  // The deprecated per-request thread knob must not change the outcome
  // (the server owns execution policy) — and must hit the same cache key.
  dpc::serve::ClusterRequest threaded = request;
  threaded.params.num_threads = 1;
  CHECK(server.Submit(threaded).get().cache_hit);

  const auto stats = server.stats();
  CHECK_EQ(stats.submitted, 5u);
  CHECK_EQ(stats.completed, 5u);
  CHECK_EQ(stats.cache_hits, 2u);
  CHECK_EQ(stats.errors, 0u);
}

void TestMixedDeadlineBatch() {
  const dpc::PointSet points = TestPoints();

  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  options.cache_capacity = 0;  // force both survivors to really run
  options.batch_window = std::chrono::milliseconds(20);
  options.max_batch = 8;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);

  // One request whose budget (1ns) cannot survive even admission, two
  // healthy ones — submitted back-to-back so the window batches them.
  dpc::serve::ClusterRequest doomed;
  doomed.dataset = "pts";
  doomed.algorithm = "ex-dpc";
  doomed.params = TestParams();
  doomed.deadline = std::chrono::nanoseconds(1);
  dpc::serve::ClusterRequest healthy1 = doomed;
  healthy1.deadline = {};
  dpc::serve::ClusterRequest healthy2 = healthy1;
  healthy2.params = TestParams(3000.0);

  auto f_doomed = server.Submit(doomed);
  auto f1 = server.Submit(healthy1);
  auto f2 = server.Submit(healthy2);

  const auto r_doomed = f_doomed.get();
  CHECK(r_doomed.status.code() == dpc::StatusCode::kDeadlineExceeded);
  CHECK(r_doomed.result == nullptr);

  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  const auto r1 = f1.get();
  CHECK(r1.status.ok());
  CHECK(r1.result->label == algo.value()->Run(points, healthy1.params).label);
  const auto r2 = f2.get();
  CHECK(r2.status.ok());
  CHECK(r2.result->label == algo.value()->Run(points, healthy2.params).label);

  CHECK_EQ(server.stats().deadline_exceeded, 1u);
}

void TestErrorPaths() {
  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", TestPoints());

  dpc::serve::ClusterRequest request;
  request.dataset = "pts";
  request.algorithm = "ex-dpc";
  request.params = TestParams();

  // Validation failures resolve immediately.
  dpc::serve::ClusterRequest no_dataset = request;
  no_dataset.dataset.clear();
  CHECK(server.Submit(no_dataset).get().status.code() ==
        dpc::StatusCode::kInvalidArgument);
  dpc::serve::ClusterRequest bad_params = request;
  bad_params.params.d_cut = -1.0;
  CHECK(server.Submit(bad_params).get().status.code() ==
        dpc::StatusCode::kInvalidArgument);

  // Execution-time failures come back through the future.
  dpc::serve::ClusterRequest unknown_dataset = request;
  unknown_dataset.dataset = "nope";
  CHECK(server.Submit(unknown_dataset).get().status.code() ==
        dpc::StatusCode::kNotFound);
  dpc::serve::ClusterRequest unknown_algo = request;
  unknown_algo.algorithm = "nope";
  CHECK(server.Submit(unknown_algo).get().status.code() ==
        dpc::StatusCode::kNotFound);
  dpc::serve::ClusterRequest bad_option = request;
  bad_option.options["no_such_knob"] = "1";
  CHECK(server.Submit(bad_option).get().status.code() ==
        dpc::StatusCode::kInvalidArgument);

  // Options validate before the cache is consulted: a spelling the
  // reader rejects ("1e1" for an int) must fail even when a valid
  // spelling of the same canonical config already warmed the cache.
  dpc::serve::ClusterRequest lsh = request;
  lsh.algorithm = "lsh-ddp";
  lsh.options["num_tables"] = "10";
  CHECK(server.Submit(lsh).get().status.ok());
  dpc::serve::ClusterRequest lsh_bad = lsh;
  lsh_bad.options["num_tables"] = "1e1";
  CHECK(server.Submit(lsh_bad).get().status.code() ==
        dpc::StatusCode::kInvalidArgument);

  // Requests already admitted still complete across Shutdown; later
  // submissions are rejected as cancelled.
  auto inflight = server.Submit(request);
  server.Shutdown();
  CHECK(inflight.get().status.ok());
  CHECK(server.Submit(request).get().status.code() ==
        dpc::StatusCode::kCancelled);
}

void TestConcurrentSubmissions() {
  const dpc::PointSet points = TestPoints(13, 800);

  dpc::serve::ServerOptions options;
  options.pool_threads = 2;
  options.cache_capacity = 8;
  dpc::serve::ClusterServer server(options);
  server.datasets().Register("pts", points);

  // Expected labels per config, computed directly.
  const std::vector<dpc::DpcParams> configs = {TestParams(2000.0),
                                               TestParams(2500.0)};
  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  std::vector<std::vector<int64_t>> expected;
  for (const auto& params : configs) {
    expected.push_back(algo.value()->Run(points, params).label);
  }

  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kPerClient; ++q) {
        const size_t which = static_cast<size_t>((c + q) % 2);
        dpc::serve::ClusterRequest request;
        request.dataset = "pts";
        request.algorithm = "ex-dpc";
        request.params = configs[which];
        const auto response = server.Submit(std::move(request)).get();
        if (!response.status.ok() ||
            response.result->label != expected[which]) {
          ++failures[static_cast<size_t>(c)];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const int f : failures) CHECK_EQ(f, 0);

  const auto stats = server.stats();
  CHECK_EQ(stats.submitted, static_cast<uint64_t>(kClients * kPerClient));
  CHECK_EQ(stats.completed, static_cast<uint64_t>(kClients * kPerClient));
  // 2 distinct configurations -> at most 2 real computations... unless a
  // burst races past the first insert; either way hits dominate.
  CHECK(stats.cache_hits >= static_cast<uint64_t>(kClients * kPerClient - 2));
  CHECK_EQ(stats.errors, 0u);
}

}  // namespace

int main() {
  TestFingerprintAndRegistry();
  TestResultCache();
  TestCacheKey();
  TestAdmissionQueuePriority();
  TestServerEndToEnd();
  TestMixedDeadlineBatch();
  TestErrorPaths();
  TestConcurrentSubmissions();
  std::printf("serve_test OK\n");
  return 0;
}
