// The registry's contract after the full menu landed: every registered
// name constructs and runs end-to-end (no residual UNIMPLEMENTED slots),
// and unknown names still fail with NotFound plus the menu string.
#include <cstdio>
#include <string>
#include <vector>

#include "core/registry.h"
#include "data/generators.h"
#include "tests/test_util.h"

int main() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 200;
  gen.num_clusters = 3;
  gen.overlap = 0.01;
  gen.seed = 5;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);

  dpc::DpcParams params;
  params.d_cut = 4000.0;
  params.rho_min = 2.0;
  params.delta_min = 15000.0;
  params.num_threads = 2;

  // The paper's full menu; new algorithms join the loop below
  // automatically.
  const std::vector<std::string> names = dpc::RegisteredAlgorithmNames();
  CHECK(names.size() >= 7u);

  for (const std::string& name : names) {
    auto algo = dpc::MakeAlgorithmByName(name);
    if (!algo.ok()) {
      std::fprintf(stderr, "'%s' failed to construct: %s\n", name.c_str(),
                   algo.status().ToString().c_str());
      return 1;
    }
    const dpc::DpcResult result = algo.value()->Run(points, params);
    CHECK_EQ(result.label.size(), static_cast<size_t>(points.size()));
    CHECK_EQ(result.rho.size(), static_cast<size_t>(points.size()));
    CHECK_EQ(result.delta.size(), static_cast<size_t>(points.size()));
    CHECK_EQ(result.dependency.size(), static_cast<size_t>(points.size()));
    CHECK(result.num_clusters() >= 1);
    for (const int64_t label : result.label) {
      CHECK(label >= dpc::kUnassigned && label < result.num_clusters());
    }
    std::printf("%-12s -> %s, %lld clusters\n", name.c_str(),
                std::string(algo.value()->name()).c_str(),
                static_cast<long long>(result.num_clusters()));
  }

  // Options-map construction (API v2): typed keys wire through; unknown
  // keys and malformed values fail with InvalidArgument naming the key.
  {
    auto tuned = dpc::MakeAlgorithmByName(
        "approx-dpc", {{"joint_range_search", "false"}, {"scheduler", "static"}});
    CHECK(tuned.ok());
    const dpc::DpcResult r = tuned.value()->Run(points, params);
    CHECK_EQ(r.label.size(), static_cast<size_t>(points.size()));
    CHECK(r.num_clusters() >= 1);

    auto lsh = dpc::MakeAlgorithmByName(
        "lsh-ddp", {{"num_tables", "6"}, {"num_bits", "5"}});
    CHECK(lsh.ok());
    CHECK(lsh.value()->Run(points, params).num_clusters() >= 1);

    auto bad_key = dpc::MakeAlgorithmByName("ex-dpc", {{"nope", "1"}});
    CHECK(!bad_key.ok());
    CHECK(bad_key.status().code() == dpc::StatusCode::kInvalidArgument);
    CHECK(bad_key.status().message().find("nope") != std::string::npos);

    auto bad_value = dpc::MakeAlgorithmByName(
        "approx-dpc", {{"joint_range_search", "maybe"}});
    CHECK(!bad_value.ok());
    CHECK(bad_value.status().code() == dpc::StatusCode::kInvalidArgument);

    auto bad_range = dpc::MakeAlgorithmByName("cfsfdp-a", {{"sample_rate", "2"}});
    CHECK(!bad_range.ok());

    // The CLI's --opt grammar.
    auto parsed = dpc::ParseOptionList({"num_tables=6", "num_bits=5"});
    CHECK(parsed.ok());
    CHECK_EQ(parsed.value().size(), 2u);
    CHECK(!dpc::ParseOptionList({"no-equals-sign"}).ok());
  }

  // Unknown names: NotFound, and the message lists the menu.
  auto missing = dpc::MakeAlgorithmByName("no-such-algorithm");
  CHECK(!missing.ok());
  CHECK(missing.status().code() == dpc::StatusCode::kNotFound);
  const std::string& message = missing.status().message();
  CHECK(message.find("expected one of") != std::string::npos);
  for (const std::string& name : names) {
    CHECK(message.find(name) != std::string::npos);
  }

  std::printf("registry_test OK\n");
  return 0;
}
