// The §4.5 LPT scheduler: balance quality against the hash-partition
// strawman on skewed cost vectors, deterministic assignment, and the
// empty/single-cell edge cases.
#include <cstdio>
#include <vector>

#include "parallel/lpt_scheduler.h"
#include "tests/test_util.h"

namespace {

// Every item appears in exactly one bin, and load[] matches the costs.
void CheckWellFormed(const dpc::Schedule& s, const std::vector<double>& costs,
                     int expected_bins) {
  CHECK_EQ(s.num_bins(), expected_bins);
  CHECK_EQ(s.load.size(), static_cast<size_t>(expected_bins));
  std::vector<int> times_assigned(costs.size(), 0);
  double max_load = 0.0;
  for (int t = 0; t < s.num_bins(); ++t) {
    double load = 0.0;
    for (const int64_t item : s.bins[static_cast<size_t>(t)]) {
      CHECK(item >= 0 && item < static_cast<int64_t>(costs.size()));
      ++times_assigned[static_cast<size_t>(item)];
      load += costs[static_cast<size_t>(item)];
    }
    CHECK_NEAR(load, s.load[static_cast<size_t>(t)], 1e-9);
    if (load > max_load) max_load = load;
  }
  for (const int assigned : times_assigned) CHECK_EQ(assigned, 1);
  CHECK_NEAR(s.makespan, max_load, 1e-9);
}

}  // namespace

int main() {
  // Skewed costs: one giant cell plus a Zipf-ish tail — the dense-cell
  // shape the grid produces on clustered data.
  std::vector<double> costs;
  for (int i = 0; i < 400; ++i) costs.push_back(1000.0 / (1 + i));

  for (const int threads : {2, 8, 16}) {
    const dpc::Schedule lpt = dpc::LptSchedule(costs, threads);
    const dpc::Schedule hash = dpc::HashSchedule(costs, threads);
    CheckWellFormed(lpt, costs, threads);
    CheckWellFormed(hash, costs, threads);

    // The satellite contract: LPT's makespan/mean never exceeds the
    // hash partitioning's on this skewed vector.
    CHECK(lpt.Imbalance() <= hash.Imbalance() + 1e-9);
    // Makespan lower bounds: the mean load and the largest single item.
    CHECK(lpt.makespan >= lpt.MeanLoad() - 1e-9);
    CHECK(lpt.makespan >= costs[0] - 1e-9);
    std::printf("threads=%2d  LPT %.4f  hash %.4f (makespan/mean)\n", threads,
                lpt.Imbalance(), hash.Imbalance());
  }

  // Deterministic: a fixed cost vector always yields the same assignment.
  {
    const dpc::Schedule a = dpc::LptSchedule(costs, 8);
    const dpc::Schedule b = dpc::LptSchedule(costs, 8);
    CHECK(a.bins == b.bins);
    CHECK(a.load == b.load);
  }

  // Equal costs tie-break deterministically too (items in id order).
  {
    const std::vector<double> flat(16, 1.0);
    const dpc::Schedule a = dpc::LptSchedule(flat, 4);
    CHECK(a.bins == dpc::LptSchedule(flat, 4).bins);
    CHECK_NEAR(a.Imbalance(), 1.0, 1e-9);  // 16 equal items over 4 bins
  }

  // Empty cost vector: all bins exist, all empty, perfect "balance".
  {
    const dpc::Schedule empty = dpc::LptSchedule({}, 4);
    CheckWellFormed(empty, {}, 4);
    CHECK_EQ(empty.makespan, 0.0);
    CHECK_NEAR(empty.Imbalance(), 1.0, 1e-9);
  }

  // Single cell: exactly one bin carries it; makespan equals its cost.
  {
    const std::vector<double> one = {5.0};
    const dpc::Schedule s = dpc::LptSchedule(one, 4);
    CheckWellFormed(s, one, 4);
    CHECK_EQ(s.makespan, 5.0);
    CHECK_EQ(s.bins[0].size(), 1u);  // load ties pick the smallest bin id
  }

  // Degenerate bin counts clamp to 1.
  {
    const dpc::Schedule s = dpc::LptSchedule(costs, 0);
    CheckWellFormed(s, costs, 1);
    CHECK_NEAR(s.makespan, s.TotalLoad(), 1e-9);
  }

  // More bins than items: extras stay empty, nothing is lost.
  {
    const std::vector<double> few = {3.0, 1.0};
    const dpc::Schedule s = dpc::LptSchedule(few, 8);
    CheckWellFormed(s, few, 8);
    CHECK_EQ(s.makespan, 3.0);
  }

  std::printf("lpt_scheduler_test OK\n");
  return 0;
}
