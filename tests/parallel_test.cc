// The parallel/ layer underneath API v2: ThreadPool task-execution
// guarantees, ParallelFor/ParallelForWithCosts coverage under every
// strategy, the shared default pool, and ExecutionContext
// deadline/cancellation semantics.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/scan_dpc.h"
#include "core/ex_dpc.h"
#include "data/generators.h"
#include "parallel/execution_context.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "tests/test_util.h"

int main() {
  // ThreadPool: every task runs exactly once, across many reused regions
  // (the pool must not leak state between Run calls).
  {
    dpc::ThreadPool pool(4);
    CHECK_EQ(pool.size(), 4);
    for (int round = 0; round < 100; ++round) {
      std::vector<int> hits(257, 0);
      pool.Run(257, [&](int64_t t) { hits[static_cast<size_t>(t)] += 1; });
      for (const int h : hits) CHECK_EQ(h, 1);
    }
    // Degenerate task counts.
    pool.Run(0, [](int64_t) { CHECK(false); });
    int once = 0;
    pool.Run(1, [&](int64_t) { ++once; });
    CHECK_EQ(once, 1);
    // Nested Run degrades to inline serial execution, no deadlock.
    std::atomic<int> nested{0};
    pool.Run(4, [&](int64_t) {
      pool.Run(8, [&](int64_t) { nested.fetch_add(1); });
    });
    CHECK_EQ(nested.load(), 32);
  }

  // ParallelFor and ParallelForWithCosts: exact coverage under every
  // strategy x thread count, on one shared pool.
  {
    auto pool = std::make_shared<dpc::ThreadPool>(4);
    for (const auto strategy :
         {dpc::ScheduleStrategy::kStatic, dpc::ScheduleStrategy::kDynamic,
          dpc::ScheduleStrategy::kCostGuided}) {
      for (const int threads : {1, 2, 4}) {
        const dpc::ExecutionContext ctx(threads, strategy, pool);
        CHECK_EQ(ctx.threads(), threads);

        std::vector<int> seen(10000, 0);
        dpc::ParallelFor(ctx, 10000, [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) seen[static_cast<size_t>(i)]++;
        });
        for (const int s : seen) CHECK_EQ(s, 1);

        std::vector<double> costs(500);
        for (size_t i = 0; i < costs.size(); ++i) {
          costs[i] = 1000.0 / static_cast<double>(1 + i);  // skewed
        }
        std::vector<int> item_seen(costs.size(), 0);
        dpc::ParallelForWithCosts(ctx, costs, [&](int64_t item) {
          item_seen[static_cast<size_t>(item)]++;
        });
        for (const int s : item_seen) CHECK_EQ(s, 1);
      }
    }
  }

  // Default-constructed contexts share one process-wide pool (pool
  // reuse is the point of the redesign), and WithThreads/WithStrategy
  // copies keep sharing it.
  {
    const dpc::ExecutionContext a;
    const dpc::ExecutionContext b;
    CHECK(a.shared_pool().get() == b.shared_pool().get());
    CHECK(a.WithThreads(2).shared_pool().get() == a.shared_pool().get());
    CHECK_EQ(a.WithThreads(2).threads(), 2);
    CHECK(a.WithStrategy(dpc::ScheduleStrategy::kDynamic).strategy() ==
          dpc::ScheduleStrategy::kDynamic);
    // Default policy: unspecified thread count, cost-guided scheduling.
    CHECK_EQ(a.num_threads(), 0);
    CHECK(a.strategy() == dpc::ScheduleStrategy::kCostGuided);
  }

  // Cancellation propagates to every copy (algorithms run on a resolved
  // copy, so RequestCancel on the caller's context must reach it).
  {
    const dpc::ExecutionContext ctx(2);
    const dpc::ExecutionContext copy = ctx.WithThreads(4);
    CHECK(!ctx.ShouldStop());
    ctx.RequestCancel();
    CHECK(ctx.ShouldStop());
    CHECK(copy.ShouldStop());
  }

  // An expired deadline stops the run — including copies made BEFORE the
  // deadline was set (the deadline lives in the shared stop state, like
  // the cancel flag, so bounding an already-running clone works).
  {
    dpc::ExecutionContext ctx;
    const dpc::ExecutionContext copy = ctx.WithThreads(2);
    CHECK(!copy.ShouldStop());
    ctx.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::seconds(1));
    CHECK(ctx.ShouldStop());
    CHECK(copy.ShouldStop());
    dpc::ExecutionContext fresh;
    fresh.set_deadline_after(std::chrono::hours(1));
    CHECK(!fresh.ShouldStop());
  }

  // Mid-loop cancellation (amortized ShouldStop polling): a cancel fired
  // from inside the loop stops both loop shapes well before full
  // coverage, under every strategy and even on the serial path.
  {
    auto pool = std::make_shared<dpc::ThreadPool>(2);
    const int64_t n = int64_t{1} << 20;
    for (const auto strategy :
         {dpc::ScheduleStrategy::kStatic, dpc::ScheduleStrategy::kDynamic,
          dpc::ScheduleStrategy::kCostGuided}) {
      for (const int threads : {1, 2}) {
        const dpc::ExecutionContext ctx(threads, strategy, pool);
        std::atomic<int64_t> visited{0};
        dpc::ParallelFor(ctx, n, [&](int64_t begin, int64_t end) {
          visited.fetch_add(end - begin);
          ctx.RequestCancel();
        });
        CHECK(visited.load() > 0);
        CHECK(visited.load() < n / 2);  // stopped mid-phase, not at the end

        // The cancel is confined to ctx's stop state: a fresh-stop-state
        // sibling still covers every item.
        std::vector<double> costs(8192, 1.0);
        std::atomic<int64_t> items{0};
        dpc::ParallelForWithCosts(ctx.WithFreshStopState(), costs,
                                  [&](int64_t) { items.fetch_add(1); });
        CHECK_EQ(items.load(), static_cast<int64_t>(costs.size()));
      }
    }
    // ParallelForWithCosts stops between items once the context says so.
    const dpc::ExecutionContext ctx(2, dpc::ScheduleStrategy::kDynamic, pool);
    std::vector<double> costs(8192, 1.0);
    std::atomic<int64_t> items{0};
    dpc::ParallelForWithCosts(ctx, costs, [&](int64_t) {
      items.fetch_add(1);
      ctx.RequestCancel();
    });
    CHECK(items.load() > 0);
    CHECK(items.load() < static_cast<int64_t>(costs.size()));
  }

  // WithFreshStopState: derived per-request contexts share the pool but
  // not the stop state, in both directions.
  {
    const dpc::ExecutionContext base(2);
    const dpc::ExecutionContext derived = base.WithFreshStopState();
    CHECK(base.shared_pool().get() == derived.shared_pool().get());
    derived.RequestCancel();
    CHECK(derived.ShouldStop());
    CHECK(!base.ShouldStop());
    const dpc::ExecutionContext derived2 = base.WithFreshStopState();
    base.RequestCancel();
    CHECK(base.ShouldStop());
    CHECK(!derived2.ShouldStop());
  }

  // Budget re-arm (regression): a deadline armed as a RELATIVE budget via
  // set_deadline_after re-arms IN FULL on every WithFreshStopState copy,
  // measured from the copy's creation. Before the fix, a sub-context
  // derived after the parent's budget had burned inherited a dead clock
  // and stopped instantly — a shard spawned late in a request got zero
  // time. Absolute set_deadline deadlines are NOT inherited.
  {
    dpc::ExecutionContext base(2);
    base.set_deadline_after(std::chrono::milliseconds(150));
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    CHECK(base.ShouldStop());  // parent budget burned
    const dpc::ExecutionContext derived = base.WithFreshStopState();
    CHECK(!derived.ShouldStop());  // full budget, fresh clock
    const dpc::ExecutionContext grandchild = derived.WithFreshStopState();
    CHECK(!grandchild.ShouldStop());
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    CHECK(derived.ShouldStop());     // the re-armed budget still expires
    CHECK(grandchild.ShouldStop());  // and re-arms transitively

    dpc::ExecutionContext absolute(2);
    absolute.set_deadline(std::chrono::steady_clock::now() -
                          std::chrono::seconds(1));
    CHECK(absolute.ShouldStop());
    CHECK(!absolute.WithFreshStopState().ShouldStop());
  }

  // A cancelled run stops at the first phase boundary: interrupted stats,
  // every label kUnassigned, no centers.
  {
    dpc::data::GaussianBenchmarkParams gen;
    gen.num_points = 500;
    gen.num_clusters = 3;
    gen.seed = 11;
    const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);
    dpc::DpcParams params;
    params.d_cut = 2000.0;
    params.rho_min = 2.0;
    params.delta_min = 9000.0;

    dpc::ExecutionContext cancelled(2);
    cancelled.RequestCancel();
    dpc::ExDpc algo;
    const dpc::DpcResult result = algo.Run(points, params, cancelled);
    CHECK(result.stats.interrupted);
    CHECK_EQ(result.label.size(), static_cast<size_t>(points.size()));
    for (const int64_t label : result.label) CHECK_EQ(label, dpc::kUnassigned);
    CHECK_EQ(result.centers.size(), 0u);

    // The same run without cancellation completes normally.
    const dpc::DpcResult ok = algo.Run(points, params, dpc::ExecutionContext(2));
    CHECK(!ok.stats.interrupted);
    CHECK(ok.num_clusters() > 0);
  }

  // Quadratic-baseline cancellation latency: Scan's O(n) per-index work
  // polls ShouldStop INSIDE the inner distance loop (every
  // ~kDistanceEvalsPerPoll evaluations), so a cancel mid-phase returns
  // long before the old worst case — the remainder of one 1024-index
  // outer slice. Self-calibrating: the bound is measured on this
  // machine/build, so it holds under sanitizers and debug builds alike.
  {
    const dpc::PointId n = 20000;
    dpc::data::GaussianBenchmarkParams gen;
    gen.num_points = n;
    gen.num_clusters = 5;
    gen.seed = 23;
    const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);
    const int dim = points.dim();

    // Calibrate one old-granularity slice: 1024 outer indices x n inner
    // distance evaluations (what cancellation used to wait out).
    double slice_seconds = 0.0;
    {
      const auto begin = std::chrono::steady_clock::now();
      double sink = 0.0;
      for (dpc::PointId i = 0; i < 1024; ++i) {
        for (dpc::PointId j = 0; j < n; ++j) {
          sink += dpc::SquaredDistance(points[i], points[j], dim);
        }
      }
      slice_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        begin)
              .count();
      CHECK(sink > 0.0);  // keep the calibration loop un-elidable
    }

    dpc::DpcParams params;
    params.d_cut = 2000.0;
    params.rho_min = 2.0;
    params.delta_min = 9000.0;
    const dpc::ExecutionContext ctx(1);  // serial: one thread, 1024-slices
    dpc::ScanDpc algo;
    dpc::DpcResult result;
    std::thread worker(
        [&] { result = algo.Run(points, params, ctx); });
    // Cancel early in the first slice; the run must come back within a
    // fraction of a slice, not after finishing it.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(slice_seconds * 0.1));
    const auto cancelled_at = std::chrono::steady_clock::now();
    ctx.RequestCancel();
    worker.join();
    const double overshoot =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      cancelled_at)
            .count();
    CHECK(result.stats.interrupted);
    for (const int64_t label : result.label) CHECK_EQ(label, dpc::kUnassigned);
    CHECK(overshoot < slice_seconds * 0.5);
  }

  std::printf("parallel_test OK\n");
  return 0;
}
