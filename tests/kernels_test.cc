// Batched kernels vs the scalar reference: every kernel in
// core/kernels.h must be BIT-identical (==, not near) to per-point
// SquaredDistance / dot calls, across dimensions, odd batch lengths,
// permuted views, and every dispatch mode (the CI matrix compiles this
// test under runtime, vectorized, AND portable dispatch). Under runtime
// dispatch the whole sweep repeats once per host-supported tier
// (SetActiveTier), so generic/avx2/avx512 codegen all face the same
// `==` oracle in a single process; the ChooseTier policy (env override,
// graceful fallback from unsupported/unknown tiers) is unit-tested
// against synthetic support masks.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>
#include <vector>

#include "core/dpc.h"
#include "core/kernels.h"
#include "core/rng.h"
#include "core/soa.h"
#include "tests/test_util.h"

namespace {

dpc::PointSet RandomPoints(int dim, dpc::PointId n, uint64_t seed) {
  dpc::Rng rng(seed);
  dpc::PointSet points(dim);
  points.Reserve(n);
  std::vector<double> p(static_cast<size_t>(dim));
  for (dpc::PointId i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) p[static_cast<size_t>(d)] = rng.Uniform(0, 1000);
    points.Add(p.data());
  }
  return points;
}

// Exercises every kernel over [begin, begin + count) of `soa`, whose
// position j maps to points[ids[j]].
void CheckRange(const dpc::PointSet& points, const dpc::PointSetSoA& soa,
                const std::vector<dpc::PointId>& ids, dpc::PointId begin,
                dpc::PointId count, const double* q, double r_sq) {
  const int dim = points.dim();

  std::vector<double> batch(static_cast<size_t>(count) + 1,
                            std::numeric_limits<double>::quiet_NaN());
  batch.back() = -42.0;  // overrun canary
  dpc::kernels::SquaredDistanceBatch(soa, begin, count, q, batch.data());
  CHECK_EQ(batch.back(), -42.0);

  dpc::PointId scalar_hits = 0;
  double scalar_min = std::numeric_limits<double>::infinity();
  dpc::PointId scalar_argmin = -1;
  for (dpc::PointId j = 0; j < count; ++j) {
    const double d_sq = dpc::SquaredDistance(
        q, points[ids[static_cast<size_t>(begin + j)]], dim);
    CHECK(batch[static_cast<size_t>(j)] == d_sq);  // bitwise
    if (d_sq <= r_sq) ++scalar_hits;
    if (d_sq < scalar_min) {
      scalar_min = d_sq;
      scalar_argmin = begin + j;
    }
  }

  CHECK_EQ(dpc::kernels::RangeCountBatch(soa, begin, count, q, r_sq),
           scalar_hits);

  const dpc::kernels::MinResult m =
      dpc::kernels::MinDistanceBatch(soa, begin, count, q);
  CHECK_EQ(m.pos, scalar_argmin);
  if (count > 0) CHECK(m.d_sq == scalar_min);

  // DotBatch vs an ascending-dimension scalar dot (q doubles as the
  // projection direction).
  std::vector<double> dots(static_cast<size_t>(count));
  dpc::kernels::DotBatch(soa, begin, count, q, dots.data());
  for (dpc::PointId j = 0; j < count; ++j) {
    const double* p = points[ids[static_cast<size_t>(begin + j)]];
    double s = 0.0;
    for (int d = 0; d < dim; ++d) s += q[d] * p[d];
    CHECK(dots[static_cast<size_t>(j)] == s);
  }

  // The row-major gather agrees with the transposed batch on the same
  // candidates.
  std::vector<double> gathered(static_cast<size_t>(count));
  dpc::kernels::SquaredDistanceGather(points,
                                      ids.data() + static_cast<size_t>(begin),
                                      count, q, gathered.data());
  for (dpc::PointId j = 0; j < count; ++j) {
    CHECK(gathered[static_cast<size_t>(j)] == batch[static_cast<size_t>(j)]);
  }
}

void TestDim(int dim) {
  const dpc::PointId n = 1337;  // odd on purpose
  const dpc::PointSet points =
      RandomPoints(dim, n, 4200 + static_cast<uint64_t>(dim));

  // Identity view and a reversed-permutation view.
  std::vector<dpc::PointId> identity(static_cast<size_t>(n));
  std::iota(identity.begin(), identity.end(), dpc::PointId{0});
  std::vector<dpc::PointId> reversed(identity.rbegin(), identity.rend());

  const dpc::PointSetSoA soa(points);
  dpc::PointSetSoA perm_soa;
  perm_soa.Assign(points, reversed.data(), n, /*store_ids=*/true);
  CHECK_EQ(perm_soa.IdAt(0), n - 1);
  CHECK_EQ(soa.IdAt(5), 5);
  CHECK(soa.MemoryBytes() >= static_cast<size_t>(n) * dim * sizeof(double));

  dpc::Rng rng(7);
  std::vector<double> q(static_cast<size_t>(dim));
  // Batch lengths chosen to hit every tiling edge: empty, one, odd
  // lengths straddling the 512-wide vector tile, and the full set.
  const dpc::PointId lens[] = {0, 1, 3, 31, 511, 512, 513, 1023, n};
  for (int trial = 0; trial < 8; ++trial) {
    for (int d = 0; d < dim; ++d) q[static_cast<size_t>(d)] = rng.Uniform(0, 1000);
    const double r = rng.Uniform(50.0, 600.0);
    for (const dpc::PointId len : lens) {
      const dpc::PointId begin =
          len >= n ? 0
                   : static_cast<dpc::PointId>(rng.NextBelow(
                         static_cast<uint64_t>(n - len + 1)));
      CheckRange(points, soa, identity, begin, std::min(len, n), q.data(),
                 r * r);
      CheckRange(points, perm_soa, reversed, begin, std::min(len, n), q.data(),
                 r * r);
    }
  }

  // Tie-breaking: duplicate the minimum so several positions share the
  // winning distance — MinDistanceBatch must report the FIRST position,
  // exactly like an ascending scalar scan with strict '<'.
  {
    dpc::PointSet dups(dim);
    std::vector<double> a(static_cast<size_t>(dim), 1.0);
    std::vector<double> b(static_cast<size_t>(dim), 2.0);
    for (int i = 0; i < 600; ++i) {
      dups.Add(i % 3 == 1 ? a.data() : b.data());  // min at 1, 4, 7, ...
    }
    const dpc::PointSetSoA dup_soa(dups);
    std::vector<double> origin(static_cast<size_t>(dim), 1.0);
    const dpc::kernels::MinResult m = dpc::kernels::MinDistanceBatch(
        dup_soa, 0, dups.size(), origin.data());
    CHECK_EQ(m.pos, 1);
    CHECK(m.d_sq == 0.0);
    // Offset start: first qualifying position relative to the sub-range.
    const dpc::kernels::MinResult m2 = dpc::kernels::MinDistanceBatch(
        dup_soa, 2, dups.size() - 2, origin.data());
    CHECK_EQ(m2.pos, 4);
  }

  std::printf("kernels dim=%d OK (%s dispatch)\n", dim,
              dpc::kernels::DispatchName());
}

}  // namespace

constexpr int kDims[] = {1, 2, 3, 4, 7, 8, 16};

#if defined(DPC_KERNELS_RUNTIME)

// The ChooseTier policy as a pure function: forced name x synthetic
// support mask, independent of what this host actually supports.
void TestChooseTier() {
  using dpc::kernels::ChooseTier;
  using dpc::kernels::KernelTier;
  constexpr uint32_t kGenericOnly = 0b001;
  constexpr uint32_t kUpToAvx2 = 0b011;
  constexpr uint32_t kAll = 0b111;
  bool fell_back = true;

  // No override: widest supported, no fallback reported.
  CHECK(ChooseTier(nullptr, kAll, &fell_back) == KernelTier::kAvx512);
  CHECK(!fell_back);
  CHECK(ChooseTier("", kUpToAvx2, &fell_back) == KernelTier::kAvx2);
  CHECK(!fell_back);
  CHECK(ChooseTier(nullptr, kGenericOnly, &fell_back) == KernelTier::kGeneric);
  CHECK(!fell_back);

  // Forced supported tier is honored — including deliberately narrower
  // than the widest available.
  CHECK(ChooseTier("generic", kAll, &fell_back) == KernelTier::kGeneric);
  CHECK(!fell_back);
  CHECK(ChooseTier("avx2", kAll, &fell_back) == KernelTier::kAvx2);
  CHECK(!fell_back);
  CHECK(ChooseTier("avx512", kAll, &fell_back) == KernelTier::kAvx512);
  CHECK(!fell_back);

  // Forced-but-unsupported falls back to the widest supported tier and
  // reports it; same for unknown names.
  CHECK(ChooseTier("avx512", kUpToAvx2, &fell_back) == KernelTier::kAvx2);
  CHECK(fell_back);
  CHECK(ChooseTier("avx2", kGenericOnly, &fell_back) == KernelTier::kGeneric);
  CHECK(fell_back);
  CHECK(ChooseTier("pentium-mmx", kAll, &fell_back) == KernelTier::kAvx512);
  CHECK(fell_back);

  std::printf("ChooseTier policy OK\n");
}

void TestTierSweep() {
  const std::vector<dpc::kernels::KernelTier> tiers =
      dpc::kernels::SupportedTiers();
  // Generic is compiled into every binary and runs on every host.
  CHECK(!tiers.empty());
  CHECK(tiers.front() == dpc::kernels::KernelTier::kGeneric);

  // Forcing an unsupported tier must fail without touching the active one.
  const dpc::kernels::KernelTier before = dpc::kernels::ActiveTier();
  for (int t = 0; t < dpc::kernels::kNumKernelTiers; ++t) {
    const auto tier = static_cast<dpc::kernels::KernelTier>(t);
    if ((dpc::kernels::SupportedTierMask() & (1u << t)) == 0) {
      CHECK(!dpc::kernels::SetActiveTier(tier));
      CHECK(dpc::kernels::ActiveTier() == before);
    }
  }

  // Every supported tier faces the full bitwise sweep in-process.
  for (const dpc::kernels::KernelTier tier : tiers) {
    CHECK(dpc::kernels::SetActiveTier(tier));
    CHECK(dpc::kernels::ActiveTier() == tier);
    std::printf("--- tier %s ---\n", dpc::kernels::ActiveTierName());
    for (const int dim : kDims) TestDim(dim);
  }
  // Leave the widest tier active, as first-use detection would have.
  CHECK(dpc::kernels::SetActiveTier(tiers.back()));
}

#endif  // DPC_KERNELS_RUNTIME

int main() {
#if defined(DPC_KERNELS_RUNTIME)
  TestChooseTier();
  TestTierSweep();
#else
  for (const int dim : kDims) TestDim(dim);
#endif
  std::printf("kernels_test OK\n");
  return 0;
}
