// DpcParams validation and the Status/StatusOr vocabulary.
#include <cstdio>
#include <string>

#include "core/dpc.h"
#include "core/status.h"
#include "tests/test_util.h"

int main() {
  dpc::DpcParams params;
  params.d_cut = 100.0;
  params.rho_min = 5.0;
  params.delta_min = 500.0;
  CHECK(params.Validate().ok());

  dpc::DpcParams bad = params;
  bad.d_cut = 0.0;
  CHECK(bad.Validate().code() == dpc::StatusCode::kInvalidArgument);

  bad = params;
  bad.delta_min = 100.0;  // must exceed d_cut
  CHECK(!bad.Validate().ok());

  bad = params;
  bad.rho_min = -1.0;
  CHECK(!bad.Validate().ok());

  bad = params;
  bad.epsilon = 0.0;
  CHECK(!bad.Validate().ok());

  bad = params;
  bad.num_threads = -2;
  CHECK(!bad.Validate().ok());

  // Thread-count precedence (API v2): an ExecutionContext with an
  // explicit count always wins; a context that leaves it unspecified
  // defers to the deprecated DpcParams::num_threads shim; 0 everywhere
  // resolves to all hardware threads.
  {
    dpc::DpcParams p = params;
    p.num_threads = 3;
    const dpc::ExecutionContext unspecified;  // num_threads() == 0
    const dpc::ExecutionContext explicit_ctx(5);
    CHECK_EQ(dpc::EffectiveThreads(p, unspecified), 3);   // deprecated shim
    CHECK_EQ(dpc::EffectiveThreads(p, explicit_ctx), 5);  // context wins
    p.num_threads = 0;
    CHECK_EQ(dpc::EffectiveThreads(p, unspecified), dpc::HardwareThreads());
    // ResolveContext applies the rule while sharing pool and cancel flag.
    p.num_threads = 3;
    const dpc::ExecutionContext resolved = dpc::ResolveContext(p, unspecified);
    CHECK_EQ(resolved.threads(), 3);
    CHECK(resolved.shared_pool().get() == unspecified.shared_pool().get());
    CHECK_EQ(dpc::ResolveContext(p, explicit_ctx).threads(), 5);
  }

  const dpc::Status err = dpc::Status::IoError("disk on fire");
  CHECK(!err.ok());
  CHECK(err.ToString() == "IO_ERROR: disk on fire");
  CHECK(dpc::Status::Ok().ToString() == "OK");

  dpc::StatusOr<std::string> good(std::string("value"));
  CHECK(good.ok());
  CHECK_EQ(good.value().size(), std::string("value").size());
  dpc::StatusOr<std::string> failed(dpc::Status::NotFound("nope"));
  CHECK(!failed.ok());
  CHECK(failed.status().code() == dpc::StatusCode::kNotFound);

  // PointSet basics used throughout: size/dim bookkeeping and row access.
  dpc::PointSet points(2);
  const double p0[2] = {1.0, 2.0};
  const double p1[2] = {3.0, 4.0};
  points.Add(p0);
  points.Add(p1);
  CHECK_EQ(points.size(), 2);
  CHECK_EQ(points.Coord(1, 0), 3.0);
  CHECK_EQ(points[1][1], 4.0);

  std::printf("params_test OK\n");
  return 0;
}
