// The compute/threshold split (core/dpc.h): DpcParams factoring into
// ComputeParams + ThresholdSpec, the DpcSolution artifact every registry
// algorithm produces, and the invariant the serving layer's two-tier
// cache rests on — solution-then-finalize is bit-identical to the legacy
// one-shot Run across a whole (rho_min, delta_min) grid.
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/decision_graph.h"
#include "core/registry.h"
#include "data/generators.h"
#include "tests/test_util.h"

namespace {

dpc::PointSet TestPoints(dpc::PointId n = 1500) {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = n;
  gen.num_clusters = 4;
  gen.noise_rate = 0.02;
  gen.seed = 77;
  return dpc::data::GaussianBenchmark(gen);
}

void TestParamsFactoring() {
  dpc::DpcParams params;
  params.d_cut = 1000.0;
  params.rho_min = 5.0;
  params.delta_min = 4000.0;
  params.epsilon = 0.5;

  const dpc::ComputeParams compute = params.compute();
  CHECK_EQ(compute.d_cut, 1000.0);
  CHECK_EQ(compute.epsilon, 0.5);
  const dpc::ThresholdSpec threshold = params.threshold();
  CHECK_EQ(threshold.rho_min, 5.0);
  CHECK_EQ(threshold.delta_min, 4000.0);

  // Compose is the inverse of the two projections.
  const dpc::DpcParams roundtrip = dpc::ComposeParams(compute, threshold);
  CHECK_EQ(roundtrip.d_cut, params.d_cut);
  CHECK_EQ(roundtrip.rho_min, params.rho_min);
  CHECK_EQ(roundtrip.delta_min, params.delta_min);
  CHECK_EQ(roundtrip.epsilon, params.epsilon);

  // The split validators carve up exactly the legacy checks.
  CHECK(params.Validate().ok());
  CHECK(compute.Validate().ok());
  CHECK(threshold.Validate(params.d_cut).ok());
  dpc::ComputeParams bad_compute = compute;
  bad_compute.d_cut = 0.0;
  CHECK(!bad_compute.Validate().ok());
  dpc::ThresholdSpec bad_threshold = threshold;
  bad_threshold.delta_min = 500.0;  // below d_cut
  CHECK(!bad_threshold.Validate(params.d_cut).ok());
  bad_threshold.delta_min = 4000.0;
  bad_threshold.rho_min = -1.0;
  CHECK(!bad_threshold.Validate(params.d_cut).ok());
}

void TestSolutionThenFinalizeMatchesRunForAllAlgorithms() {
  const dpc::PointSet points = TestPoints();
  const double d_cut = 2500.0;

  for (const std::string& name : dpc::RegisteredAlgorithmNames()) {
    auto algo = dpc::MakeAlgorithmByName(name);
    CHECK(algo.ok());

    dpc::ComputeParams compute;
    compute.d_cut = d_cut;
    compute.epsilon = 0.5;
    const dpc::DpcSolution solution =
        algo.value()->Solve(points, compute, dpc::ExecutionContext(2));

    // Artifact metadata: identity, cost, and the precomputed order.
    CHECK(solution.algorithm == std::string(algo.value()->name()));
    CHECK_EQ(solution.points_fingerprint, dpc::FingerprintPoints(points));
    CHECK_EQ(solution.compute.d_cut, d_cut);
    CHECK_EQ(solution.size(), points.size());
    CHECK(!solution.interrupted());
    CHECK(solution.compute_cost_seconds >= 0.0);
    CHECK(solution.density_order == dpc::DensityOrder(solution.rho));

    // The acceptance invariant: across a (rho_min, delta_min) grid,
    // finalizing the ONE solution is bit-identical to a fresh legacy Run
    // with the flat params — labels, centers, rho, delta, dependency.
    for (const double rho_min : {0.0, 2.0, 8.0}) {
      for (const double delta_mult : {1.5, 3.0, 6.0}) {
        dpc::ThresholdSpec spec;
        spec.rho_min = rho_min;
        spec.delta_min = delta_mult * d_cut;
        const dpc::DpcResult from_solution =
            dpc::FinalizeSolution(solution, spec);

        auto fresh_algo = dpc::MakeAlgorithmByName(name);
        const dpc::DpcResult from_run = fresh_algo.value()->Run(
            points, dpc::ComposeParams(compute, spec),
            dpc::ExecutionContext(2));

        dpc::test::AssertSolutionsEqual(from_solution, from_run);
      }
    }

    // LabelSolution is the allocation-light sibling of FinalizeSolution.
    dpc::ThresholdSpec spec;
    spec.rho_min = 2.0;
    spec.delta_min = 3.0 * d_cut;
    const dpc::Labeling labeling = dpc::LabelSolution(solution, spec);
    const dpc::DpcResult reference = dpc::FinalizeSolution(solution, spec);
    CHECK(labeling.label == reference.label);
    CHECK(labeling.centers == reference.centers);
  }
}

void TestInterruptedSolve() {
  const dpc::PointSet points = TestPoints();
  dpc::ComputeParams compute;
  compute.d_cut = 2500.0;

  dpc::ExecutionContext cancelled(2);
  cancelled.RequestCancel();
  auto algo = dpc::MakeAlgorithmByName("ex-dpc");
  const dpc::DpcSolution solution =
      algo.value()->Solve(points, compute, cancelled);
  CHECK(solution.interrupted());
  CHECK(solution.density_order.empty());  // never built for a dead solve

  // Finalizing an interrupted solution yields the legacy interrupted
  // result shape: every label kUnassigned, no centers.
  dpc::ThresholdSpec spec;
  spec.rho_min = 2.0;
  spec.delta_min = 9000.0;
  const dpc::DpcResult result = dpc::FinalizeSolution(solution, spec);
  CHECK(result.stats.interrupted);
  CHECK_EQ(result.label.size(), static_cast<size_t>(points.size()));
  for (const int64_t label : result.label) CHECK_EQ(label, dpc::kUnassigned);
  CHECK_EQ(result.centers.size(), 0u);
}

void TestTopGammaPoints() {
  // gamma = rho * delta with the +inf peak capped just above the largest
  // finite delta: ranking is deterministic and NaN-free even for a
  // zero-density peak.
  const std::vector<double> rho = {10.0, 0.0, 5.0, 5.0};
  const std::vector<double> delta = {std::numeric_limits<double>::infinity(),
                                     std::numeric_limits<double>::infinity(),
                                     8.0, 8.0};
  const auto top = dpc::TopGammaPoints(rho, delta, 3);
  CHECK_EQ(top.size(), 3u);
  CHECK_EQ(top[0].id, 0);  // 10 * cap(8.4) = 84
  CHECK_EQ(top[1].id, 2);  // ties (5*8) break by id asc
  CHECK_EQ(top[2].id, 3);
  CHECK(std::isfinite(top[0].gamma));
  // Asking for more than n returns n entries; k <= 0 returns none.
  CHECK_EQ(dpc::TopGammaPoints(rho, delta, 99).size(), rho.size());
  CHECK_EQ(dpc::TopGammaPoints(rho, delta, 0).size(), 0u);
}

}  // namespace

int main() {
  TestParamsFactoring();
  TestSolutionThenFinalizeMatchesRunForAllAlgorithms();
  TestInterruptedSolve();
  TestTopGammaPoints();
  std::printf("solution_test OK\n");
  return 0;
}
