// Region-sharded execution (core/sharded_dpc.h): the shard plan's
// partition invariants, and the tentpole guarantee — `sharding=region`
// Ex-DPC and Approx-DPC are BIT-IDENTICAL to the unsharded solve across
// shard counts x thread counts, including clusters straddling shard
// boundaries, empty shards, and a single-cell grid. The TSan CI job runs
// this binary (label: concurrency).
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/sharded_dpc.h"
#include "data/generators.h"
#include "index/grid.h"
#include "parallel/execution_context.h"
#include "parallel/thread_pool.h"
#include "tests/test_util.h"

namespace {

dpc::PointSet TestPoints(uint64_t seed = 41, dpc::PointId n = 4000) {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = n;
  gen.num_clusters = 5;
  gen.noise_rate = 0.02;
  gen.seed = seed;
  return dpc::data::GaussianBenchmark(gen);
}

dpc::DpcParams TestParams(double d_cut = 1800.0) {
  dpc::DpcParams params;
  params.d_cut = d_cut;
  params.rho_min = 2.0;
  params.delta_min = 4.0 * d_cut;
  params.epsilon = 0.5;
  return params;
}

dpc::OptionsMap Sharded(int shards) {
  return {{"sharding", "region"}, {"shards", std::to_string(shards)}};
}

/// A hand-built tight 2-D blob at (1000, 1000): with d_cut = 1e6 the
/// grid side is ~7.07e5, so every point lands in cell (0, 0) —
/// a GUARANTEED single-cell grid (generator output could straddle a
/// cell boundary at any scale).
dpc::PointSet TinyBlob() {
  dpc::PointSet points(2);
  for (int i = 0; i < 64; ++i) {
    const double p[2] = {1000.0 + 13.0 * (i % 8), 1000.0 + 17.0 * (i / 8)};
    points.Add(p);
  }
  return points;
}

/// The plan must partition the points: every point owned by exactly one
/// shard, halos disjoint from their shard's owned set, costs = |owned|.
void CheckPlanInvariants(const dpc::PointSet& points,
                         const dpc::RegionShardPlan& plan) {
  std::vector<int> owners(static_cast<size_t>(points.size()), 0);
  for (size_t si = 0; si < plan.shards.size(); ++si) {
    const dpc::RegionShard& shard = plan.shards[si];
    CHECK_EQ(plan.costs[si], static_cast<double>(shard.owned.size()));
    const std::set<dpc::PointId> owned(shard.owned.begin(), shard.owned.end());
    CHECK_EQ(owned.size(), shard.owned.size());  // ascending, no dups
    for (const dpc::PointId p : shard.owned) {
      owners[static_cast<size_t>(p)] += 1;
    }
    for (const dpc::PointId h : shard.halo) {
      CHECK(owned.find(h) == owned.end());  // halo never owns
    }
  }
  for (const int o : owners) CHECK_EQ(o, 1);  // exactly-once ownership
}

void TestPlanInvariants() {
  const dpc::PointSet points = TestPoints();
  const double d_cut = 1800.0;
  const dpc::UniformGrid grid(
      points, d_cut / std::sqrt(static_cast<double>(points.dim())));
  CHECK(grid.num_cells() > 1);  // the sweep below actually exercises cuts
  for (const int shards : {1, 2, 4, 7, 64}) {
    const dpc::RegionShardPlan plan =
        dpc::BuildRegionShardPlan(grid, d_cut, shards);
    CHECK_EQ(plan.shards.size(), static_cast<size_t>(shards));
    CheckPlanInvariants(points, plan);
  }

  // More shards than cells leaves trailing shards empty — still a valid
  // partition (the 64-shard sweep above usually exercises this too, but
  // a single-cell grid makes it certain).
  const dpc::PointSet blob = TinyBlob();
  const dpc::UniformGrid one_cell(blob, 1e6 / std::sqrt(2.0));
  CHECK_EQ(one_cell.num_cells(), 1);
  const dpc::RegionShardPlan plan =
      dpc::BuildRegionShardPlan(one_cell, 1e6, 4);
  CheckPlanInvariants(blob, plan);
  CHECK_EQ(plan.shards[0].owned.size(), static_cast<size_t>(blob.size()));
  for (int si = 1; si < 4; ++si) {
    CHECK(plan.shards[static_cast<size_t>(si)].cells.empty());
    CHECK(plan.shards[static_cast<size_t>(si)].owned.empty());
    CHECK(plan.shards[static_cast<size_t>(si)].halo.empty());
  }
}

/// The tentpole: for both grid algorithms, every (shards x threads)
/// combination of region sharding lands on the SAME BITS as the
/// unsharded single-thread solve — labels, rho, delta, dependency,
/// centers.
void TestShardedBitIdentity() {
  const dpc::PointSet points = TestPoints();
  const dpc::DpcParams params = TestParams();
  auto pool = std::make_shared<dpc::ThreadPool>(8);

  for (const std::string& name : {std::string("ex-dpc"),
                                  std::string("approx-dpc")}) {
    auto baseline_algo = dpc::MakeAlgorithmByName(name);
    CHECK(baseline_algo.ok());
    const dpc::ExecutionContext serial(1, dpc::ScheduleStrategy::kStatic,
                                       pool);
    const dpc::DpcResult baseline =
        baseline_algo.value()->Run(points, params, serial);
    CHECK(baseline.num_clusters() > 0);

    for (const int shards : {1, 2, 4, 7}) {
      auto algo = dpc::MakeAlgorithmByName(name, Sharded(shards));
      CHECK(algo.ok());
      for (const int threads : {1, 2, 8}) {
        const dpc::ExecutionContext ctx(
            threads, dpc::ScheduleStrategy::kCostGuided, pool);
        const dpc::DpcResult sharded = algo.value()->Run(points, params, ctx);
        dpc::test::AssertSolutionsEqual(baseline, sharded);
      }
      std::printf("%-12s shards=%d identical across threads\n", name.c_str(),
                  shards);
    }
  }
}

/// Clusters deliberately straddling every shard boundary: a line of
/// touching blobs along x, cut into 4 contiguous shards — each cut falls
/// inside a blob, so dependent-distance chains cross shards. A small
/// d_cut gives a fine grid (many cells per blob).
void TestBoundaryStraddlingClusters() {
  dpc::data::GaussianBenchmarkParams gen;
  gen.num_points = 3000;
  gen.num_clusters = 4;
  gen.noise_rate = 0.0;
  gen.seed = 97;
  const dpc::PointSet points = dpc::data::GaussianBenchmark(gen);
  const dpc::DpcParams params = TestParams(600.0);  // fine grid

  for (const std::string& name : {std::string("ex-dpc"),
                                  std::string("approx-dpc")}) {
    auto baseline_algo = dpc::MakeAlgorithmByName(name);
    const dpc::DpcResult baseline =
        baseline_algo.value()->Run(points, params, dpc::ExecutionContext(1));
    for (const int shards : {4, 7}) {
      auto algo = dpc::MakeAlgorithmByName(name, Sharded(shards));
      CHECK(algo.ok());
      const dpc::DpcResult sharded =
          algo.value()->Run(points, params, dpc::ExecutionContext(4));
      dpc::test::AssertSolutionsEqual(baseline, sharded);
    }
  }
}

/// Degenerate shapes the solvers must absorb: a single-cell grid (one
/// shard owns everything, the rest are empty) and more shards than
/// cells.
void TestDegenerateShapes() {
  const dpc::PointSet blob = TinyBlob();
  dpc::DpcParams params;
  params.d_cut = 1e6;  // cell side exceeds the blob: one cell
  params.rho_min = 2.0;
  params.delta_min = 4.0 * params.d_cut;
  params.epsilon = 0.5;

  for (const std::string& name : {std::string("ex-dpc"),
                                  std::string("approx-dpc")}) {
    auto baseline_algo = dpc::MakeAlgorithmByName(name);
    const dpc::DpcResult baseline =
        baseline_algo.value()->Run(blob, params, dpc::ExecutionContext(1));
    for (const int shards : {1, 4}) {
      auto algo = dpc::MakeAlgorithmByName(name, Sharded(shards));
      const dpc::DpcResult sharded =
          algo.value()->Run(blob, params, dpc::ExecutionContext(2));
      dpc::test::AssertSolutionsEqual(baseline, sharded);
    }
  }

  // Empty input.
  auto algo = dpc::MakeAlgorithmByName("ex-dpc", Sharded(4));
  const dpc::PointSet empty(2);
  const dpc::DpcResult none =
      algo.value()->Run(empty, TestParams(), dpc::ExecutionContext(2));
  CHECK_EQ(none.label.size(), 0u);
}

/// The sharded paths honor the stop state like every other solve: a
/// cancelled context yields the interrupted result shape.
void TestShardedInterruption() {
  const dpc::PointSet points = TestPoints(41, 1500);
  for (const std::string& name : {std::string("ex-dpc"),
                                  std::string("approx-dpc")}) {
    auto algo = dpc::MakeAlgorithmByName(name, Sharded(4));
    dpc::ExecutionContext cancelled(2);
    cancelled.RequestCancel();
    const dpc::DpcResult result =
        algo.value()->Run(points, TestParams(), cancelled);
    CHECK(result.stats.interrupted);
    for (const int64_t label : result.label) {
      CHECK_EQ(label, dpc::kUnassigned);
    }
  }
}

/// The sharding knobs validate like every other option and stay unknown
/// to algorithms that don't take them.
void TestShardingOptionValidation() {
  CHECK(dpc::MakeAlgorithmByName("ex-dpc", {{"sharding", "region"}}).ok());
  CHECK(dpc::MakeAlgorithmByName("ex-dpc", {{"sharding", "none"}}).ok());
  CHECK(!dpc::MakeAlgorithmByName("ex-dpc", {{"sharding", "diagonal"}}).ok());
  CHECK(!dpc::MakeAlgorithmByName("ex-dpc", {{"shards", "-1"}}).ok());
  CHECK(!dpc::MakeAlgorithmByName("ex-dpc", {{"shards", "x"}}).ok());
  // Unknown keys still rejected (consume-tracking reader).
  CHECK(!dpc::MakeAlgorithmByName("ex-dpc", {{"shardz", "4"}}).ok());
}

}  // namespace

int main() {
  TestPlanInvariants();
  TestShardedBitIdentity();
  TestBoundaryStraddlingClusters();
  TestDegenerateShapes();
  TestShardedInterruption();
  TestShardingOptionValidation();
  std::printf("shard_test OK\n");
  return 0;
}
