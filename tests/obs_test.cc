// Units for obs/ — the telemetry layer's contracts, in the order the
// header promises them:
//
//   determinism    — the bucket ladder is a fixed table (exact octave
//                    doubling, platform-independent), Percentile is a
//                    pure function of the counts array.
//   mergeability   — Merge(a, b) == the histogram of the union.
//   concurrency    — counters/histograms/registries/traces survive
//                    threaded hammering with exact totals (the TSan CI
//                    job re-runs this binary under `-L obs`).
//   zero cost off  — the disabled-tracing hot path (null-trace
//                    ScopedSpan, Counter::Inc, Histogram::Observe)
//                    performs ZERO heap allocations, asserted through a
//                    counting global operator new.
//   span trees     — explicit parent ids compose across threads; the
//                    Chrome export is structurally valid JSON.
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/execution_context.h"
#include "test_util.h"

// ---- counting allocator: every global new/delete in this binary ------
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using dpc::obs::Histogram;
using dpc::obs::HistogramBuckets;
using dpc::obs::HistogramSnapshot;
using dpc::obs::MetricKind;
using dpc::obs::MetricRegistry;
using dpc::obs::MetricSample;
using dpc::obs::ScopedSpan;
using dpc::obs::SpanRecord;
using dpc::obs::Trace;

void TestBucketBounds() {
  // The ladder starts at exactly 1ns and doubles exactly every 4 steps
  // (ldexp is exact power-of-two scaling; the sub-bucket constants are
  // shared between octaves).
  CHECK_EQ(HistogramBuckets::Bound(0), 1e-9);
  for (int i = 0; i + HistogramBuckets::kSubBuckets <
                  HistogramBuckets::kNumBounds;
       ++i) {
    CHECK_EQ(HistogramBuckets::Bound(i + HistogramBuckets::kSubBuckets),
             2.0 * HistogramBuckets::Bound(i));
  }
  // Strictly increasing, ~19% relative steps.
  for (int i = 1; i < HistogramBuckets::kNumBounds; ++i) {
    const double ratio =
        HistogramBuckets::Bound(i) / HistogramBuckets::Bound(i - 1);
    CHECK(ratio > 1.18 && ratio < 1.20);
  }
  // Coverage: the top bound exceeds 900s (15-minute requests still
  // report finite percentiles).
  CHECK(HistogramBuckets::Bound(HistogramBuckets::kNumBounds - 1) > 900.0);

  // BucketFor: zero and negatives land in bucket 0; a bound is counted
  // by its OWN bucket (v <= bound inclusive); just above moves up one;
  // beyond the last bound and NaN land in the overflow bucket.
  CHECK_EQ(HistogramBuckets::BucketFor(0.0), 0);
  CHECK_EQ(HistogramBuckets::BucketFor(-3.5), 0);
  for (int i = 0; i < HistogramBuckets::kNumBounds; i += 17) {
    CHECK_EQ(HistogramBuckets::BucketFor(HistogramBuckets::Bound(i)), i);
    CHECK_EQ(HistogramBuckets::BucketFor(HistogramBuckets::Bound(i) * 1.001),
             i + 1);
  }
  CHECK_EQ(HistogramBuckets::BucketFor(1e9), HistogramBuckets::kNumBounds);
  CHECK_EQ(HistogramBuckets::BucketFor(std::nan("")),
           HistogramBuckets::kNumBounds);
}

void TestPercentileMath() {
  // Empty histogram: percentiles are 0 by contract.
  HistogramSnapshot empty;
  CHECK_EQ(empty.Percentile(50.0), 0.0);
  CHECK_EQ(empty.Percentile(99.9), 0.0);

  // Hand-built snapshot: 4 observations in bucket 10 — interpolation
  // inside the bucket is exact and deterministic: rank k of 4 sits at
  // lower + (upper - lower) * k/4.
  HistogramSnapshot four;
  four.counts[10] = 4;
  four.count = 4;
  const double lower = HistogramBuckets::Bound(9);
  const double upper = HistogramBuckets::Bound(10);
  CHECK_EQ(four.Percentile(25.0), lower + (upper - lower) * 0.25);
  CHECK_EQ(four.Percentile(50.0), lower + (upper - lower) * 0.5);
  CHECK_EQ(four.Percentile(100.0), upper);
  // q=0 clamps to rank 1 (the smallest observation's bucket).
  CHECK_EQ(four.Percentile(0.0), lower + (upper - lower) * 0.25);

  // A recorded uniform grid: percentiles track the true quantiles within
  // one bucket's ~19% relative resolution, and are monotone in q.
  Histogram hist;
  for (int ms = 1; ms <= 1000; ++ms) hist.Observe(static_cast<double>(ms) * 1e-3);
  const HistogramSnapshot snapshot = hist.Snapshot();
  CHECK_EQ(snapshot.count, uint64_t{1000});
  const double p50 = snapshot.Percentile(50.0);
  const double p99 = snapshot.Percentile(99.0);
  const double p999 = snapshot.Percentile(99.9);
  CHECK(p50 > 0.5 * 0.8 && p50 < 0.5 * 1.2);
  CHECK(p99 > 0.99 * 0.8 && p99 < 0.99 * 1.2);
  CHECK(p50 <= p99 && p99 <= p999);
  CHECK(std::isfinite(p999));
  CHECK_NEAR(snapshot.Mean(), 0.5005, 1e-9);

  // Determinism: an identical observation sequence yields bitwise-equal
  // quantiles (Percentile is a pure function of counts).
  Histogram again;
  for (int ms = 1; ms <= 1000; ++ms) again.Observe(static_cast<double>(ms) * 1e-3);
  CHECK_EQ(again.Snapshot().Percentile(99.0), p99);

  // Overflow: one observation beyond the last bound makes the max +inf
  // — "p99 is finite" is the health assertion CI scripts make, so the
  // overflow bucket must NOT silently clamp.
  Histogram overflow;
  overflow.Observe(5000.0);  // ~83 minutes, beyond the ladder
  CHECK(std::isinf(overflow.Snapshot().Percentile(99.0)));
}

void TestMerge() {
  // Merge of shard-local recorders == the histogram of the union.
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 1; i <= 500; ++i) {
    const double va = static_cast<double>(i) * 1e-4;
    const double vb = static_cast<double>(i) * 7e-3;
    a.Observe(va);
    b.Observe(vb);
    combined.Observe(va);
    combined.Observe(vb);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const HistogramSnapshot expect = combined.Snapshot();
  CHECK(merged.counts == expect.counts);
  CHECK_EQ(merged.count, expect.count);
  CHECK_NEAR(merged.sum, expect.sum, 1e-12);
  CHECK_EQ(merged.Percentile(50.0), expect.Percentile(50.0));
  CHECK_EQ(merged.Percentile(99.9), expect.Percentile(99.9));
}

void TestRegistry() {
  MetricRegistry registry;
  // Get-or-create returns stable references: same name, same object.
  dpc::obs::Counter& c1 = registry.counter("requests_total");
  dpc::obs::Counter& c2 = registry.counter("requests_total");
  CHECK(&c1 == &c2);
  c1.Inc();
  c2.Inc(2);
  CHECK_EQ(c1.value(), uint64_t{3});

  registry.gauge("depth").Set(-7);
  registry.histogram("latency").Observe(0.25);

  // Collectors publish at scrape time (the coherent-snapshot mechanism).
  registry.AddCollector([](std::vector<MetricSample>* out) {
    out->push_back(MetricSample::FromGauge("collected", 42.0));
  });

  const std::vector<MetricSample> samples = registry.Snapshot();
  CHECK_EQ(samples.size(), size_t{4});
  // Sorted by name.
  for (size_t i = 1; i < samples.size(); ++i) {
    CHECK(samples[i - 1].name < samples[i].name);
  }
  CHECK_EQ(samples[0].name == "collected", true);
  CHECK_EQ(samples[0].value, 42.0);
  CHECK_EQ(samples[1].name == "depth", true);
  CHECK_EQ(samples[1].value, -7.0);
  CHECK(samples[2].kind == MetricKind::kHistogram);
  CHECK_EQ(samples[2].histogram.count, uint64_t{1});
  CHECK_EQ(samples[3].value, 3.0);
}

void TestRegistryConcurrency() {
  // N threads hammer one counter and one histogram through the registry
  // while another thread scrapes — totals must come out exact, and TSan
  // must stay quiet.
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.Snapshot();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      dpc::obs::Counter& counter = registry.counter("ops");
      Histogram& hist = registry.histogram("lat");
      for (int i = 0; i < kPerThread; ++i) {
        counter.Inc();
        hist.Observe(static_cast<double>(t + 1) * 1e-4);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  CHECK_EQ(registry.counter("ops").value(),
           uint64_t{kThreads} * uint64_t{kPerThread});
  const HistogramSnapshot snapshot = registry.histogram("lat").Snapshot();
  CHECK_EQ(snapshot.count, uint64_t{kThreads} * uint64_t{kPerThread});
  CHECK_NEAR(snapshot.sum,
             kPerThread * 1e-4 * (kThreads * (kThreads + 1) / 2.0), 1e-6);
}

void TestSpanParenting() {
  // A root span opened on this thread parents children recorded from
  // OTHER threads — the parent id is explicit, no thread-local relay.
  Trace trace;
  ScopedSpan root(&trace, "request");
  CHECK(root.enabled());
  const uint64_t root_id = root.id();
  CHECK(root_id != 0);

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&trace, root_id] {
      ScopedSpan child(&trace, "shard/work", root_id);
      ScopedSpan grandchild(&trace, "shard/inner", child.id());
      grandchild.End();
      child.End();
    });
  }
  for (std::thread& w : workers) w.join();
  root.End();
  root.End();  // idempotent: must not double-record

  const std::vector<SpanRecord> spans = trace.Snapshot();
  CHECK_EQ(spans.size(), size_t{9});  // 4 x (child + grandchild) + root
  size_t children = 0;
  size_t grandchildren = 0;
  for (const SpanRecord& span : spans) {
    CHECK(span.id != 0);
    CHECK(span.end_ns >= span.start_ns);
    if (span.parent == root_id) ++children;
  }
  for (const SpanRecord& span : spans) {
    for (const SpanRecord& parent : spans) {
      if (span.parent == parent.id && parent.parent == root_id) {
        ++grandchildren;
      }
    }
  }
  CHECK_EQ(children, size_t{4});
  CHECK_EQ(grandchildren, size_t{4});
  // Ids are unique within the trace.
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = i + 1; j < spans.size(); ++j) {
      CHECK(spans[i].id != spans[j].id);
    }
  }

  // RecordComplete: retroactive intervals clamp end >= start.
  const uint64_t retro = trace.RecordComplete("queue-wait", root_id, 100, 50);
  CHECK(retro != 0);
  const std::vector<SpanRecord> all = trace.Snapshot();
  CHECK_EQ(all.back().start_ns, uint64_t{100});
  CHECK_EQ(all.back().end_ns, uint64_t{100});
}

void TestExecutionContextPropagation() {
  // The trace and parent id travel with ExecutionContext copies, so
  // worker lambdas deep inside the solver can open correctly-parented
  // spans with `exec.Span(...)` and zero plumbing.
  const auto trace = std::make_shared<Trace>();
  dpc::ExecutionContext ctx;
  CHECK(ctx.trace() == nullptr);
  {
    ScopedSpan off = ctx.Span("nothing");
    CHECK(!off.enabled());
  }
  CHECK_EQ(trace->size(), size_t{0});

  const dpc::ExecutionContext traced = ctx.WithTrace(trace, 77);
  CHECK(traced.trace() == trace.get());
  CHECK_EQ(traced.span_parent(), uint64_t{77});
  // Copies keep the trace; derived contexts (thread overrides) too.
  const dpc::ExecutionContext derived = traced.WithThreads(2);
  {
    ScopedSpan span = derived.Span("phase");
    CHECK(span.enabled());
  }
  const std::vector<SpanRecord> spans = trace->Snapshot();
  CHECK_EQ(spans.size(), size_t{1});
  CHECK_EQ(spans[0].parent, uint64_t{77});
}

void TestChromeJson() {
  Trace empty;
  CHECK(empty.ToChromeJson() == "[]\n");

  Trace trace;
  trace.RecordComplete("alpha", 0, 1000, 3500);
  trace.RecordComplete("beta \\ \"quote\"", 0, 2000, 2400);
  const std::string json = trace.ToChromeJson();
  // Structural validity (CI round-trips it through a real JSON parser;
  // here: array framing, one object per span, names and ids present).
  CHECK(json.front() == '[');
  CHECK(json.substr(json.size() - 2) == "]\n");
  CHECK(json.find("\"name\":\"alpha\"") != std::string::npos);
  CHECK(json.find("\"ph\":\"X\"") != std::string::npos);
  CHECK(json.find("\"args\":{\"id\":") != std::string::npos);
  // ts is relative to the earliest span: alpha starts at 0.
  CHECK(json.find("\"ts\":0.000") != std::string::npos);
  CHECK(json.find("\"dur\":2.500") != std::string::npos);
}

void TestExport() {
  MetricRegistry registry;
  registry.counter("dpc_requests_total").Inc(3);
  registry.gauge("dpc_queue_depth").Set(2);
  Histogram& hist = registry.histogram("dpc_request_latency_seconds");
  hist.Observe(0.010);
  hist.Observe(0.020);

  const std::vector<MetricSample> samples = registry.Snapshot();
  const std::string text = dpc::obs::ToPrometheusText(samples);
  CHECK(text.find("# TYPE dpc_requests_total counter") != std::string::npos);
  CHECK(text.find("dpc_requests_total 3") != std::string::npos);
  CHECK(text.find("# TYPE dpc_queue_depth gauge") != std::string::npos);
  CHECK(text.find("# TYPE dpc_request_latency_seconds histogram") !=
        std::string::npos);
  CHECK(text.find("dpc_request_latency_seconds_bucket{le=\"+Inf\"} 2") !=
        std::string::npos);
  CHECK(text.find("dpc_request_latency_seconds_count 2") != std::string::npos);
  CHECK(text.find("dpc_request_latency_seconds_p99 ") != std::string::npos);

  const std::string json = dpc::obs::ToJson(samples);
  CHECK(json.find("\"dpc_requests_total\":3") != std::string::npos);
  CHECK(json.find("\"count\":2") != std::string::npos);
  CHECK(json.find("\"p99\":") != std::string::npos);

  // Infinite percentiles (overflow bucket) must export as null, never
  // bare `inf` — the scripted CI session json.load()s this.
  MetricRegistry overflow;
  overflow.histogram("h").Observe(1e12);
  const std::string clamped = dpc::obs::ToJson(overflow.Snapshot());
  CHECK(clamped.find("\"p99\":null") != std::string::npos);
  CHECK(clamped.find("inf") == std::string::npos);
}

void TestDisabledPathAllocatesNothing() {
  // The whole point of the null-trace fast path: instrumentation left
  // unconditionally in place costs zero heap traffic when telemetry is
  // off. Warm everything first so lazily-built statics (the bounds
  // table) don't count against the hot path.
  MetricRegistry registry;
  dpc::obs::Counter& counter = registry.counter("warm");
  Histogram& hist = registry.histogram("warm");
  hist.Observe(1.0);
  dpc::ExecutionContext ctx;  // no trace attached

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    counter.Inc();
    hist.Observe(static_cast<double>(i) * 1e-6);
    ScopedSpan null_span(nullptr, "off");
    ScopedSpan ctx_span = ctx.Span("off");
    null_span.End();
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  CHECK_EQ(after - before, uint64_t{0});
}

}  // namespace

int main() {
  TestBucketBounds();
  TestPercentileMath();
  TestMerge();
  TestRegistry();
  TestRegistryConcurrency();
  TestSpanParenting();
  TestExecutionContextPropagation();
  TestChromeJson();
  TestExport();
  TestDisabledPathAllocatesNothing();
  std::printf("obs_test: all checks passed\n");
  return 0;
}
