// Random-projection LSH partitioner — the substrate of the LSH-DDP
// baseline (§6). Each of `num_tables` hash tables concatenates
// `num_projections` quantized Gaussian projections
//     h(x) = floor((a . x + b) / bucket_width)
// into a bucket key; nearby points land in the same bucket with high
// probability, so a point's candidate neighborhood is the union of its
// buckets across tables.
//
// Projection directions and offsets are drawn from the seeded
// deterministic RNG (core/rng.h) and the build is serial, so the
// partition — and every algorithm built on it — is bit-identical across
// runs and thread counts.
//
// Hot-path layout: the build transposes the points once (core/soa.h) and
// computes each table's projections with the batched dot-product kernel
// (kernels::DotBatch) over point tiles — unit-stride column streams
// instead of n * k scattered row walks. DotBatch accumulates dimensions
// in ascending order, so every key is bit-identical to the scalar dot.
#ifndef DPC_INDEX_LSH_H_
#define DPC_INDEX_LSH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "core/dpc.h"
#include "core/kernels.h"
#include "core/rng.h"
#include "core/soa.h"

namespace dpc {

struct LshParams {
  int num_tables = 4;       ///< independent hash tables (union of buckets)
  int num_projections = 6;  ///< concatenated projections per table
  double bucket_width = 0.0;  ///< quantization step (> 0; ~2-4x d_cut works)
  uint64_t seed = 0x15bd1u;   ///< projection seed (fixed => deterministic)
};

class LshPartitioner {
 public:
  LshPartitioner(const PointSet& points, const LshParams& params)
      : params_(params) {
    Build(points);
  }

  int num_tables() const { return params_.num_tables; }

  /// Total bucket count across tables.
  size_t num_buckets() const {
    size_t n = 0;
    for (const auto& table : tables_) n += table.buckets.size();
    return n;
  }

  /// Members of the bucket point i hashes into, in table t (ascending ids).
  const std::vector<PointId>& Bucket(int t, PointId i) const {
    const Table& table = tables_[static_cast<size_t>(t)];
    return table.buckets[table.bucket_of[static_cast<size_t>(i)]];
  }

  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const auto& table : tables_) {
      bytes += (table.proj.capacity() + table.offset.capacity()) * sizeof(double);
      bytes += table.bucket_of.capacity() * sizeof(uint32_t);
      bytes += table.buckets.capacity() * sizeof(std::vector<PointId>);
      for (const auto& bucket : table.buckets) {
        bytes += bucket.capacity() * sizeof(PointId);
      }
    }
    return bytes;
  }

 private:
  struct Table {
    std::vector<double> proj;     ///< num_projections x dim directions
    std::vector<double> offset;   ///< one uniform offset per projection
    std::vector<std::vector<PointId>> buckets;
    std::vector<uint32_t> bucket_of;  ///< point id -> bucket index
  };

  void Build(const PointSet& points) {
    const PointId n = points.size();
    const int k = params_.num_projections;
    const double w = params_.bucket_width;
    Rng rng(params_.seed);
    tables_.assign(static_cast<size_t>(params_.num_tables), Table{});
    std::vector<int64_t> key(static_cast<size_t>(k));
    // One identity-order transposed view shared by every table's
    // projection pass.
    const PointSetSoA soa(points);
    constexpr PointId kTile = 2048;
    std::vector<double> dots(static_cast<size_t>(k) *
                             static_cast<size_t>(std::min(n, kTile)));
    for (Table& table : tables_) {
      table.proj.resize(static_cast<size_t>(k) * static_cast<size_t>(points.dim()));
      for (double& v : table.proj) v = rng.NextGaussian();
      table.offset.resize(static_cast<size_t>(k));
      for (double& v : table.offset) v = rng.Uniform(0.0, w);
      table.bucket_of.resize(static_cast<size_t>(n));
      std::unordered_map<std::vector<int64_t>, uint32_t, Int64VectorHash> index;
      index.reserve(static_cast<size_t>(n) / 8 + 16);
      for (PointId t0 = 0; t0 < n; t0 += kTile) {
        const PointId len = std::min(kTile, n - t0);
        for (int j = 0; j < k; ++j) {
          kernels::DotBatch(soa, t0, len,
                            table.proj.data() + static_cast<size_t>(j) *
                                                    static_cast<size_t>(points.dim()),
                            dots.data() + static_cast<size_t>(j) *
                                              static_cast<size_t>(len));
        }
        // Key assembly and bucket insertion stay in ascending id order,
        // so bucket membership lists stay ascending (bit-identical to
        // the former per-point loop).
        for (PointId i = 0; i < len; ++i) {
          for (int j = 0; j < k; ++j) {
            const double dot =
                dots[static_cast<size_t>(j) * static_cast<size_t>(len) +
                     static_cast<size_t>(i)];
            key[static_cast<size_t>(j)] = static_cast<int64_t>(
                std::floor((dot + table.offset[static_cast<size_t>(j)]) / w));
          }
          const auto [it, inserted] = index.try_emplace(
              key, static_cast<uint32_t>(table.buckets.size()));
          if (inserted) table.buckets.emplace_back();
          table.buckets[it->second].push_back(t0 + i);
          table.bucket_of[static_cast<size_t>(t0 + i)] = it->second;
        }
      }
    }
  }

  LshParams params_;
  std::vector<Table> tables_;
};

}  // namespace dpc

#endif  // DPC_INDEX_LSH_H_
