// Bulk-loaded R-tree (Sort-Tile-Recursive packing) — the index behind the
// "R-tree + Scan" baseline of §6: it accelerates the rho phase's range
// counting while the dependent-point phase stays a quadratic scan.
//
// Like the kd-tree, RangeCount does whole-subtree accounting: a node whose
// MBR lies entirely inside the query ball contributes its subtree size
// without visiting points. The tree is immutable after Build() and safe
// for concurrent queries.
//
// Hot-path layout: Build() materializes an SoA (dimension-major) copy of
// the points in perm_ order, so leaf ranges are contiguous SoA runs and
// the fringe counting runs on kernels::RangeCountBatch (bit-identical to
// the scalar loop — see core/kernels.h).
#ifndef DPC_INDEX_RTREE_H_
#define DPC_INDEX_RTREE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "core/dpc.h"
#include "core/kernels.h"
#include "core/soa.h"

namespace dpc {

class RTree {
 public:
  static constexpr int kLeafSize = 32;
  static constexpr int kFanout = 8;

  RTree() = default;
  explicit RTree(const PointSet& points) { Build(points); }

  void Build(const PointSet& points) {
    points_ = &points;
    dim_ = points.dim();
    nodes_.clear();
    boxes_.clear();
    perm_.resize(static_cast<size_t>(points.size()));
    std::iota(perm_.begin(), perm_.end(), PointId{0});
    if (perm_.empty()) {
      root_ = -1;
      return;
    }
    // STR: recursively tile the id range into kFanout slabs along the
    // widest dimension until ranges fit in a leaf.
    root_ = BuildNode(0, static_cast<PointId>(perm_.size()));
    // Leaf-contiguous SoA view (perm_ order).
    soa_.Assign(points, perm_.data(), static_cast<PointId>(perm_.size()),
                /*store_ids=*/false);
  }

  PointId size() const { return static_cast<PointId>(perm_.size()); }

  /// Number of points within distance r of q.
  PointId RangeCount(const double* q, double r) const {
    if (root_ < 0) return 0;
    PointId count = 0;
    CountRec(root_, q, r * r, &count);
    return count;
  }

  /// RangeCount with one id excluded from the tally.
  PointId RangeCount(const double* q, double r, PointId exclude) const {
    PointId count = RangeCount(q, r);
    if (exclude >= 0 && exclude < size() &&
        SquaredDistance(q, (*points_)[exclude], dim_) <= r * r) {
      --count;
    }
    return count;
  }

  size_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(Node) + boxes_.capacity() * sizeof(double) +
           perm_.capacity() * sizeof(PointId) +
           child_index_.capacity() * sizeof(int32_t) + soa_.MemoryBytes();
  }

 private:
  struct Node {
    PointId begin = 0;  // range in perm_
    PointId end = 0;
    int32_t first_child = -1;  // offset into child_index_; -1 for leaves
    int32_t num_children = 0;
    int32_t box = 0;  // offset into boxes_ (2 * dim_ doubles: lo, hi)
  };

  int32_t BuildNode(PointId begin, PointId end) {
    const int32_t id = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    Node node;
    node.begin = begin;
    node.end = end;
    node.box = static_cast<int32_t>(boxes_.size());
    boxes_.resize(boxes_.size() + static_cast<size_t>(2 * dim_));
    {
      double* lo = boxes_.data() + node.box;
      double* hi = lo + dim_;
      for (int d = 0; d < dim_; ++d) {
        lo[d] = std::numeric_limits<double>::infinity();
        hi[d] = -std::numeric_limits<double>::infinity();
      }
      for (PointId i = begin; i < end; ++i) {
        const double* p = (*points_)[perm_[static_cast<size_t>(i)]];
        for (int d = 0; d < dim_; ++d) {
          lo[d] = std::min(lo[d], p[d]);
          hi[d] = std::max(hi[d], p[d]);
        }
      }
    }
    if (end - begin > kLeafSize) {
      // Sort the slab along its widest dimension, then cut into kFanout
      // equal tiles (boxes_ may reallocate in recursion; re-read widths
      // from a local copy).
      int split_dim = 0;
      {
        const double* lo = boxes_.data() + node.box;
        const double* hi = lo + dim_;
        double widest = -1.0;
        for (int d = 0; d < dim_; ++d) {
          const double w = hi[d] - lo[d];
          if (w > widest) {
            widest = w;
            split_dim = d;
          }
        }
      }
      std::sort(perm_.begin() + begin, perm_.begin() + end,
                [this, split_dim](PointId a, PointId b) {
                  const double xa = (*points_)[a][split_dim];
                  const double xb = (*points_)[b][split_dim];
                  return xa != xb ? xa < xb : a < b;
                });
      const PointId count = end - begin;
      const PointId tile = (count + kFanout - 1) / kFanout;
      std::vector<int32_t> children;
      for (PointId b = begin; b < end; b += tile) {
        children.push_back(BuildNode(b, std::min(b + tile, end)));
      }
      // STR recursion emits children depth-first, so they are NOT
      // contiguous in nodes_; store explicit indices instead.
      node.num_children = static_cast<int32_t>(children.size());
      child_index_.insert(child_index_.end(), children.begin(), children.end());
      node.first_child = static_cast<int32_t>(child_index_.size() -
                                              children.size());
    }
    nodes_[static_cast<size_t>(id)] = node;
    return id;
  }

  double MinSqToBox(const Node& node, const double* q) const {
    const double* lo = boxes_.data() + node.box;
    const double* hi = lo + dim_;
    double s = 0.0;
    for (int d = 0; d < dim_; ++d) {
      double diff = 0.0;
      if (q[d] < lo[d]) {
        diff = lo[d] - q[d];
      } else if (q[d] > hi[d]) {
        diff = q[d] - hi[d];
      }
      s += diff * diff;
    }
    return s;
  }

  double MaxSqToBox(const Node& node, const double* q) const {
    const double* lo = boxes_.data() + node.box;
    const double* hi = lo + dim_;
    double s = 0.0;
    for (int d = 0; d < dim_; ++d) {
      const double diff = std::max(q[d] - lo[d], hi[d] - q[d]);
      s += diff * diff;
    }
    return s;
  }

  void CountRec(int32_t ni, const double* q, double r_sq, PointId* count) const {
    const Node& node = nodes_[static_cast<size_t>(ni)];
    if (MinSqToBox(node, q) > r_sq) return;
    if (MaxSqToBox(node, q) <= r_sq) {
      *count += node.end - node.begin;  // whole subtree inside the ball
      return;
    }
    if (node.num_children == 0) {
      *count += kernels::RangeCountBatch(soa_, node.begin,
                                         node.end - node.begin, q, r_sq);
      return;
    }
    for (int32_t c = 0; c < node.num_children; ++c) {
      CountRec(child_index_[static_cast<size_t>(node.first_child + c)], q, r_sq,
               count);
    }
  }

  const PointSet* points_ = nullptr;
  int dim_ = 0;
  int32_t root_ = -1;
  std::vector<PointId> perm_;
  std::vector<Node> nodes_;
  std::vector<int32_t> child_index_;
  std::vector<double> boxes_;
  PointSetSoA soa_;
};

}  // namespace dpc

#endif  // DPC_INDEX_RTREE_H_
