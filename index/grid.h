// Uniform grid over a PointSet — the substrate of the paper's grid-based
// approximations (Approx-DPC §4, S-Approx-DPC §5). Cells are hypercubes
// of a caller-chosen side; with side = d_cut / sqrt(dim) the cell
// diameter is bounded by d_cut, so any two points sharing a cell are
// within d_cut of each other — the property both algorithms lean on.
//
// Cells are keyed by their exact integer coordinates (hash collisions
// fall back to coordinate equality), so distant cells can never silently
// merge. Build is serial and cells are stored in first-touch (= point-id)
// order, which keeps every consumer deterministic regardless of thread
// count.
#ifndef DPC_INDEX_GRID_H_
#define DPC_INDEX_GRID_H_

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "core/dpc.h"

namespace dpc {

/// Index into UniformGrid::cells() — the unit the §4.5 LPT scheduler
/// partitions across threads.
using CellId = int64_t;

class UniformGrid {
 public:
  using CellCoords = std::vector<int64_t>;

  struct Cell {
    CellCoords coords;             ///< integer cell coordinates
    std::vector<PointId> members;  ///< point ids, ascending
  };

  UniformGrid() = default;
  UniformGrid(const PointSet& points, double cell_side) {
    Build(points, cell_side);
  }

  void Build(const PointSet& points, double cell_side) {
    cell_side_ = cell_side;
    cells_.clear();
    index_.clear();
    const PointId n = points.size();
    const int dim = points.dim();
    index_.reserve(static_cast<size_t>(n) / 4 + 16);
    CellCoords key(static_cast<size_t>(dim));
    for (PointId i = 0; i < n; ++i) {
      for (int d = 0; d < dim; ++d) {
        key[static_cast<size_t>(d)] =
            static_cast<int64_t>(std::floor(points[i][d] / cell_side));
      }
      const auto [it, inserted] = index_.try_emplace(key, cells_.size());
      if (inserted) {
        cells_.push_back(Cell{key, {}});
      }
      cells_[it->second].members.push_back(i);
    }
  }

  CellId num_cells() const { return static_cast<CellId>(cells_.size()); }
  double cell_side() const { return cell_side_; }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<PointId>& members(CellId cell) const {
    return cells_[static_cast<size_t>(cell)].members;
  }

  /// The cell-local point ordering the SoA hot path reorders by
  /// (core/soa.h): `order` concatenates every cell's members (so points
  /// sharing a cell are contiguous), and cell c spans positions
  /// [cell_begin[c], cell_begin[c + 1]) of that order. Build order is
  /// first-touch, so the ordering — like everything else about the grid
  /// — is deterministic for a fixed input.
  struct Ordering {
    std::vector<PointId> order;       ///< SoA position -> point id
    std::vector<PointId> cell_begin;  ///< num_cells() + 1 span offsets
  };

  Ordering CellOrdering() const {
    Ordering out;
    size_t total = 0;
    for (const auto& cell : cells_) total += cell.members.size();
    out.order.reserve(total);
    out.cell_begin.reserve(cells_.size() + 1);
    out.cell_begin.push_back(0);
    for (const auto& cell : cells_) {
      out.order.insert(out.order.end(), cell.members.begin(), cell.members.end());
      out.cell_begin.push_back(static_cast<PointId>(out.order.size()));
    }
    return out;
  }

  /// §4.5 cost-model hook for the LPT scheduler: the per-point phases do
  /// work proportional to a cell's population, so cost(c) = |P(c)|.
  /// Feed this straight into LptSchedule / ParallelForWithCosts.
  std::vector<double> CellCosts() const {
    std::vector<double> costs;
    costs.reserve(cells_.size());
    for (const auto& cell : cells_) {
      costs.push_back(static_cast<double>(cell.members.size()));
    }
    return costs;
  }

  size_t MemoryBytes() const {
    size_t bytes = cells_.capacity() * sizeof(Cell);
    for (const auto& cell : cells_) {
      bytes += cell.coords.capacity() * sizeof(int64_t) +
               cell.members.capacity() * sizeof(PointId);
    }
    // unordered_map overhead: one bucket pointer + one node per cell.
    bytes += index_.bucket_count() * sizeof(void*) +
             index_.size() * (sizeof(CellCoords) + 2 * sizeof(void*) + sizeof(size_t));
    return bytes;
  }

 private:
  double cell_side_ = 0.0;
  std::vector<Cell> cells_;
  std::unordered_map<CellCoords, size_t, Int64VectorHash> index_;
};

}  // namespace dpc

#endif  // DPC_INDEX_GRID_H_
