// Incrementally-built kd-tree over an existing PointSet: points are
// Insert()ed one id at a time and become immediately queryable. Split
// dimension cycles with depth (the classic pointer-style kd-tree), which
// keeps insertion O(depth) with no rebalancing — sufficient for streaming
// scenarios and the index micro-benchmarks; bulk workloads should prefer
// the balanced index/kdtree.h.
#ifndef DPC_INDEX_DYNAMIC_KDTREE_H_
#define DPC_INDEX_DYNAMIC_KDTREE_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/dpc.h"

namespace dpc {

class DynamicKdTree {
 public:
  /// The tree indexes ids of `points`, which must outlive it; nothing is
  /// inserted yet.
  explicit DynamicKdTree(const PointSet& points)
      : points_(&points), dim_(points.dim()) {
    nodes_.reserve(static_cast<size_t>(points.size()));
  }

  PointId size() const { return static_cast<PointId>(nodes_.size()); }

  void Insert(PointId id) {
    const int32_t ni = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{id, -1, -1});
    if (ni == 0) return;
    const double* p = (*points_)[id];
    int32_t cur = 0;
    for (int depth = 0;; ++depth) {
      Node& node = nodes_[static_cast<size_t>(cur)];
      const int d = depth % dim_;
      const bool go_left = p[d] < (*points_)[node.id][d];
      int32_t& child = go_left ? node.left : node.right;
      if (child < 0) {
        child = ni;
        return;
      }
      cur = child;
    }
  }

  /// Nearest inserted point to q; -1 when empty. *out_dist (optional)
  /// receives the distance.
  PointId Nearest(const double* q, double* out_dist = nullptr) const {
    PointId best = -1;
    double best_sq = std::numeric_limits<double>::infinity();
    if (!nodes_.empty()) NearestRec(0, 0, q, &best, &best_sq);
    if (out_dist != nullptr) {
      *out_dist = best >= 0 ? std::sqrt(best_sq)
                            : std::numeric_limits<double>::infinity();
    }
    return best;
  }

  size_t MemoryBytes() const { return nodes_.capacity() * sizeof(Node); }

 private:
  struct Node {
    PointId id;
    int32_t left;
    int32_t right;
  };

  void NearestRec(int32_t ni, int depth, const double* q, PointId* best,
                  double* best_sq) const {
    const Node& node = nodes_[static_cast<size_t>(ni)];
    const double* p = (*points_)[node.id];
    const double d_sq = SquaredDistance(q, p, dim_);
    if (d_sq < *best_sq) {
      *best_sq = d_sq;
      *best = node.id;
    }
    const int d = depth % dim_;
    const double diff = q[d] - p[d];
    const int32_t near = diff < 0.0 ? node.left : node.right;
    const int32_t far = diff < 0.0 ? node.right : node.left;
    if (near >= 0) NearestRec(near, depth + 1, q, best, best_sq);
    if (far >= 0 && diff * diff < *best_sq) {
      NearestRec(far, depth + 1, q, best, best_sq);
    }
  }

  const PointSet* points_;
  int dim_;
  std::vector<Node> nodes_;
};

}  // namespace dpc

#endif  // DPC_INDEX_DYNAMIC_KDTREE_H_
