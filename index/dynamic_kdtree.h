// Incrementally-built bucket kd-tree over an existing PointSet: points
// are Insert()ed one id at a time and become immediately queryable.
// Unlike the classic one-point-per-node pointer tree, interior nodes
// store only a splitting hyperplane and points live in leaf BUCKETS of
// up to kBucketSize ids. A full bucket splits at the median of its
// widest-spread coordinate (cycling to the next dimension when every
// coordinate is equal; an all-duplicates bucket simply stays oversized).
//
// The bucket shape is what makes the query fast on modern cores: the
// descent is short, and the leaf scan is one batched gather
// (kernels::SquaredDistanceGather) over a contiguous id array instead of
// a pointer chase — the same batching discipline as the static indexes,
// with per-point arithmetic identical to the scalar reference.
// Insertion stays O(depth) amortized with no rebalancing — sufficient
// for streaming scenarios and the index micro-benchmarks; bulk
// workloads should prefer the balanced index/kdtree.h.
#ifndef DPC_INDEX_DYNAMIC_KDTREE_H_
#define DPC_INDEX_DYNAMIC_KDTREE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/kernels.h"

namespace dpc {

class DynamicKdTree {
 public:
  static constexpr int kBucketSize = 16;

  /// The tree indexes ids of `points`, which must outlive it; nothing is
  /// inserted yet.
  explicit DynamicKdTree(const PointSet& points)
      : points_(&points), dim_(points.dim()) {
    nodes_.push_back(Node{});  // root starts as an empty bucket
  }

  PointId size() const { return size_; }

  void Insert(PointId id) {
    ++size_;
    int32_t cur = 0;
    for (;;) {
      Node& node = nodes_[static_cast<size_t>(cur)];
      if (node.left < 0) {
        node.bucket.push_back(id);
        if (node.bucket.size() > static_cast<size_t>(kBucketSize)) {
          SplitLeaf(cur);
        }
        return;
      }
      cur = (*points_)[id][node.split_dim] < node.split_value ? node.left
                                                              : node.right;
    }
  }

  /// Nearest inserted point to q; -1 when empty. *out_dist (optional)
  /// receives the distance.
  PointId Nearest(const double* q, double* out_dist = nullptr) const {
    PointId best = -1;
    double best_sq = std::numeric_limits<double>::infinity();
    if (size_ > 0) NearestRec(0, q, &best, &best_sq);
    if (out_dist != nullptr) {
      *out_dist = best >= 0 ? std::sqrt(best_sq)
                            : std::numeric_limits<double>::infinity();
    }
    return best;
  }

  size_t MemoryBytes() const {
    size_t bytes = nodes_.capacity() * sizeof(Node);
    for (const auto& node : nodes_) {
      bytes += node.bucket.capacity() * sizeof(PointId);
    }
    return bytes;
  }

 private:
  struct Node {
    double split_value = 0.0;
    int32_t left = -1;   // child node indices; -1 = leaf bucket
    int32_t right = -1;
    int8_t split_dim = 0;
    std::vector<PointId> bucket;  // leaf members (empty on interior nodes)
  };

  void SplitLeaf(int32_t ni) {
    // Split on the widest-spread dimension; a bucket of coincident
    // points has no such dimension and simply stays oversized.
    std::vector<PointId>& bucket = nodes_[static_cast<size_t>(ni)].bucket;
    int split_dim = -1;
    double widest = 0.0;
    for (int d = 0; d < dim_; ++d) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const PointId id : bucket) {
        lo = std::min(lo, (*points_)[id][d]);
        hi = std::max(hi, (*points_)[id][d]);
      }
      if (hi - lo > widest) {
        widest = hi - lo;
        split_dim = d;
      }
    }
    if (split_dim < 0) return;  // all points coincide; keep the big bucket
    const size_t mid = bucket.size() / 2;
    std::nth_element(bucket.begin(), bucket.begin() + static_cast<int64_t>(mid),
                     bucket.end(), [this, split_dim](PointId a, PointId b) {
                       const double xa = (*points_)[a][split_dim];
                       const double xb = (*points_)[b][split_dim];
                       return xa != xb ? xa < xb : a < b;
                     });
    const double sv = (*points_)[bucket[mid]][split_dim];
    // Partition strictly by value. When duplicates of the median span
    // the whole bucket on this dim, one side comes out empty — bail and
    // keep the oversized bucket rather than creating a useless split.
    std::vector<PointId> left_ids, right_ids;
    left_ids.reserve(bucket.size());
    right_ids.reserve(bucket.size());
    for (const PointId id : bucket) {
      ((*points_)[id][split_dim] < sv ? left_ids : right_ids).push_back(id);
    }
    if (left_ids.empty() || right_ids.empty()) return;
    const int32_t li = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    const int32_t ri = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{});  // may reallocate: re-take the reference
    Node& node = nodes_[static_cast<size_t>(ni)];
    node.split_value = sv;
    node.split_dim = static_cast<int8_t>(split_dim);
    node.left = li;
    node.right = ri;
    nodes_[static_cast<size_t>(li)].bucket = std::move(left_ids);
    nodes_[static_cast<size_t>(ri)].bucket = std::move(right_ids);
    node.bucket.clear();
    node.bucket.shrink_to_fit();
  }

  void NearestRec(int32_t ni, const double* q, PointId* best,
                  double* best_sq) const {
    const Node& node = nodes_[static_cast<size_t>(ni)];
    if (node.left < 0) {
      const PointId len = static_cast<PointId>(node.bucket.size());
      if (len == 0) return;
      double buf[2 * kBucketSize];  // oversized duplicate buckets spill below
      double* d_sq = buf;
      std::vector<double> heap_buf;
      if (len > static_cast<PointId>(2 * kBucketSize)) {
        heap_buf.resize(static_cast<size_t>(len));
        d_sq = heap_buf.data();
      }
      kernels::SquaredDistanceGather(*points_, node.bucket.data(), len, q, d_sq);
      for (PointId k = 0; k < len; ++k) {
        if (d_sq[k] < *best_sq) {
          *best_sq = d_sq[k];
          *best = node.bucket[static_cast<size_t>(k)];
        }
      }
      return;
    }
    const double diff = q[node.split_dim] - node.split_value;
    const int32_t near = diff < 0.0 ? node.left : node.right;
    const int32_t far = diff < 0.0 ? node.right : node.left;
    NearestRec(near, q, best, best_sq);
    if (diff * diff < *best_sq) NearestRec(far, q, best, best_sq);
  }

  const PointSet* points_;
  int dim_;
  PointId size_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace dpc

#endif  // DPC_INDEX_DYNAMIC_KDTREE_H_
