// Bulk-loaded kd-tree (Ex-DPC's index, paper §3). Supports the three
// queries the algorithms need:
//
//   * RangeCount   — |ball(q, r)|, with whole-subtree accounting: a node
//                    whose bounding box lies entirely inside the ball
//                    contributes its subtree size without visiting points
//                    (this is what makes the rho phase subquadratic).
//   * RangeReport  — ids inside ball(q, r).
//   * NearestAccepted — nearest neighbor among points satisfying a caller
//                    predicate; used for the delta phase, where the
//                    predicate is "denser than the query point".
//
// The tree is immutable after Build() and safe for concurrent queries.
//
// Hot-path layout: Build() materializes an SoA (dimension-major) copy of
// the points in perm_ order, so every leaf's points occupy a contiguous
// run of SoA positions and the leaf loops run on the batched kernels of
// core/kernels.h instead of per-point scalar distance calls. Results are
// bit-identical to the scalar loops (see core/kernels.h).
#ifndef DPC_INDEX_KDTREE_H_
#define DPC_INDEX_KDTREE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/kernels.h"
#include "core/soa.h"

namespace dpc {

class KdTree {
 public:
  static constexpr int kLeafSize = 32;

  KdTree() = default;
  /// Convenience: build immediately over `points` (which must outlive
  /// the tree).
  explicit KdTree(const PointSet& points) { Build(points); }

  void Build(const PointSet& points) {
    points_ = &points;
    dim_ = points.dim();
    const PointId n = points.size();
    perm_.resize(static_cast<size_t>(n));
    for (PointId i = 0; i < n; ++i) perm_[static_cast<size_t>(i)] = i;
    nodes_.clear();
    boxes_.clear();
    nodes_.reserve(static_cast<size_t>(2 * n / kLeafSize + 4));
    if (n > 0) BuildNode(0, n);
    // Leaf-contiguous SoA view (perm_ order); perm_ already maps
    // positions back to ids, so the view needn't store its own copy.
    soa_.Assign(points, perm_.data(), n, /*store_ids=*/false);
  }

  /// Number of indexed points.
  PointId size() const { return static_cast<PointId>(perm_.size()); }

  /// Number of points within distance r of q (q itself included when it
  /// is a member of the indexed set).
  PointId RangeCount(const double* q, double r) const {
    if (nodes_.empty()) return 0;
    PointId count = 0;
    CountRec(0, q, r * r, &count);
    return count;
  }

  /// RangeCount with one id excluded from the tally — the usual spelling
  /// when q is itself an indexed point.
  PointId RangeCount(const double* q, double r, PointId exclude) const {
    PointId count = RangeCount(q, r);
    if (exclude >= 0 && exclude < size() &&
        SquaredDistance(q, (*points_)[exclude], dim_) <= r * r) {
      --count;
    }
    return count;
  }

  /// Nearest indexed point to q other than `exclude` (-1 accepts all);
  /// *out_dist (optional) receives the distance.
  PointId Nearest(const double* q, PointId exclude = -1,
                  double* out_dist = nullptr) const {
    return NearestAccepted(
        q, [exclude](PointId id) { return id != exclude; }, out_dist);
  }

  /// Predicate-free nearest neighbor: like NearestAccepted with an
  /// accept-all predicate, but leaves run the branchless MinDistanceBatch
  /// kernel. `max_dist` seeds the pruning bound exactly as in
  /// NearestAccepted (-1 means "nothing beat the bound"). Approx-DPC's
  /// density-ordered subset search uses this for every subset that
  /// wholly outranks the query peak.
  PointId NearestWithin(
      const double* q, double* out_dist,
      double max_dist = std::numeric_limits<double>::infinity()) const {
    PointId best = -1;
    double best_sq = max_dist < std::numeric_limits<double>::infinity()
                         ? max_dist * max_dist
                         : std::numeric_limits<double>::infinity();
    if (!nodes_.empty()) NearestAllRec(0, q, &best, &best_sq);
    if (out_dist != nullptr) {
      *out_dist = best >= 0 ? std::sqrt(best_sq)
                            : std::numeric_limits<double>::infinity();
    }
    return best;
  }

  /// The paper's §4.2 joint range search: counts, for every query id in
  /// `queries` (members of the indexed set), the points within distance
  /// r — one shared traversal per call instead of one per query. The
  /// caller passes the queries' bounding box (lo/hi, dim doubles each;
  /// for Approx-DPC, a grid cell's member box): subtrees entirely within
  /// r of the whole box are counted wholesale for every query, subtrees
  /// farther than r from the box are skipped for every query, and only
  /// the fringe does per-pair work. (*counts)[k] receives
  /// |ball(queries[k], r)|, the query point itself included — exactly
  /// what per-point RangeCount would return.
  void JointRangeCount(const double* lo, const double* hi,
                       const std::vector<PointId>& queries, double r,
                       std::vector<PointId>* counts) const {
    counts->assign(queries.size(), 0);
    if (nodes_.empty() || queries.empty()) return;
    JointCountRec(0, lo, hi, queries, r * r, counts);
  }

  /// Appends the ids of all points within distance r of q to *out.
  void RangeReport(const double* q, double r, std::vector<PointId>* out) const {
    if (nodes_.empty()) return;
    ReportRec(0, q, r * r, out);
  }

  /// Nearest point to q among those with accept(id) == true; returns -1
  /// when no point is accepted. *out_dist receives the distance.
  /// `max_dist` seeds the pruning bound: only points strictly closer
  /// than it are reported, so a caller scanning several trees for one
  /// global nearest neighbor can pass its running best and let whole
  /// trees prune away (-1 then means "nothing beat the bound").
  template <typename Accept>
  PointId NearestAccepted(
      const double* q, const Accept& accept, double* out_dist,
      double max_dist = std::numeric_limits<double>::infinity()) const {
    PointId best = -1;
    double best_sq = max_dist < std::numeric_limits<double>::infinity()
                         ? max_dist * max_dist
                         : std::numeric_limits<double>::infinity();
    if (!nodes_.empty()) NearestRec(0, q, accept, &best, &best_sq);
    if (out_dist != nullptr) {
      *out_dist = best >= 0 ? std::sqrt(best_sq)
                            : std::numeric_limits<double>::infinity();
    }
    return best;
  }

  /// NearestAccepted with the bound and the result kept in the SQUARED
  /// domain: `max_dist_sq` seeds the pruning bound directly and
  /// *out_dist_sq receives the squared distance of the winner (infinity
  /// when best is -1). The sharded solver's halo merge needs this form:
  /// a local candidate's squared distance can be widened by one ulp
  /// (`nextafter`) and passed straight through, whereas squaring a
  /// caller-side sqrt could round back below the candidate and violate
  /// the strict `<` update that makes bounded and unbounded searches
  /// return the identical winner.
  template <typename Accept>
  PointId NearestAcceptedSq(
      const double* q, const Accept& accept, double* out_dist_sq,
      double max_dist_sq = std::numeric_limits<double>::infinity()) const {
    PointId best = -1;
    double best_sq = max_dist_sq;
    if (!nodes_.empty()) NearestRec(0, q, accept, &best, &best_sq);
    if (out_dist_sq != nullptr) {
      *out_dist_sq =
          best >= 0 ? best_sq : std::numeric_limits<double>::infinity();
    }
    return best;
  }

  size_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(Node) + boxes_.capacity() * sizeof(double) +
           perm_.capacity() * sizeof(PointId) + soa_.MemoryBytes();
  }

 private:
  struct Node {
    PointId begin = 0;       // range in perm_
    PointId end = 0;
    int32_t left = -1;       // child node indices; -1 for leaves
    int32_t right = -1;
    int32_t box = 0;         // offset into boxes_ (2 * dim_ doubles: lo, hi)
  };

  int32_t BuildNode(PointId begin, PointId end) {
    const int32_t id = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    Node node;
    node.begin = begin;
    node.end = end;
    node.box = static_cast<int32_t>(boxes_.size());
    boxes_.resize(boxes_.size() + static_cast<size_t>(2 * dim_));
    double* lo = boxes_.data() + node.box;
    double* hi = lo + dim_;
    for (int d = 0; d < dim_; ++d) {
      lo[d] = std::numeric_limits<double>::infinity();
      hi[d] = -std::numeric_limits<double>::infinity();
    }
    for (PointId i = begin; i < end; ++i) {
      const double* p = (*points_)[perm_[static_cast<size_t>(i)]];
      for (int d = 0; d < dim_; ++d) {
        lo[d] = std::min(lo[d], p[d]);
        hi[d] = std::max(hi[d], p[d]);
      }
    }
    if (end - begin > kLeafSize) {
      // Split at the median of the widest dimension.
      int split_dim = 0;
      double widest = -1.0;
      for (int d = 0; d < dim_; ++d) {
        const double w = hi[d] - lo[d];
        if (w > widest) {
          widest = w;
          split_dim = d;
        }
      }
      const PointId mid = begin + (end - begin) / 2;
      std::nth_element(perm_.begin() + begin, perm_.begin() + mid,
                       perm_.begin() + end, [this, split_dim](PointId a, PointId b) {
                         return (*points_)[a][split_dim] < (*points_)[b][split_dim];
                       });
      // boxes_ may reallocate during recursion; don't hold lo/hi across it.
      const int32_t left = BuildNode(begin, mid);
      const int32_t right = BuildNode(mid, end);
      node.left = left;
      node.right = right;
    }
    nodes_[static_cast<size_t>(id)] = node;
    return id;
  }

  /// Squared distance from q to the node's bounding box (0 if inside).
  double MinSqToBox(const Node& node, const double* q) const {
    const double* lo = boxes_.data() + node.box;
    const double* hi = lo + dim_;
    double s = 0.0;
    for (int d = 0; d < dim_; ++d) {
      double diff = 0.0;
      if (q[d] < lo[d]) {
        diff = lo[d] - q[d];
      } else if (q[d] > hi[d]) {
        diff = q[d] - hi[d];
      }
      s += diff * diff;
    }
    return s;
  }

  /// Squared distance from q to the farthest corner of the box.
  double MaxSqToBox(const Node& node, const double* q) const {
    const double* lo = boxes_.data() + node.box;
    const double* hi = lo + dim_;
    double s = 0.0;
    for (int d = 0; d < dim_; ++d) {
      const double diff = std::max(q[d] - lo[d], hi[d] - q[d]);
      s += diff * diff;
    }
    return s;
  }

  /// Squared distance between the query box [qlo, qhi] and a node's box
  /// (0 when they intersect).
  double MinSqBoxToBox(const Node& node, const double* qlo,
                       const double* qhi) const {
    const double* lo = boxes_.data() + node.box;
    const double* hi = lo + dim_;
    double s = 0.0;
    for (int d = 0; d < dim_; ++d) {
      double diff = 0.0;
      if (qhi[d] < lo[d]) {
        diff = lo[d] - qhi[d];
      } else if (qlo[d] > hi[d]) {
        diff = qlo[d] - hi[d];
      }
      s += diff * diff;
    }
    return s;
  }

  /// Squared distance between the farthest pair of corners of the query
  /// box and the node's box — an upper bound for every (query, point)
  /// pair the two boxes contain.
  double MaxSqBoxToBox(const Node& node, const double* qlo,
                       const double* qhi) const {
    const double* lo = boxes_.data() + node.box;
    const double* hi = lo + dim_;
    double s = 0.0;
    for (int d = 0; d < dim_; ++d) {
      const double diff = std::max(hi[d] - qlo[d], qhi[d] - lo[d]);
      s += diff * diff;
    }
    return s;
  }

  void JointCountRec(int32_t ni, const double* qlo, const double* qhi,
                     const std::vector<PointId>& queries, double r_sq,
                     std::vector<PointId>* counts) const {
    const Node& node = nodes_[static_cast<size_t>(ni)];
    if (MinSqBoxToBox(node, qlo, qhi) > r_sq) return;
    if (MaxSqBoxToBox(node, qlo, qhi) <= r_sq) {
      const PointId subtree = node.end - node.begin;
      for (PointId& count : *counts) count += subtree;
      return;
    }
    if (node.left < 0) {
      // Fringe leaf: one kernel sweep over the leaf's contiguous SoA run
      // per query (the ball test is symmetric).
      for (size_t k = 0; k < queries.size(); ++k) {
        (*counts)[k] += kernels::RangeCountBatch(
            soa_, node.begin, node.end - node.begin, (*points_)[queries[k]],
            r_sq);
      }
      return;
    }
    JointCountRec(node.left, qlo, qhi, queries, r_sq, counts);
    JointCountRec(node.right, qlo, qhi, queries, r_sq, counts);
  }

  void CountRec(int32_t ni, const double* q, double r_sq, PointId* count) const {
    const Node& node = nodes_[static_cast<size_t>(ni)];
    if (MinSqToBox(node, q) > r_sq) return;
    if (MaxSqToBox(node, q) <= r_sq) {
      *count += node.end - node.begin;  // whole subtree inside the ball
      return;
    }
    if (node.left < 0) {
      *count += kernels::RangeCountBatch(soa_, node.begin,
                                         node.end - node.begin, q, r_sq);
      return;
    }
    CountRec(node.left, q, r_sq, count);
    CountRec(node.right, q, r_sq, count);
  }

  void ReportRec(int32_t ni, const double* q, double r_sq,
                 std::vector<PointId>* out) const {
    const Node& node = nodes_[static_cast<size_t>(ni)];
    if (MinSqToBox(node, q) > r_sq) return;
    if (MaxSqToBox(node, q) <= r_sq) {
      // Whole subtree inside the ball: report wholesale, no distances.
      for (PointId i = node.begin; i < node.end; ++i) {
        out->push_back(perm_[static_cast<size_t>(i)]);
      }
      return;
    }
    if (node.left < 0) {
      double buf[kLeafSize];
      const PointId len = node.end - node.begin;
      kernels::SquaredDistanceBatch(soa_, node.begin, len, q, buf);
      for (PointId i = 0; i < len; ++i) {
        if (buf[i] <= r_sq) {
          out->push_back(perm_[static_cast<size_t>(node.begin + i)]);
        }
      }
      return;
    }
    ReportRec(node.left, q, r_sq, out);
    ReportRec(node.right, q, r_sq, out);
  }

  template <typename Accept>
  void NearestRec(int32_t ni, const double* q, const Accept& accept, PointId* best,
                  double* best_sq) const {
    const Node& node = nodes_[static_cast<size_t>(ni)];
    // `>` (not `>=`): a box at exactly *best_sq may still hold an
    // equal-distance point with a smaller id, and the tie-break below must
    // see it for the winner to be tree-shape independent.
    if (MinSqToBox(node, q) > *best_sq) return;
    if (node.left < 0) {
      // Distances come from one kernel sweep; exact-distance ties break to
      // the smallest id, so the winner depends only on the candidate SET,
      // never on leaf order or tree shape. This is what lets a shard-local
      // search stand in for the global one when the candidate sets agree
      // (core/sharded_dpc.h halo-complete fast path), and it matches the
      // ascending-id strict-< scan baselines. A point at exactly the seeded
      // bound (*best == -1) still loses: the bound itself is not a winner.
      double buf[kLeafSize];
      const PointId len = node.end - node.begin;
      kernels::SquaredDistanceBatch(soa_, node.begin, len, q, buf);
      for (PointId i = 0; i < len; ++i) {
        const PointId id = perm_[static_cast<size_t>(node.begin + i)];
        if (!accept(id)) continue;
        if (buf[i] < *best_sq ||
            (buf[i] == *best_sq && *best >= 0 && id < *best)) {
          *best_sq = buf[i];
          *best = id;
        }
      }
      return;
    }
    // Descend the nearer child first so the bound tightens early.
    const double dl = MinSqToBox(nodes_[static_cast<size_t>(node.left)], q);
    const double dr = MinSqToBox(nodes_[static_cast<size_t>(node.right)], q);
    const int32_t first = dl <= dr ? node.left : node.right;
    const int32_t second = dl <= dr ? node.right : node.left;
    NearestRec(first, q, accept, best, best_sq);
    NearestRec(second, q, accept, best, best_sq);
  }

  void NearestAllRec(int32_t ni, const double* q, PointId* best,
                     double* best_sq) const {
    const Node& node = nodes_[static_cast<size_t>(ni)];
    if (MinSqToBox(node, q) >= *best_sq) return;
    if (node.left < 0) {
      const kernels::MinResult m = kernels::MinDistanceBatch(
          soa_, node.begin, node.end - node.begin, q);
      if (m.d_sq < *best_sq) {
        *best_sq = m.d_sq;
        *best = perm_[static_cast<size_t>(m.pos)];
      }
      return;
    }
    const double dl = MinSqToBox(nodes_[static_cast<size_t>(node.left)], q);
    const double dr = MinSqToBox(nodes_[static_cast<size_t>(node.right)], q);
    const int32_t first = dl <= dr ? node.left : node.right;
    const int32_t second = dl <= dr ? node.right : node.left;
    NearestAllRec(first, q, best, best_sq);
    NearestAllRec(second, q, best, best_sq);
  }

  const PointSet* points_ = nullptr;
  int dim_ = 0;
  std::vector<PointId> perm_;
  std::vector<Node> nodes_;
  std::vector<double> boxes_;
  PointSetSoA soa_;
};

}  // namespace dpc

#endif  // DPC_INDEX_KDTREE_H_
