// Pair-counting agreement between two labelings: Rand index and its
// chance-adjusted variant (ARI, Hubert & Arabie). Labels are compared
// verbatim — noise (-1) behaves as one extra cluster on each side, which
// is the convention the paper's quality tables use. Contingency-table
// formulation, O(n + #distinct label pairs).
#ifndef DPC_EVAL_RAND_INDEX_H_
#define DPC_EVAL_RAND_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dpc::eval {

namespace internal {

inline double PairsOf(double x) { return 0.5 * x * (x - 1.0); }

struct PairCounts {
  double n = 0;
  double sum_cells = 0;  ///< sum over contingency cells of C(n_ij, 2)
  double sum_rows = 0;   ///< sum over labels of a of C(n_i., 2)
  double sum_cols = 0;   ///< sum over labels of b of C(n_.j, 2)
};

inline PairCounts CountPairs(const std::vector<int64_t>& a,
                             const std::vector<int64_t>& b) {
  PairCounts out;
  out.n = static_cast<double>(a.size());
  std::unordered_map<int64_t, int64_t> rows, cols;
  std::unordered_map<uint64_t, int64_t> cells;
  for (size_t i = 0; i < a.size(); ++i) {
    ++rows[a[i]];
    ++cols[b[i]];
    // Labels fit in 32 bits; packing the pair keeps the key collision-free.
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(a[i])) << 32) |
        static_cast<uint64_t>(static_cast<uint32_t>(b[i]));
    ++cells[key];
  }
  for (const auto& [label, count] : rows) {
    out.sum_rows += PairsOf(static_cast<double>(count));
  }
  for (const auto& [label, count] : cols) {
    out.sum_cols += PairsOf(static_cast<double>(count));
  }
  for (const auto& [key, count] : cells) {
    out.sum_cells += PairsOf(static_cast<double>(count));
  }
  return out;
}

}  // namespace internal

/// Fraction of point pairs on which the labelings agree; 1.0 = identical
/// partitions. Requires a.size() == b.size() and at least 2 points.
inline double RandIndex(const std::vector<int64_t>& a,
                        const std::vector<int64_t>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const auto c = internal::CountPairs(a, b);
  const double total = internal::PairsOf(c.n);
  // agreements = pairs together in both + pairs apart in both
  const double together_both = c.sum_cells;
  const double apart_both = total - c.sum_rows - c.sum_cols + c.sum_cells;
  return (together_both + apart_both) / total;
}

/// Adjusted Rand index: 1.0 = identical, ~0 = chance-level agreement.
inline double AdjustedRandIndex(const std::vector<int64_t>& a,
                                const std::vector<int64_t>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const auto c = internal::CountPairs(a, b);
  const double total = internal::PairsOf(c.n);
  const double expected = c.sum_rows * c.sum_cols / total;
  const double max_index = 0.5 * (c.sum_rows + c.sum_cols);
  const double denom = max_index - expected;
  if (denom == 0.0) return 1.0;  // both partitions are trivial and equal
  return (c.sum_cells - expected) / denom;
}

}  // namespace dpc::eval

#endif  // DPC_EVAL_RAND_INDEX_H_
