// Environment-driven sizing for the §6 reproduction benches, so the same
// binaries scale from a laptop smoke run to a paper-scale machine:
//
//   DPC_BENCH_SCALE    fraction of each dataset's published cardinality
//                      (default 0.02 — Airline ~116k instead of 5.8M)
//   DPC_BENCH_THREADS  worker-thread cap (default: all hardware threads)
//   DPC_BENCH_HEAVY    1 = let the O(n^2) baselines run at full size
//                      instead of being capped + extrapolated
#ifndef DPC_EVAL_BENCH_CONFIG_H_
#define DPC_EVAL_BENCH_CONFIG_H_

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "core/dpc.h"

namespace dpc::eval {

struct BenchConfig {
  double scale = 0.02;   ///< dataset-cardinality multiplier
  int max_threads = 1;   ///< thread cap for each run's ExecutionContext
  bool heavy = false;    ///< run quadratic baselines uncapped

  /// The published cardinality scaled down, floored so tiny scales still
  /// exercise real cluster structure.
  PointId Scaled(PointId full_cardinality) const {
    const auto scaled =
        static_cast<PointId>(static_cast<double>(full_cardinality) * scale);
    return std::max<PointId>(scaled, 1000);
  }

  /// Largest n the O(n^2) baselines run at before the harness samples the
  /// input and extrapolates quadratically (bench_util.h::RunTimed).
  PointId QuadraticCap() const { return heavy ? 1000000000 : 20000; }
};

inline BenchConfig LoadBenchConfig() {
  BenchConfig cfg;
  if (const char* s = std::getenv("DPC_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) cfg.scale = v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  cfg.max_threads = hc > 0 ? static_cast<int>(hc) : 1;
  if (const char* s = std::getenv("DPC_BENCH_THREADS")) {
    const int v = std::atoi(s);
    if (v > 0) cfg.max_threads = v;
  }
  if (const char* s = std::getenv("DPC_BENCH_HEAVY")) {
    cfg.heavy = std::atoi(s) != 0;
  }
  return cfg;
}

}  // namespace dpc::eval

#endif  // DPC_EVAL_BENCH_CONFIG_H_
