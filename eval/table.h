// Minimal fixed-width text table for the bench printouts: column widths
// auto-fit the widest cell, numbers stay untouched (formatting is the
// caller's job — see common/string_util.h's StrFormat).
#ifndef DPC_EVAL_TABLE_H_
#define DPC_EVAL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace dpc::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
  }

  void Print(std::FILE* out = stdout) const {
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    PrintRow(out, headers_, width);
    std::string rule;
    for (size_t c = 0; c < width.size(); ++c) {
      rule.append(width[c] + (c + 1 < width.size() ? 2 : 0), '-');
    }
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(out, row, width);
  }

 private:
  static void PrintRow(std::FILE* out, const std::vector<std::string>& row,
                       const std::vector<size_t>& width) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s%s", static_cast<int>(width[c]), row[c].c_str(),
                   c + 1 < row.size() ? "  " : "");
    }
    std::fprintf(out, "\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpc::eval

#endif  // DPC_EVAL_TABLE_H_
