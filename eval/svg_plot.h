// Self-contained SVG writers for the figure-style benches: a 2-D labeled
// scatter (Figure 6's panels) and a (rho, delta) decision graph
// (Figure 1b). No plotting dependency — the benches must run in a bare
// container and still leave something a human can open in a browser.
//
// Only the first two coordinates are drawn for dim > 2. Large inputs are
// deterministically subsampled (stateless per-point hash) so the files
// stay viewer-friendly.
#ifndef DPC_EVAL_SVG_PLOT_H_
#define DPC_EVAL_SVG_PLOT_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/decision_graph.h"
#include "core/dpc.h"
#include "core/rng.h"
#include "core/status.h"

namespace dpc::eval {

struct SvgOptions {
  std::string title;
  int width = 760;
  int height = 760;
  PointId max_points = 20000;  ///< subsample cap for the scatter
  double point_radius = 1.6;
};

namespace internal {

/// Qualitative palette (12 hues); noise is drawn grey, unassigned silver.
inline const char* LabelColor(int64_t label) {
  static const char* kPalette[] = {
      "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#ff8ab7",
      "#a463f2", "#97bbf5", "#9c6b4e", "#bcbd22", "#17becf", "#e15759"};
  if (label == kNoise) return "#9aa0a6";
  if (label < 0) return "#d0d0d0";
  return kPalette[static_cast<size_t>(label) % (sizeof(kPalette) / sizeof(*kPalette))];
}

struct Mapper {
  double lo_x, lo_y, scale_x, scale_y;
  int height, margin;
  double X(double x) const { return margin + (x - lo_x) * scale_x; }
  double Y(double y) const { return height - margin - (y - lo_y) * scale_y; }
};

inline Mapper FitViewport(double lo_x, double hi_x, double lo_y, double hi_y,
                          const SvgOptions& opt, int margin) {
  Mapper m;
  m.lo_x = lo_x;
  m.lo_y = lo_y;
  m.height = opt.height;
  m.margin = margin;
  const double span_x = hi_x > lo_x ? hi_x - lo_x : 1.0;
  const double span_y = hi_y > lo_y ? hi_y - lo_y : 1.0;
  m.scale_x = (opt.width - 2.0 * margin) / span_x;
  m.scale_y = (opt.height - 2.0 * margin) / span_y;
  return m;
}

inline void WriteHeader(std::FILE* f, const SvgOptions& opt) {
  std::fprintf(f,
               "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
               "height=\"%d\" viewBox=\"0 0 %d %d\">\n"
               "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n",
               opt.width, opt.height, opt.width, opt.height);
  if (!opt.title.empty()) {
    std::fprintf(f,
                 "<text x=\"%d\" y=\"18\" font-family=\"sans-serif\" "
                 "font-size=\"14\">%s</text>\n",
                 12, opt.title.c_str());
  }
}

}  // namespace internal

/// 2-D scatter of the first two coordinates, colored by label; centers
/// are drawn on top as black-ringed stars.
inline Status WriteScatterSvg(const PointSet& points,
                              const std::vector<int64_t>& label,
                              const std::vector<PointId>& centers,
                              const std::string& path,
                              const SvgOptions& options = {}) {
  if (static_cast<PointId>(label.size()) != points.size()) {
    return Status::InvalidArgument("label count does not match point count");
  }
  if (points.dim() < 2) {
    return Status::InvalidArgument("scatter plot needs dim >= 2");
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path + " for writing");

  const PointId n = points.size();
  double lo_x = std::numeric_limits<double>::infinity(), hi_x = -lo_x;
  double lo_y = std::numeric_limits<double>::infinity(), hi_y = -lo_y;
  for (PointId i = 0; i < n; ++i) {
    lo_x = std::min(lo_x, points[i][0]);
    hi_x = std::max(hi_x, points[i][0]);
    lo_y = std::min(lo_y, points[i][1]);
    hi_y = std::max(hi_y, points[i][1]);
  }
  const internal::Mapper m = internal::FitViewport(lo_x, hi_x, lo_y, hi_y,
                                                   options, /*margin=*/28);
  internal::WriteHeader(f, options);

  const double keep = n > options.max_points
                          ? static_cast<double>(options.max_points) /
                                static_cast<double>(n)
                          : 1.0;
  for (PointId i = 0; i < n; ++i) {
    if (keep < 1.0 && HashToUnit(0x51c9u, static_cast<uint64_t>(i)) >= keep) {
      continue;
    }
    std::fprintf(f, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\"/>\n",
                 m.X(points[i][0]), m.Y(points[i][1]), options.point_radius,
                 internal::LabelColor(label[static_cast<size_t>(i)]));
  }
  for (const PointId c : centers) {
    const double x = m.X(points[c][0]);
    const double y = m.Y(points[c][1]);
    std::fprintf(f,
                 "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"6\" fill=\"%s\" "
                 "stroke=\"black\" stroke-width=\"1.5\"/>\n"
                 "<path d=\"M %.1f %.1f l 4 0 m -8 0 l 4 0 m 0 -4 l 0 8\" "
                 "stroke=\"black\" stroke-width=\"1.5\"/>\n",
                 x, y, internal::LabelColor(label[static_cast<size_t>(c)]), x, y);
  }
  std::fprintf(f, "</svg>\n");
  if (std::fclose(f) != 0) return Status::IoError("error closing " + path);
  return Status::Ok();
}

/// The (rho, delta) decision graph; +inf deltas (the global peak) are
/// drawn just above the largest finite delta.
inline Status WriteDecisionGraphSvg(const std::vector<DecisionGraphEntry>& graph,
                                    const std::string& path,
                                    const SvgOptions& options = {}) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path + " for writing");

  double hi_rho = 1.0, hi_delta = 1.0;
  for (const auto& e : graph) {
    hi_rho = std::max(hi_rho, e.rho);
    if (!std::isinf(e.delta)) hi_delta = std::max(hi_delta, e.delta);
  }
  const double inf_delta = hi_delta * 1.08;
  const internal::Mapper m =
      internal::FitViewport(0.0, hi_rho, 0.0, inf_delta, options, /*margin=*/36);
  internal::WriteHeader(f, options);
  std::fprintf(f,
               "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#666\"/>\n"
               "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#666\"/>\n"
               "<text x=\"%d\" y=\"%d\" font-family=\"sans-serif\" "
               "font-size=\"12\">rho</text>\n"
               "<text x=\"14\" y=\"%d\" font-family=\"sans-serif\" "
               "font-size=\"12\">delta</text>\n",
               36, options.height - 36, options.width - 20, options.height - 36,
               36, options.height - 36, 36, 24, options.width - 44,
               options.height - 18, 36);
  for (const auto& e : graph) {
    const double delta = std::isinf(e.delta) ? inf_delta : e.delta;
    std::fprintf(f, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2\" fill=\"#4269d0\"/>\n",
                 m.X(e.rho), m.Y(delta));
  }
  std::fprintf(f, "</svg>\n");
  if (std::fclose(f) != 0) return Status::IoError("error closing " + path);
  return Status::Ok();
}

}  // namespace dpc::eval

#endif  // DPC_EVAL_SVG_PLOT_H_
