// Clustering summaries for reports and examples.
#ifndef DPC_EVAL_CLUSTER_STATS_H_
#define DPC_EVAL_CLUSTER_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dpc.h"

namespace dpc::eval {

struct ClusterSummary {
  int64_t num_points = 0;
  int64_t num_clusters = 0;
  int64_t num_noise = 0;        ///< label == kNoise
  int64_t num_unassigned = 0;   ///< label == kUnassigned (approx algorithms)
  int64_t largest_cluster = 0;  ///< member count of the biggest cluster
  std::vector<int64_t> cluster_size;
};

inline ClusterSummary Summarize(const DpcResult& result) {
  ClusterSummary s;
  s.num_points = static_cast<int64_t>(result.label.size());
  s.num_clusters = result.num_clusters();
  s.cluster_size.assign(static_cast<size_t>(std::max<int64_t>(s.num_clusters, 0)), 0);
  for (const int64_t label : result.label) {
    if (label == kNoise) {
      ++s.num_noise;
    } else if (label < 0) {
      ++s.num_unassigned;
    } else if (label < s.num_clusters) {
      ++s.cluster_size[static_cast<size_t>(label)];
    }
  }
  for (const int64_t size : s.cluster_size) {
    s.largest_cluster = std::max(s.largest_cluster, size);
  }
  return s;
}

inline std::string ToString(const ClusterSummary& s) {
  std::string out = std::to_string(s.num_clusters) + " clusters, " +
                    std::to_string(s.num_noise) + " noise";
  if (s.num_unassigned > 0) {
    out += ", " + std::to_string(s.num_unassigned) + " unassigned";
  }
  out += ", largest " + std::to_string(s.largest_cluster) + " of " +
         std::to_string(s.num_points) + " points";
  return out;
}

}  // namespace dpc::eval

#endif  // DPC_EVAL_CLUSTER_STATS_H_
