// Machine-readable benchmark output: a tiny schema-stable JSON writer
// shared by every bench binary's --json mode (scripts/record_bench.py
// aggregates the files into the repo-level BENCH_*.json trajectory, and
// scripts/check_bench_regression.py gates CI on them).
//
// Schema (version 1):
//   {
//     "schema": 1,
//     "bench": "<binary name>",
//     "config": {"<key>": "<string value>", ...},
//     "results": [
//       {"name": "<case>", "metrics": {"<metric>": <number>, ...}},
//       ...
//     ]
//   }
//
// Doubles are printed with %.17g (round-trip exact); the writer never
// emits timestamps or hostnames on its own — keep machine-identifying
// config out unless a comparison script needs it, so committed baselines
// do not churn.
#ifndef DPC_EVAL_BENCH_JSON_H_
#define DPC_EVAL_BENCH_JSON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace dpc::eval {

/// Escapes a string for use inside a JSON string literal.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  // String values are stored pre-quoted. Built with sequential appends
  // rather than chained operator+ — gcc-12 raises a spurious -Wrestrict
  // on literal + temporary concatenation chains.
  void AddConfig(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    quoted += JsonEscape(value);
    quoted += '"';
    config_.emplace_back(key, std::move(quoted));
  }
  void AddConfig(const std::string& key, double value) {
    config_.emplace_back(key, FormatNumber(value));
  }
  void AddConfig(const std::string& key, int64_t value) {
    config_.emplace_back(key, std::to_string(value));
  }

  /// Starts a result entry; subsequent AddMetric calls attach to it.
  void BeginResult(const std::string& name) {
    results_.push_back({name, {}});
  }
  void AddMetric(const std::string& metric, double value) {
    results_.back().metrics.emplace_back(metric, value);
  }

  /// Serializes the document. Stable key order (insertion order), so
  /// diffs of committed baselines stay reviewable.
  std::string ToJson() const {
    // Sequential appends throughout (no chained operator+): gcc-12 emits
    // a spurious -Wrestrict for literal + temporary concatenation chains.
    std::string out = "{\n  \"schema\": 1,\n  \"bench\": \"";
    out += JsonEscape(bench_);
    out += "\",\n  \"config\": {";
    for (size_t i = 0; i < config_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    \"";
      out += JsonEscape(config_[i].first);
      out += "\": ";
      out += config_[i].second;
    }
    out += config_.empty() ? "},\n" : "\n  },\n";
    out += "  \"results\": [";
    for (size_t i = 0; i < results_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      const Result& r = results_[i];
      out += "    {\"name\": \"";
      out += JsonEscape(r.name);
      out += "\", \"metrics\": {";
      for (size_t k = 0; k < r.metrics.size(); ++k) {
        if (k > 0) out += ", ";
        out += "\"";
        out += JsonEscape(r.metrics[k].first);
        out += "\": ";
        out += FormatNumber(r.metrics[k].second);
      }
      out += "}}";
    }
    out += results_.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
  }

  /// Writes the document to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string doc = ToJson();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  struct Result {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  static std::string FormatNumber(double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    // JSON has no inf/nan literals; clamp to null-safe sentinel.
    std::string s(buf);
    if (s.find("inf") != std::string::npos ||
        s.find("nan") != std::string::npos) {
      return "null";
    }
    return s;
  }

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Result> results_;
};

}  // namespace dpc::eval

#endif  // DPC_EVAL_BENCH_JSON_H_
