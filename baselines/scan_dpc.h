// Scan-family baselines of §6: the original CFSFDP formulation.
//
//   * ScanDpc ("Scan") — brute-force O(n^2) rho AND O(n^2) delta. Every
//     quantity is exact by construction, which makes it the ground truth
//     the conformance tests compare everything else against.
//   * RtreeScanDpc ("R-tree + Scan") — the rho phase runs on a bulk-loaded
//     R-tree (subquadratic range counts) but the dependent-point phase is
//     still the quadratic scan, which is why the paper's Table 6 shows it
//     fixing only half the problem.
//
// Both share the quadratic dependent pass (internal::QuadraticDeltas),
// which CFSFDP-A reuses as well. All phases parallelize over points with
// disjoint writes, so results are thread-count independent.
#ifndef DPC_BASELINES_SCAN_DPC_H_
#define DPC_BASELINES_SCAN_DPC_H_

#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/parallel_for.h"
#include "index/rtree.h"

namespace dpc {

namespace internal {

/// The quadratic dependent-point pass shared by the scan family: for each
/// point, scan ALL points ranking denser (DenserThan) and keep the
/// closest. The globally densest point keeps delta = +inf, dependency -1.
inline void QuadraticDeltas(const PointSet& points, const std::vector<double>& rho,
                            int num_threads, std::vector<double>* delta,
                            std::vector<PointId>* dependency) {
  const PointId n = points.size();
  const int dim = points.dim();
  ParallelFor(n, num_threads, [&](PointId begin, PointId end) {
    for (PointId i = begin; i < end; ++i) {
      const double rho_i = rho[static_cast<size_t>(i)];
      double best_sq = std::numeric_limits<double>::infinity();
      PointId best = -1;
      for (PointId j = 0; j < n; ++j) {
        if (!DenserThan(rho[static_cast<size_t>(j)], j, rho_i, i)) continue;
        const double d_sq = SquaredDistance(points[i], points[j], dim);
        if (d_sq < best_sq) {
          best_sq = d_sq;
          best = j;
        }
      }
      (*delta)[static_cast<size_t>(i)] =
          best >= 0 ? std::sqrt(best_sq) : std::numeric_limits<double>::infinity();
      (*dependency)[static_cast<size_t>(i)] = best;
    }
  });
}

}  // namespace internal

class ScanDpc : public DpcAlgorithm {
 public:
  std::string_view name() const override { return "Scan"; }

  DpcResult Run(const PointSet& points, const DpcParams& params) override {
    DpcResult result;
    const PointId n = points.size();
    const int dim = points.dim();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    result.stats.build_seconds = phase.Lap();  // no index

    const double r_sq = params.d_cut * params.d_cut;
    internal::ParallelFor(n, params.num_threads, [&](PointId begin, PointId end) {
      for (PointId i = begin; i < end; ++i) {
        PointId count = 0;
        for (PointId j = 0; j < n; ++j) {
          if (j != i && SquaredDistance(points[i], points[j], dim) <= r_sq) {
            ++count;
          }
        }
        result.rho[static_cast<size_t>(i)] = static_cast<double>(count);
      }
    });
    result.stats.rho_seconds = phase.Lap();

    internal::QuadraticDeltas(points, result.rho, params.num_threads,
                              &result.delta, &result.dependency);
    result.stats.delta_seconds = phase.Lap();

    FinalizeClusters(params, &result);
    result.stats.label_seconds = phase.Lap();
    result.stats.total_seconds = total.Seconds();
    return result;
  }
};

class RtreeScanDpc : public DpcAlgorithm {
 public:
  std::string_view name() const override { return "R-tree + Scan"; }

  DpcResult Run(const PointSet& points, const DpcParams& params) override {
    DpcResult result;
    const PointId n = points.size();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    RTree tree(points);
    result.stats.build_seconds = phase.Lap();
    result.stats.index_memory_bytes = tree.MemoryBytes();

    internal::ParallelFor(n, params.num_threads, [&](PointId begin, PointId end) {
      for (PointId i = begin; i < end; ++i) {
        result.rho[static_cast<size_t>(i)] = static_cast<double>(
            tree.RangeCount(points[i], params.d_cut) - 1);
      }
    });
    result.stats.rho_seconds = phase.Lap();

    internal::QuadraticDeltas(points, result.rho, params.num_threads,
                              &result.delta, &result.dependency);
    result.stats.delta_seconds = phase.Lap();

    FinalizeClusters(params, &result);
    result.stats.label_seconds = phase.Lap();
    result.stats.total_seconds = total.Seconds();
    return result;
  }
};

}  // namespace dpc

#endif  // DPC_BASELINES_SCAN_DPC_H_
