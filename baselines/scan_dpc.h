// Scan-family baselines of §6: the original CFSFDP formulation.
//
//   * ScanDpc ("Scan") — brute-force O(n^2) rho AND O(n^2) delta. Every
//     quantity is exact by construction, which makes it the ground truth
//     the conformance tests compare everything else against.
//   * RtreeScanDpc ("R-tree + Scan") — the rho phase runs on a bulk-loaded
//     R-tree (subquadratic range counts) but the dependent-point phase is
//     still the quadratic scan, which is why the paper's Table 6 shows it
//     fixing only half the problem.
//
// Both share the quadratic dependent pass (internal::QuadraticDeltas),
// which CFSFDP-A reuses as well. All phases parallelize over points with
// disjoint writes, so results are thread-count and strategy independent.
// Per-point work is uniform here (every point scans everything), so
// there is no cost model: cost-guided scheduling falls back to dynamic.
//
// Cancellation: with O(n) work per index, ParallelFor's 1024-index
// sub-slice polling would overshoot a deadline by up to 1024*n distance
// evaluations, so the quadratic loops poll ShouldStop INSIDE the inner
// distance scan, amortized every ~kDistanceEvalsPerPoll evaluations
// (blocked inner loops — no per-evaluation branch on the hot path).
//
// Hot path: both quadratic passes stream an identity-order SoA view
// (core/soa.h) through the batched kernels, one kDistanceEvalsPerPoll
// block at a time — the poll block doubles as the kernel batch. Counts
// come from RangeCountBatch (self-hit subtracted arithmetically: the
// query is always within d_cut of itself); the dependent pass batches
// the distances and keeps the ascending DenserThan scan on the buffer,
// so every rho and delta is bit-identical to the scalar loops.
#ifndef DPC_BASELINES_SCAN_DPC_H_
#define DPC_BASELINES_SCAN_DPC_H_

#include <algorithm>
#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/kernels.h"
#include "core/options.h"
#include "core/soa.h"
#include "index/rtree.h"
#include "parallel/parallel_for.h"

namespace dpc {

/// Shared by ScanDpc and RtreeScanDpc (their loops are shape-identical).
struct ScanDpcOptions {
  /// Loop scheduling override; unset inherits the ExecutionContext.
  std::optional<ScheduleStrategy> scheduler;

  static StatusOr<ScanDpcOptions> FromOptions(const OptionsMap& map) {
    ScanDpcOptions options;
    OptionsReader reader(map);
    reader.Strategy("scheduler", &options.scheduler);
    if (Status s = reader.status(); !s.ok()) return s;
    return options;
  }
};

namespace internal {

/// Distance evaluations between ShouldStop polls inside the quadratic
/// inner loops. Cheap enough to vanish against the distance arithmetic,
/// small enough that a cancelled quadratic run frees its pool threads
/// within microseconds instead of one whole 1024-index outer slice.
inline constexpr int64_t kDistanceEvalsPerPoll = 4096;

/// The quadratic dependent-point pass shared by the scan family: for each
/// point, scan ALL points ranking denser (DenserThan) and keep the
/// closest. The globally densest point keeps delta = +inf, dependency -1.
/// The inner scan runs in kDistanceEvalsPerPoll blocks with a stop poll
/// between blocks; a stopped call leaves the remaining slots untouched
/// (the caller discards the phase via internal::Interrupted).
///
/// `soa` must be an identity-order view of `points`. Each poll block is
/// one SquaredDistanceBatch over ALL candidates (a denser-only scan
/// would break the unit-stride streaming for ~2x fewer flops — a loss on
/// every profile), then the ascending DenserThan scan runs on the
/// buffer, preserving the scalar loop's update order and tie behavior
/// exactly.
inline void QuadraticDeltas(const PointSet& points, const PointSetSoA& soa,
                            const std::vector<double>& rho,
                            const ExecutionContext& exec,
                            std::vector<double>* delta,
                            std::vector<PointId>* dependency) {
  const PointId n = points.size();
  ParallelFor(exec, n, [&](PointId begin, PointId end) {
    std::vector<double> buf(static_cast<size_t>(
        std::min<PointId>(n, kDistanceEvalsPerPoll)));
    for (PointId i = begin; i < end; ++i) {
      const double rho_i = rho[static_cast<size_t>(i)];
      double best_sq = std::numeric_limits<double>::infinity();
      PointId best = -1;
      for (PointId j0 = 0; j0 < n; j0 += kDistanceEvalsPerPoll) {
        if (exec.ShouldStop()) return;
        const PointId j_end = std::min(j0 + kDistanceEvalsPerPoll, n);
        kernels::SquaredDistanceBatch(soa, j0, j_end - j0, points[i],
                                      buf.data());
        for (PointId j = j0; j < j_end; ++j) {
          if (!DenserThan(rho[static_cast<size_t>(j)], j, rho_i, i)) continue;
          const double d_sq = buf[static_cast<size_t>(j - j0)];
          if (d_sq < best_sq) {
            best_sq = d_sq;
            best = j;
          }
        }
      }
      (*delta)[static_cast<size_t>(i)] =
          best >= 0 ? std::sqrt(best_sq) : std::numeric_limits<double>::infinity();
      (*dependency)[static_cast<size_t>(i)] = best;
    }
  });
}

}  // namespace internal

class ScanDpc : public DpcAlgorithm {
 public:
  ScanDpc() = default;
  explicit ScanDpc(ScanDpcOptions options) : options_(options) {}

  std::string_view name() const override { return "Scan"; }

 protected:
  DpcSolution SolveImpl(const PointSet& points, const ComputeParams& compute,
                        const ExecutionContext& ctx) override {
    ExecutionContext exec =
        options_.scheduler ? ctx.WithStrategy(*options_.scheduler) : ctx;

    DpcSolution result;
    const PointId n = points.size();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    // No index — only the transposed hot-path view, charged like one.
    const PointSetSoA soa(points);
    result.stats.build_seconds = phase.Lap();
    result.stats.index_memory_bytes = soa.MemoryBytes();

    const double r_sq = compute.d_cut * compute.d_cut;
    ParallelFor(exec, n, [&](PointId begin, PointId end) {
      for (PointId i = begin; i < end; ++i) {
        PointId count = 0;
        for (PointId j0 = 0; j0 < n; j0 += internal::kDistanceEvalsPerPoll) {
          if (exec.ShouldStop()) return;
          const PointId j_end =
              std::min(j0 + internal::kDistanceEvalsPerPoll, n);
          count += kernels::RangeCountBatch(soa, j0, j_end - j0, points[i],
                                            r_sq);
        }
        // The batch counts the self-hit (distance 0 <= r_sq, always).
        result.rho[static_cast<size_t>(i)] = static_cast<double>(count - 1);
      }
    });
    result.stats.rho_seconds = phase.Lap();
    if (internal::Interrupted(exec, &result)) {
      result.stats.total_seconds = total.Seconds();
      return result;
    }

    internal::QuadraticDeltas(points, soa, result.rho, exec, &result.delta,
                              &result.dependency);
    result.stats.delta_seconds = phase.Lap();
    internal::Interrupted(exec, &result);
    result.stats.total_seconds = total.Seconds();
    return result;
  }

 private:
  ScanDpcOptions options_;
};

class RtreeScanDpc : public DpcAlgorithm {
 public:
  RtreeScanDpc() = default;
  explicit RtreeScanDpc(ScanDpcOptions options) : options_(options) {}

  std::string_view name() const override { return "R-tree + Scan"; }

 protected:
  DpcSolution SolveImpl(const PointSet& points, const ComputeParams& compute,
                        const ExecutionContext& ctx) override {
    ExecutionContext exec =
        options_.scheduler ? ctx.WithStrategy(*options_.scheduler) : ctx;

    DpcSolution result;
    const PointId n = points.size();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    RTree tree(points);
    // Identity-order view for the quadratic dependent pass (the tree's
    // internal view is perm-ordered and private).
    const PointSetSoA soa(points);
    result.stats.build_seconds = phase.Lap();
    result.stats.index_memory_bytes = tree.MemoryBytes() + soa.MemoryBytes();

    ParallelFor(exec, n, [&](PointId begin, PointId end) {
      for (PointId i = begin; i < end; ++i) {
        result.rho[static_cast<size_t>(i)] = static_cast<double>(
            tree.RangeCount(points[i], compute.d_cut) - 1);
      }
    });
    result.stats.rho_seconds = phase.Lap();
    if (internal::Interrupted(exec, &result)) {
      result.stats.total_seconds = total.Seconds();
      return result;
    }

    internal::QuadraticDeltas(points, soa, result.rho, exec, &result.delta,
                              &result.dependency);
    result.stats.delta_seconds = phase.Lap();
    internal::Interrupted(exec, &result);
    result.stats.total_seconds = total.Seconds();
    return result;
  }

 private:
  ScanDpcOptions options_;
};

}  // namespace dpc

#endif  // DPC_BASELINES_SCAN_DPC_H_
