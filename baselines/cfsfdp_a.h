// CFSFDP-A baseline (§6): CFSFDP with an approximate density phase.
//
// rho is estimated by counting neighbors only among a fixed Bernoulli
// sample of the input and scaling by the inverse sampling rate — the
// classic way to cut the quadratic density pass by a constant factor.
// The dependent-point pass is the SAME quadratic scan as the Scan
// baseline (internal::QuadraticDeltas), which is why CFSFDP-A stays
// Theta(n^2) overall in the paper's Table 1 while its rho phase sits
// below Scan's in Table 6.
//
// The sample is drawn with the stateless per-point hash (core/rng.h), so
// the estimate — and every downstream label — is deterministic and
// thread-count independent.
#ifndef DPC_BASELINES_CFSFDP_A_H_
#define DPC_BASELINES_CFSFDP_A_H_

#include <limits>
#include <vector>

#include "baselines/scan_dpc.h"
#include "core/dpc.h"
#include "core/parallel_for.h"
#include "core/rng.h"

namespace dpc {

class CfsfdpA : public DpcAlgorithm {
 public:
  /// Fraction of points the density estimate counts against.
  static constexpr double kSampleRate = 0.25;
  static constexpr uint64_t kSampleSeed = 0xcf5fd9a5ULL;

  std::string_view name() const override { return "CFSFDP-A"; }

  DpcResult Run(const PointSet& points, const DpcParams& params) override {
    DpcResult result;
    const PointId n = points.size();
    const int dim = points.dim();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    std::vector<PointId> sample;
    sample.reserve(static_cast<size_t>(static_cast<double>(n) * kSampleRate) + 16);
    for (PointId j = 0; j < n; ++j) {
      if (HashToUnit(kSampleSeed, static_cast<uint64_t>(j)) < kSampleRate) {
        sample.push_back(j);
      }
    }
    result.stats.build_seconds = phase.Lap();
    result.stats.index_memory_bytes = sample.capacity() * sizeof(PointId);

    // rho: scaled count of sampled neighbors (self excluded when sampled).
    const double r_sq = params.d_cut * params.d_cut;
    internal::ParallelFor(n, params.num_threads, [&](PointId begin, PointId end) {
      for (PointId i = begin; i < end; ++i) {
        PointId count = 0;
        for (const PointId j : sample) {
          if (j != i && SquaredDistance(points[i], points[j], dim) <= r_sq) {
            ++count;
          }
        }
        result.rho[static_cast<size_t>(i)] =
            static_cast<double>(count) / kSampleRate;
      }
    });
    result.stats.rho_seconds = phase.Lap();

    internal::QuadraticDeltas(points, result.rho, params.num_threads,
                              &result.delta, &result.dependency);
    result.stats.delta_seconds = phase.Lap();

    FinalizeClusters(params, &result);
    result.stats.label_seconds = phase.Lap();
    result.stats.total_seconds = total.Seconds();
    return result;
  }
};

}  // namespace dpc

#endif  // DPC_BASELINES_CFSFDP_A_H_
