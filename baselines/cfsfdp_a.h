// CFSFDP-A baseline (§6): CFSFDP with an approximate density phase.
//
// rho is estimated by counting neighbors only among a fixed Bernoulli
// sample of the input and scaling by the inverse sampling rate — the
// classic way to cut the quadratic density pass by a constant factor.
// The dependent-point pass is the SAME quadratic scan as the Scan
// baseline (internal::QuadraticDeltas), which is why CFSFDP-A stays
// Theta(n^2) overall in the paper's Table 1 while its rho phase sits
// below Scan's in Table 6.
//
// The sample is drawn with the stateless per-point hash (core/rng.h), so
// the estimate — and every downstream label — is deterministic and
// thread-count independent.
#ifndef DPC_BASELINES_CFSFDP_A_H_
#define DPC_BASELINES_CFSFDP_A_H_

#include <algorithm>
#include <limits>
#include <vector>

#include "baselines/scan_dpc.h"
#include "core/dpc.h"
#include "core/kernels.h"
#include "core/options.h"
#include "core/rng.h"
#include "core/soa.h"
#include "parallel/parallel_for.h"

namespace dpc {

struct CfsfdpAOptions {
  /// Fraction of points the density estimate counts against (the paper's
  /// fixed 25% unless overridden).
  double sample_rate = 0.25;
  /// Seed of the Bernoulli sampling coins; fixed so labels are
  /// reproducible run to run.
  int64_t sample_seed = 0xcf5fd9a5;
  /// Loop scheduling override; unset inherits the ExecutionContext.
  std::optional<ScheduleStrategy> scheduler;

  static StatusOr<CfsfdpAOptions> FromOptions(const OptionsMap& map) {
    CfsfdpAOptions options;
    OptionsReader reader(map);
    reader.Double("sample_rate", &options.sample_rate);
    reader.Int64("sample_seed", &options.sample_seed);
    reader.Strategy("scheduler", &options.scheduler);
    if (Status s = reader.status(); !s.ok()) return s;
    if (!(options.sample_rate > 0.0) || options.sample_rate > 1.0) {
      return Status::InvalidArgument("sample_rate must be in (0, 1]");
    }
    return options;
  }
};

class CfsfdpA : public DpcAlgorithm {
 public:
  CfsfdpA() = default;
  explicit CfsfdpA(CfsfdpAOptions options) : options_(options) {}

  std::string_view name() const override { return "CFSFDP-A"; }

 protected:
  DpcSolution SolveImpl(const PointSet& points, const ComputeParams& compute,
                        const ExecutionContext& ctx) override {
    ExecutionContext exec =
        options_.scheduler ? ctx.WithStrategy(*options_.scheduler) : ctx;

    DpcSolution result;
    const PointId n = points.size();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    const double sample_rate = options_.sample_rate;
    const uint64_t seed = static_cast<uint64_t>(options_.sample_seed);
    std::vector<PointId> sample;
    sample.reserve(
        static_cast<size_t>(static_cast<double>(n) * sample_rate) + 16);
    for (PointId j = 0; j < n; ++j) {
      if (HashToUnit(seed, static_cast<uint64_t>(j)) < sample_rate) {
        sample.push_back(j);
      }
    }
    // Transposed views for the batched kernels: the sample in draw order
    // for the density pass, the full set for the dependent pass.
    const PointId m = static_cast<PointId>(sample.size());
    PointSetSoA sample_soa;
    sample_soa.Assign(points, sample.data(), m, /*store_ids=*/false);
    const PointSetSoA soa(points);
    result.stats.build_seconds = phase.Lap();
    result.stats.index_memory_bytes = sample.capacity() * sizeof(PointId) +
                                      sample_soa.MemoryBytes() +
                                      soa.MemoryBytes();

    // rho: scaled count of sampled neighbors (self excluded when sampled).
    // The inner scan is quadratic-family work (O(|sample|) per index), so
    // it polls ShouldStop every ~kDistanceEvalsPerPoll evaluations like
    // the Scan loops — see baselines/scan_dpc.h. The batch counts the
    // self-hit whenever i itself was sampled (distance 0), which the
    // same Bernoulli coin that built the sample detects in O(1).
    const double r_sq = compute.d_cut * compute.d_cut;
    ParallelFor(exec, n, [&](PointId begin, PointId end) {
      for (PointId i = begin; i < end; ++i) {
        PointId count = 0;
        for (PointId k0 = 0; k0 < m; k0 += internal::kDistanceEvalsPerPoll) {
          if (exec.ShouldStop()) return;
          const PointId k_end =
              std::min(k0 + internal::kDistanceEvalsPerPoll, m);
          count += kernels::RangeCountBatch(sample_soa, k0, k_end - k0,
                                            points[i], r_sq);
        }
        const bool self_sampled =
            HashToUnit(seed, static_cast<uint64_t>(i)) < sample_rate;
        if (self_sampled) --count;
        result.rho[static_cast<size_t>(i)] =
            static_cast<double>(count) / sample_rate;
      }
    });
    result.stats.rho_seconds = phase.Lap();
    if (internal::Interrupted(exec, &result)) {
      result.stats.total_seconds = total.Seconds();
      return result;
    }

    internal::QuadraticDeltas(points, soa, result.rho, exec, &result.delta,
                              &result.dependency);
    result.stats.delta_seconds = phase.Lap();
    internal::Interrupted(exec, &result);
    result.stats.total_seconds = total.Seconds();
    return result;
  }

 private:
  CfsfdpAOptions options_;
};

}  // namespace dpc

#endif  // DPC_BASELINES_CFSFDP_A_H_
