// LSH-DDP baseline (§6): density-peaks clustering over an LSH partition
// (after Zhang et al.'s distributed LSH-DDP, folded into one process).
//
//   * partition — random-projection LSH (index/lsh.h): a point's
//     neighborhood candidates are the union of its buckets across tables;
//   * local rho — count of candidates within d_cut. Neighbors hashed into
//     other buckets are missed, so rho is an UNDERestimate — the source of
//     LSH-DDP's quality gap in the paper's Tables 2-4;
//   * local delta — nearest denser candidate;
//   * refinement — points whose buckets contain no denser candidate
//     (local density maxima; a small fraction) fall back to an exact
//     global nearest-denser search on a kd-tree, mirroring the original
//     algorithm's cross-partition aggregation round.
//
// Hash directions are seeded (index/lsh.h) and all per-point phases write
// disjoint slots, so labels are bit-identical across runs and threads.
// The table/bit counts are the classic LSH quality/speed dials, exposed
// through LshDdpOptions for the paper's sensitivity experiments.
#ifndef DPC_BASELINES_LSH_DDP_H_
#define DPC_BASELINES_LSH_DDP_H_

#include <limits>
#include <vector>

#include "core/dpc.h"
#include "core/ex_dpc.h"
#include "core/kernels.h"
#include "core/options.h"
#include "index/kdtree.h"
#include "index/lsh.h"
#include "parallel/parallel_for.h"

namespace dpc {

struct LshDdpOptions {
  int num_tables = 4;  ///< hash tables; more = better recall, more work
  int num_bits = 4;    ///< projections per table (code width)
  /// Bucket width as a multiple of d_cut.
  double bucket_width_factor = 4.0;
  /// Loop scheduling override; unset inherits the ExecutionContext.
  /// Exception: the rho loop always runs static — its O(n) per-chunk
  /// scratch would be re-paid under dynamic chunking (see Run).
  std::optional<ScheduleStrategy> scheduler;

  static StatusOr<LshDdpOptions> FromOptions(const OptionsMap& map) {
    LshDdpOptions options;
    OptionsReader reader(map);
    reader.Int("num_tables", &options.num_tables);
    reader.Int("num_bits", &options.num_bits);
    reader.Double("bucket_width_factor", &options.bucket_width_factor);
    reader.Strategy("scheduler", &options.scheduler);
    if (Status s = reader.status(); !s.ok()) return s;
    if (options.num_tables < 1 || options.num_bits < 1) {
      return Status::InvalidArgument("num_tables and num_bits must be >= 1");
    }
    if (!(options.bucket_width_factor > 0.0)) {
      return Status::InvalidArgument("bucket_width_factor must be positive");
    }
    return options;
  }
};

class LshDdp : public DpcAlgorithm {
 public:
  LshDdp() = default;
  explicit LshDdp(LshDdpOptions options) : options_(options) {}

  std::string_view name() const override { return "LSH-DDP"; }

 protected:
  DpcSolution SolveImpl(const PointSet& points, const ComputeParams& compute,
                        const ExecutionContext& ctx) override {
    ExecutionContext exec =
        options_.scheduler ? ctx.WithStrategy(*options_.scheduler) : ctx;

    DpcSolution result;
    const PointId n = points.size();
    result.rho.assign(static_cast<size_t>(n), 0.0);
    result.delta.assign(static_cast<size_t>(n),
                        std::numeric_limits<double>::infinity());
    result.dependency.assign(static_cast<size_t>(n), PointId{-1});

    internal::WallTimer total;
    internal::WallTimer phase;
    LshParams lsh_params;
    lsh_params.num_tables = options_.num_tables;
    lsh_params.num_projections = options_.num_bits;
    lsh_params.bucket_width = options_.bucket_width_factor * compute.d_cut;
    const LshPartitioner lsh(points, lsh_params);
    KdTree tree(points);  // refinement index for local density maxima
    result.stats.build_seconds = phase.Lap();
    result.stats.index_memory_bytes = lsh.MemoryBytes() + tree.MemoryBytes();

    // Local rho over each point's bucket union. Duplicates across tables
    // are skipped with a query-id-stamped scratch array — cheaper than
    // materializing and sorting the union per point. The O(n) scratch is
    // paid once per chunk callback, so this loop uses
    // ParallelForStaticChunks (exactly one callback per thread chunk) and
    // polls the stop state itself instead of relying on ParallelFor's
    // sub-slice polling.
    // Bucket members are scattered ids, so the batch primitive here is
    // the row-major gather kernel: dedup the union into a scratch id
    // array, then one SquaredDistanceGather + count sweep per point.
    const double r_sq = compute.d_cut * compute.d_cut;
    ParallelForStaticChunks(exec, n, [&](PointId begin, PointId end) {
      std::vector<PointId> last_query(static_cast<size_t>(n), PointId{-1});
      std::vector<PointId> cand;
      std::vector<double> d_sq;
      int64_t until_poll = internal::kStopCheckStride;
      for (PointId i = begin; i < end; ++i) {
        if (--until_poll <= 0) {
          if (exec.ShouldStop()) return;
          until_poll = internal::kStopCheckStride;
        }
        cand.clear();
        for (int t = 0; t < lsh.num_tables(); ++t) {
          for (const PointId j : lsh.Bucket(t, i)) {
            if (j == i || last_query[static_cast<size_t>(j)] == i) continue;
            last_query[static_cast<size_t>(j)] = i;
            cand.push_back(j);
          }
        }
        const PointId len = static_cast<PointId>(cand.size());
        d_sq.resize(cand.size());
        kernels::SquaredDistanceGather(points, cand.data(), len, points[i],
                                       d_sq.data());
        PointId count = 0;
        for (PointId k = 0; k < len; ++k) {
          if (d_sq[static_cast<size_t>(k)] <= r_sq) ++count;
        }
        result.rho[static_cast<size_t>(i)] = static_cast<double>(count);
      }
    });
    result.stats.rho_seconds = phase.Lap();
    if (internal::Interrupted(exec, &result)) {
      result.stats.total_seconds = total.Seconds();
      return result;
    }

    // Local delta; collect local maxima for the exact refinement round.
    std::vector<uint8_t> needs_refine(static_cast<size_t>(n), 0);
    ParallelFor(exec, n, [&](PointId begin, PointId end) {
      std::vector<PointId> cand;
      std::vector<double> d_sq;
      for (PointId i = begin; i < end; ++i) {
        const double rho_i = result.rho[static_cast<size_t>(i)];
        // min() is duplicate-tolerant, so no dedup pass is needed here;
        // gather the denser candidates in table/bucket order and scan
        // with strict '<' — the same winner as the former fused loop.
        cand.clear();
        for (int t = 0; t < lsh.num_tables(); ++t) {
          for (const PointId j : lsh.Bucket(t, i)) {
            if (DenserThan(result.rho[static_cast<size_t>(j)], j, rho_i, i)) {
              cand.push_back(j);
            }
          }
        }
        const PointId len = static_cast<PointId>(cand.size());
        d_sq.resize(cand.size());
        kernels::SquaredDistanceGather(points, cand.data(), len, points[i],
                                       d_sq.data());
        double best_sq = std::numeric_limits<double>::infinity();
        PointId best = -1;
        for (PointId k = 0; k < len; ++k) {
          if (d_sq[static_cast<size_t>(k)] < best_sq) {
            best_sq = d_sq[static_cast<size_t>(k)];
            best = cand[static_cast<size_t>(k)];
          }
        }
        if (best >= 0) {
          result.delta[static_cast<size_t>(i)] = std::sqrt(best_sq);
          result.dependency[static_cast<size_t>(i)] = best;
        } else {
          needs_refine[static_cast<size_t>(i)] = 1;
        }
      }
    });
    std::vector<PointId> refine;
    for (PointId i = 0; i < n; ++i) {
      if (needs_refine[static_cast<size_t>(i)] != 0) refine.push_back(i);
    }
    ExDpc::ComputeExactDeltas(points, tree, result.rho, exec, &result.delta,
                              &result.dependency, &refine);
    result.stats.delta_seconds = phase.Lap();
    internal::Interrupted(exec, &result);
    result.stats.total_seconds = total.Seconds();
    return result;
  }

 private:
  LshDdpOptions options_;
};

}  // namespace dpc

#endif  // DPC_BASELINES_LSH_DDP_H_
