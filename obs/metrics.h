// obs/ — the dependency-free telemetry layer of the serving stack:
// a process-local MetricRegistry of named counters, gauges, and
// log-bucketed histograms, built for the two consumers the repo already
// has: the `dpc_server` `metrics` command (Prometheus text / JSON, see
// obs/export.h) and bench_serving's p50/p99/p999 recorder.
//
// Design constraints, in order:
//
//   hot path      — Counter::Inc and Histogram::Observe are lock-free
//                   (relaxed atomics; the histogram's bucket index is a
//                   branch-free-ish binary search over a constexpr-built
//                   bounds table). Neither allocates.
//   determinism   — bucket bounds are a FIXED geometric ladder,
//                   4 sub-buckets per octave (ratio 2^(1/4) ≈ 1.19)
//                   from 1ns to ~925s, built with ldexp so every bound
//                   is bit-identical on every platform. Percentile(q)
//                   is a pure function of the counts array: two
//                   snapshots with equal counts report equal quantiles,
//                   across machines and runs.
//   mergeability  — HistogramSnapshot::Merge is elementwise addition,
//                   valid because every histogram shares the one bounds
//                   table; shard-local recorders can be combined into a
//                   fleet view without approximation beyond bucketing.
//   coherence     — registries accept COLLECTORS: callbacks that emit
//                   samples at scrape time, so a subsystem with its own
//                   lock (SolutionCache, SolutionStore) can publish a
//                   multi-field snapshot taken under ONE critical
//                   section — cross-field invariants like
//                   hits + misses == lookups hold in every scrape.
//
// Registered metric objects live as long as the registry; counter() /
// gauge() / histogram() return stable references a hot loop can cache.
#ifndef DPC_OBS_METRICS_H_
#define DPC_OBS_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dpc::obs {

/// Monotonic counter; relaxed increments, no lock, no allocation.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (queue depths, occupancy).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// The shared bucket ladder: bounds[i] = kSub[i mod 4] * 2^(i div 4) ns,
/// i.e. four sub-buckets per power-of-two octave, covering [1ns, ~925s]
/// in 160 bounds with ~19% relative resolution. One extra overflow
/// bucket catches everything above the last bound (it reports +inf from
/// Percentile, so "p99 is finite" is a meaningful health assertion).
/// Values at or below the first bound (including 0 and negatives) land
/// in bucket 0.
struct HistogramBuckets {
  static constexpr int kSubBuckets = 4;
  static constexpr int kOctaves = 40;
  static constexpr int kNumBounds = kSubBuckets * kOctaves;  // 160
  static constexpr int kNumBuckets = kNumBounds + 1;         // + overflow

  /// The bounds table in seconds, built once. ldexp(sub, octave) is
  /// exact scaling by a power of two, and the four sub-bucket constants
  /// are fixed 2^(k/4) literals, so the table is deterministic down to
  /// the last bit everywhere.
  static const std::array<double, kNumBounds>& Bounds() {
    static const std::array<double, kNumBounds> bounds = [] {
      // 2^(0/4), 2^(1/4), 2^(2/4), 2^(3/4) to 17 significant digits.
      constexpr double kSub[kSubBuckets] = {
          1.0, 1.1892071150027210667, 1.4142135623730950488,
          1.6817928305074290860};
      std::array<double, kNumBounds> b{};
      for (int i = 0; i < kNumBounds; ++i) {
        b[static_cast<size_t>(i)] =
            std::ldexp(kSub[i % kSubBuckets], i / kSubBuckets) * 1e-9;
      }
      return b;
    }();
    return bounds;
  }

  static double Bound(int i) { return Bounds()[static_cast<size_t>(i)]; }

  /// Index of the bucket counting v: the first i with v <= Bound(i), or
  /// the overflow bucket (kNumBounds) when v exceeds the last bound.
  /// NaN lands in the overflow bucket (every comparison fails).
  static int BucketFor(double v) {
    const std::array<double, kNumBounds>& bounds = Bounds();
    int lo = 0;
    int hi = kNumBounds;  // overflow sentinel
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (v <= bounds[static_cast<size_t>(mid)]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }
};

/// A consistent-enough copy of a histogram's state: counts are read
/// bucket-by-bucket while observers may still be appending, so `count`
/// and `sum` can trail each other by in-flight observations — fine for
/// monitoring, and exact whenever the histogram is quiescent (tests).
struct HistogramSnapshot {
  std::array<uint64_t, HistogramBuckets::kNumBuckets> counts{};
  uint64_t count = 0;  ///< sum of counts
  double sum = 0.0;    ///< sum of observed values

  double Mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }

  /// The q-th percentile (q in [0, 100]), linearly interpolated inside
  /// the winning bucket — a pure, deterministic function of `counts`.
  /// Returns 0 for an empty histogram and +inf when the rank falls in
  /// the overflow bucket.
  double Percentile(double q) const {
    if (count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 100.0) q = 100.0;
    uint64_t rank =
        static_cast<uint64_t>(std::ceil(q / 100.0 * static_cast<double>(count)));
    if (rank < 1) rank = 1;
    if (rank > count) rank = count;
    uint64_t cumulative = 0;
    for (int i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
      const uint64_t in_bucket = counts[static_cast<size_t>(i)];
      if (cumulative + in_bucket >= rank) {
        if (i >= HistogramBuckets::kNumBounds) {
          return std::numeric_limits<double>::infinity();
        }
        const double lower = i == 0 ? 0.0 : HistogramBuckets::Bound(i - 1);
        const double upper = HistogramBuckets::Bound(i);
        const double fraction = static_cast<double>(rank - cumulative) /
                                static_cast<double>(in_bucket);
        return lower + (upper - lower) * fraction;
      }
      cumulative += in_bucket;
    }
    return std::numeric_limits<double>::infinity();  // unreachable
  }

  /// Elementwise addition — valid across any two histograms because all
  /// share HistogramBuckets' single bounds table (shard-local recorders
  /// merge into a global view).
  void Merge(const HistogramSnapshot& other) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
    count += other.count;
    sum += other.sum;
  }
};

/// Log-bucketed distribution recorder. Observe is lock-free: one binary
/// search, one relaxed fetch_add, one CAS loop on the sum — and never
/// allocates (the zero-allocation contract tests/obs_test.cc asserts).
class Histogram {
 public:
  void Observe(double v) {
    buckets_[static_cast<size_t>(HistogramBuckets::BucketFor(v))].fetch_add(
        1, std::memory_order_relaxed);
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + v,
                                       std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snapshot;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      snapshot.counts[i] = buckets_[i].load(std::memory_order_relaxed);
      snapshot.count += snapshot.counts[i];
    }
    snapshot.sum = sum_.load(std::memory_order_relaxed);
    return snapshot;
  }

 private:
  std::array<std::atomic<uint64_t>, HistogramBuckets::kNumBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exposition row: a named value (counter/gauge) or distribution.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;           ///< kCounter / kGauge
  HistogramSnapshot histogram;  ///< kHistogram

  static MetricSample FromCounter(std::string name, double value) {
    MetricSample s;
    s.name = std::move(name);
    s.kind = MetricKind::kCounter;
    s.value = value;
    return s;
  }
  static MetricSample FromGauge(std::string name, double value) {
    MetricSample s;
    s.name = std::move(name);
    s.kind = MetricKind::kGauge;
    s.value = value;
    return s;
  }
  static MetricSample FromHistogram(std::string name,
                                    HistogramSnapshot snapshot) {
    MetricSample s;
    s.name = std::move(name);
    s.kind = MetricKind::kHistogram;
    s.histogram = std::move(snapshot);
    return s;
  }
};

/// A named bag of metrics. Registration takes the registry lock once and
/// returns a stable reference (metrics are heap nodes that live as long
/// as the registry); the returned objects' hot-path operations never
/// touch the lock again. Snapshot() = the registered objects' current
/// values plus whatever the collectors emit, sorted by name.
///
/// Collectors exist for subsystems whose stats already live under their
/// own lock: the callback runs at scrape time and can copy a whole
/// multi-field snapshot in one critical section, which is how the serve
/// layer keeps hits + warm + misses == lookups observable as an
/// invariant rather than a race.
class MetricRegistry {
 public:
  using Collector = std::function<void(std::vector<MetricSample>*)>;

  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Counter>& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    return *slot;
  }
  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Gauge>& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    return *slot;
  }
  Histogram& histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Histogram>& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<Histogram>();
    return *slot;
  }

  void AddCollector(Collector collector) {
    std::lock_guard<std::mutex> lock(mu_);
    collectors_.push_back(std::move(collector));
  }

  /// Every registered metric's current value plus the collectors'
  /// samples, sorted by name (collector samples override registered ones
  /// on a name clash — the collector's copy is the coherent one).
  std::vector<MetricSample> Snapshot() const {
    std::vector<MetricSample> samples;
    std::vector<Collector> collectors;
    {
      std::lock_guard<std::mutex> lock(mu_);
      samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
      for (const auto& [name, counter] : counters_) {
        samples.push_back(MetricSample::FromCounter(
            name, static_cast<double>(counter->value())));
      }
      for (const auto& [name, gauge] : gauges_) {
        samples.push_back(
            MetricSample::FromGauge(name, static_cast<double>(gauge->value())));
      }
      for (const auto& [name, histogram] : histograms_) {
        samples.push_back(
            MetricSample::FromHistogram(name, histogram->Snapshot()));
      }
      collectors = collectors_;  // run outside mu_: collectors take their
                                 // own subsystem locks
    }
    for (const Collector& collect : collectors) collect(&samples);
    std::sort(samples.begin(), samples.end(),
              [](const MetricSample& a, const MetricSample& b) {
                return a.name < b.name;
              });
    return samples;
  }

  /// The process-wide registry for callers without a natural owner
  /// (benchmarks, ad-hoc tools). The serving layer deliberately owns its
  /// OWN registry per ClusterServer so tests and side-by-side servers
  /// never share counters.
  static MetricRegistry& Default() {
    static MetricRegistry* registry = new MetricRegistry();
    return *registry;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<Collector> collectors_;
};

}  // namespace dpc::obs

#endif  // DPC_OBS_METRICS_H_
