// Exposition formats over MetricRegistry snapshots:
//
//   ToPrometheusText — the Prometheus text format (# TYPE lines,
//       cumulative `_bucket{le="..."}` rows, `_sum`/`_count`). Empty
//       buckets are elided (cumulative values stay correct — the
//       format allows sparse buckets), and each histogram additionally
//       emits NON-standard convenience gauges `<name>_p50/_p99/_p999`
//       so a shell one-liner can grep a quantile without a PromQL
//       evaluator (see docs/OBSERVABILITY.md).
//   ToJson — one flat JSON object: counters/gauges as numbers,
//       histograms as {count, sum, mean, p50, p99, p999}. Infinities
//       (an overflowed percentile) render as null — JSON has no inf
//       literal — so "p99 is finite" is checkable as "not null".
//
// Both render doubles with %.17g (round-trip exact) and emit samples in
// the snapshot's order (MetricRegistry::Snapshot sorts by name), so
// output is stable run to run for equal metric values.
#ifndef DPC_OBS_EXPORT_H_
#define DPC_OBS_EXPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dpc::obs {

namespace internal {

inline std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// %.17g, with non-finite values clamped to JSON null.
inline std::string FormatJsonNumber(double value) {
  std::string s = FormatDouble(value);
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

/// Sample names may embed a Prometheus label block (e.g.
/// dpc_kernel_tier_info{tier="avx2"}); used as a JSON object key, the
/// quotes inside it must be escaped.
inline void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
}

/// The metric family name for `# TYPE` lines: the name minus any
/// embedded label block.
inline void AppendFamilyName(const std::string& name, std::string* out) {
  const size_t brace = name.find('{');
  out->append(name, 0, brace == std::string::npos ? name.size() : brace);
}

inline void AppendPrometheusHistogram(const MetricSample& sample,
                                      std::string* out) {
  const HistogramSnapshot& h = sample.histogram;
  *out += "# TYPE ";
  *out += sample.name;
  *out += " histogram\n";
  uint64_t cumulative = 0;
  for (int i = 0; i < HistogramBuckets::kNumBounds; ++i) {
    const uint64_t in_bucket = h.counts[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;  // sparse: cumulative rows stay correct
    cumulative += in_bucket;
    *out += sample.name;
    *out += "_bucket{le=\"";
    *out += FormatDouble(HistogramBuckets::Bound(i));
    *out += "\"} ";
    *out += std::to_string(cumulative);
    *out += '\n';
  }
  *out += sample.name;
  *out += "_bucket{le=\"+Inf\"} ";
  *out += std::to_string(h.count);
  *out += '\n';
  *out += sample.name;
  *out += "_sum ";
  *out += FormatDouble(h.sum);
  *out += '\n';
  *out += sample.name;
  *out += "_count ";
  *out += std::to_string(h.count);
  *out += '\n';
  // Convenience quantile gauges (non-standard; see header comment).
  const struct {
    const char* suffix;
    double q;
  } quantiles[] = {{"_p50", 50.0}, {"_p99", 99.0}, {"_p999", 99.9}};
  for (const auto& [suffix, q] : quantiles) {
    *out += "# TYPE ";
    *out += sample.name;
    *out += suffix;
    *out += " gauge\n";
    *out += sample.name;
    *out += suffix;
    *out += ' ';
    *out += FormatDouble(h.Percentile(q));
    *out += '\n';
  }
}

}  // namespace internal

inline std::string ToPrometheusText(const std::vector<MetricSample>& samples) {
  std::string out;
  for (const MetricSample& sample : samples) {
    switch (sample.kind) {
      case MetricKind::kCounter:
        out += "# TYPE ";
        internal::AppendFamilyName(sample.name, &out);
        out += " counter\n";
        out += sample.name;
        out += ' ';
        out += internal::FormatDouble(sample.value);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += "# TYPE ";
        internal::AppendFamilyName(sample.name, &out);
        out += " gauge\n";
        out += sample.name;
        out += ' ';
        out += internal::FormatDouble(sample.value);
        out += '\n';
        break;
      case MetricKind::kHistogram:
        internal::AppendPrometheusHistogram(sample, &out);
        break;
    }
  }
  return out;
}

inline std::string ToJson(const std::vector<MetricSample>& samples) {
  std::string out = "{";
  bool first = true;
  for (const MetricSample& sample : samples) {
    out += first ? "" : ",";
    first = false;
    out += '"';
    internal::AppendJsonEscaped(sample.name, &out);
    out += "\":";
    if (sample.kind == MetricKind::kHistogram) {
      const HistogramSnapshot& h = sample.histogram;
      out += "{\"count\":";
      out += std::to_string(h.count);
      out += ",\"sum\":";
      out += internal::FormatJsonNumber(h.sum);
      out += ",\"mean\":";
      out += internal::FormatJsonNumber(h.Mean());
      out += ",\"p50\":";
      out += internal::FormatJsonNumber(h.Percentile(50.0));
      out += ",\"p99\":";
      out += internal::FormatJsonNumber(h.Percentile(99.0));
      out += ",\"p999\":";
      out += internal::FormatJsonNumber(h.Percentile(99.9));
      out += '}';
    } else {
      out += internal::FormatJsonNumber(sample.value);
    }
  }
  out += "}";
  return out;
}

}  // namespace dpc::obs

#endif  // DPC_OBS_EXPORT_H_
