// Per-request span trees for the serving stack: where did this
// request's 40 ms go?
//
// A Trace is an append-only log of SpanRecords — named [start, end)
// intervals with explicit parent ids, recorded from any thread. The
// serve layer opens one root "request" span per submission, and every
// layer below it (queue wait, cache probe, shard-lease wait, the solve
// and its per-phase children, cache insert, finalize) attaches child
// spans, including spans recorded from ShardPool worker threads — the
// parent id travels with the ExecutionContext, so cross-thread
// parenting needs no thread-local state.
//
// Two recording styles:
//
//   ScopedSpan   — RAII: reads the clock at construction and records on
//                  destruction (or End()). Constructed with a null
//                  Trace* it does NOTHING: no clock read, no id, no
//                  allocation — the disabled-tracing hot path is free
//                  (tests/obs_test.cc asserts zero allocations).
//   RecordComplete — retroactive: record an interval measured some other
//                  way (a queue wait reconstructed from the admission
//                  timestamp, solve phases re-tiled from DpcStats laps).
//
// ToChromeJson() exports the whole trace as a Chrome trace-event JSON
// array — load it at chrome://tracing or https://ui.perfetto.dev.
#ifndef DPC_OBS_TRACE_H_
#define DPC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace dpc::obs {

/// One completed interval. `name` must be a string literal (or otherwise
/// outlive the trace) — spans are recorded on hot paths and must not
/// copy strings.
struct SpanRecord {
  const char* name = "";
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t thread_id = 0;

  double duration_seconds() const {
    return static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

class Trace {
 public:
  /// steady_clock now, in the ns timeline every span uses. Comparable
  /// with ExecutionContext deadlines and scheduler admission stamps,
  /// which sit on the same clock.
  static uint64_t NowNs() {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now()
                                         .time_since_epoch())
                                     .count());
  }

  static uint64_t CurrentThreadId() {
    return static_cast<uint64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
  }

  /// Fresh span id, unique within this trace (never 0 — 0 means root).
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  void Record(const SpanRecord& span) {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(span);
  }

  /// Records a retroactively-measured interval on the current thread and
  /// returns its id, so callers can hang children off it.
  uint64_t RecordComplete(const char* name, uint64_t parent,
                          uint64_t start_ns, uint64_t end_ns) {
    SpanRecord span;
    span.name = name;
    span.id = NextId();
    span.parent = parent;
    span.start_ns = start_ns;
    span.end_ns = end_ns >= start_ns ? end_ns : start_ns;
    span.thread_id = CurrentThreadId();
    Record(span);
    return span.id;
  }

  std::vector<SpanRecord> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
  }

  /// The trace as a Chrome trace-event JSON array of complete ("ph":"X")
  /// events; timestamps are microseconds relative to the earliest span,
  /// span/parent ids ride in "args". Valid JSON even when empty.
  std::string ToChromeJson() const {
    const std::vector<SpanRecord> spans = Snapshot();
    uint64_t epoch_ns = ~uint64_t{0};
    for (const SpanRecord& span : spans) {
      if (span.start_ns < epoch_ns) epoch_ns = span.start_ns;
    }
    std::string out = "[";
    char buf[256];
    for (size_t i = 0; i < spans.size(); ++i) {
      const SpanRecord& span = spans[i];
      std::snprintf(
          buf, sizeof(buf),
          "%s\n{\"name\":\"%s\",\"cat\":\"dpc\",\"ph\":\"X\","
          "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%llu,"
          "\"args\":{\"id\":%llu,\"parent\":%llu}}",
          i == 0 ? "" : ",", span.name,
          static_cast<double>(span.start_ns - epoch_ns) * 1e-3,
          static_cast<double>(span.end_ns - span.start_ns) * 1e-3,
          static_cast<unsigned long long>(span.thread_id % 1000000),
          static_cast<unsigned long long>(span.id),
          static_cast<unsigned long long>(span.parent));
      out += buf;
    }
    out += spans.empty() ? "]\n" : "\n]\n";
    return out;
  }

 private:
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// RAII span. With a null trace every member is a no-op — no clock read,
/// no id allocation, no memory allocation — so instrumentation can stay
/// unconditionally in place on hot paths.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Trace* trace, const char* name, uint64_t parent = 0)
      : trace_(trace) {
    if (trace_ == nullptr) return;
    name_ = name;
    parent_ = parent;
    id_ = trace_->NextId();
    start_ns_ = Trace::NowNs();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      End();
      trace_ = other.trace_;
      name_ = other.name_;
      parent_ = other.parent_;
      id_ = other.id_;
      start_ns_ = other.start_ns_;
      other.trace_ = nullptr;
    }
    return *this;
  }

  ~ScopedSpan() { End(); }

  /// Records the span now instead of at scope exit. Idempotent.
  void End() {
    if (trace_ == nullptr) return;
    SpanRecord span;
    span.name = name_;
    span.id = id_;
    span.parent = parent_;
    span.start_ns = start_ns_;
    span.end_ns = Trace::NowNs();
    span.thread_id = Trace::CurrentThreadId();
    trace_->Record(span);
    trace_ = nullptr;
  }

  bool enabled() const { return trace_ != nullptr; }
  /// This span's id (0 when disabled) — the parent for child spans.
  uint64_t id() const { return trace_ != nullptr ? id_ : 0; }

 private:
  Trace* trace_ = nullptr;
  const char* name_ = "";
  uint64_t parent_ = 0;
  uint64_t id_ = 0;
  uint64_t start_ns_ = 0;
};

}  // namespace dpc::obs

#endif  // DPC_OBS_TRACE_H_
