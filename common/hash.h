// Shared hash functors for integer-coordinate keys. Both grid cells
// (index/grid.h) and LSH bucket keys (index/lsh.h) are vector<int64_t>
// coordinates hashed into an unordered_map whose equality check is the
// full coordinate comparison — collisions can never merge distinct keys.
#ifndef DPC_COMMON_HASH_H_
#define DPC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dpc {

/// FNV-1a over the little-endian bytes of each coordinate.
struct Int64VectorHash {
  size_t operator()(const std::vector<int64_t>& coords) const {
    uint64_t h = 1469598103934665603ULL;
    for (const int64_t c : coords) {
      uint64_t v = static_cast<uint64_t>(c);
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xffULL;
        h *= 1099511628211ULL;
      }
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace dpc

#endif  // DPC_COMMON_HASH_H_
