// Shared hash functors for integer-coordinate keys. Both grid cells
// (index/grid.h) and LSH bucket keys (index/lsh.h) are vector<int64_t>
// coordinates hashed into an unordered_map whose equality check is the
// full coordinate comparison — collisions can never merge distinct keys.
#ifndef DPC_COMMON_HASH_H_
#define DPC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dpc {

/// FNV-1a over a raw byte range, chainable via the seed parameter. Used
/// for dataset content fingerprints (serve/dataset_registry.h); the same
/// constants as Int64VectorHash below.
inline uint64_t Fnv1aBytes(const void* data, size_t size,
                           uint64_t seed = 1469598103934665603ULL) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a over the little-endian bytes of each coordinate.
struct Int64VectorHash {
  size_t operator()(const std::vector<int64_t>& coords) const {
    uint64_t h = 1469598103934665603ULL;
    for (const int64_t c : coords) {
      uint64_t v = static_cast<uint64_t>(c);
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xffULL;
        h *= 1099511628211ULL;
      }
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace dpc

#endif  // DPC_COMMON_HASH_H_
