// Small string helpers shared by benches, examples, and tools. Kept in
// common/ (not core/) because nothing on an algorithm hot path may
// allocate strings.
#ifndef DPC_COMMON_STRING_UTIL_H_
#define DPC_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace dpc {

/// printf-style formatting into a std::string. Output longer than the
/// stack buffer falls back to a heap buffer of the exact size.
inline std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string StrFormat(const char* fmt, ...) {
  char stack_buf[256];
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  if (static_cast<size_t>(needed) < sizeof(stack_buf)) {
    va_end(args_copy);
    return std::string(stack_buf, static_cast<size_t>(needed));
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

/// Splits on a single character; empty fields are kept.
inline std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t begin = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

}  // namespace dpc

#endif  // DPC_COMMON_STRING_UTIL_H_
