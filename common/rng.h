// common/ re-export of the deterministic RNG. The generator itself lives
// in core/rng.h (algorithms depend on it); this header exists so layers
// above core — benches, tools, partitioners — can spell the dependency
// as common/ without reaching into core.
#ifndef DPC_COMMON_RNG_H_
#define DPC_COMMON_RNG_H_

#include "core/rng.h"  // IWYU pragma: export

#endif  // DPC_COMMON_RNG_H_
