// Thread-count and affinity helpers for the parallel/ layer. The name
// keeps the paper's OpenMP vocabulary (the reference implementation is
// OpenMP-based: omp_get_num_procs, omp_set_num_threads); this library is
// std::thread-only, so these are the equivalents the rest of parallel/
// and the benches build on.
#ifndef DPC_PARALLEL_OMP_UTILS_H_
#define DPC_PARALLEL_OMP_UTILS_H_

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dpc {

/// Number of hardware threads; >= 1 even where the runtime reports 0.
inline int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

/// 0 (or negative) requests all hardware threads.
inline int ResolveThreads(int requested) {
  return requested > 0 ? requested : HardwareThreads();
}

/// Pins the calling thread to one CPU. Returns false where unsupported
/// (non-Linux) or when the kernel rejects the mask; callers treat
/// pinning as a hint, never a requirement.
inline bool PinCurrentThreadToCpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(static_cast<unsigned>(cpu % HardwareThreads()), &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace dpc

#endif  // DPC_PARALLEL_OMP_UTILS_H_
