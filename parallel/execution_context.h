// ExecutionContext — the execution policy of DpcAlgorithm::Run (API v2):
// which ThreadPool to run on, how many threads to use, how loops map
// iterations to threads (ScheduleStrategy, paper §4.5), and a per-run
// deadline / cancellation flag checked at phase boundaries.
//
// Contexts are cheap value types: copies share the pool and the cancel
// flag, so a caller can keep one context, hand copies to runs, and
// cancel them all with one RequestCancel(). Default-constructed contexts
// share one process-wide pool sized to the hardware — pool reuse across
// runs is the point of the redesign (no more per-phase thread spawn).
#ifndef DPC_PARALLEL_EXECUTION_CONTEXT_H_
#define DPC_PARALLEL_EXECUTION_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>

#include "obs/trace.h"
#include "parallel/omp_utils.h"
#include "parallel/thread_pool.h"

namespace dpc {

/// How a parallel loop maps iterations to threads (parallel/parallel_for.h).
enum class ScheduleStrategy {
  kStatic,      ///< contiguous equal-count chunks, one per thread
  kDynamic,     ///< threads claim fixed-grain chunks from a shared counter
  kCostGuided,  ///< LPT bins over a per-item cost model (paper §4.5);
                ///< loops without a cost model fall back to dynamic
};

inline const char* ToString(ScheduleStrategy strategy) {
  switch (strategy) {
    case ScheduleStrategy::kStatic:
      return "static";
    case ScheduleStrategy::kDynamic:
      return "dynamic";
    case ScheduleStrategy::kCostGuided:
      return "lpt";
  }
  return "?";
}

class ExecutionContext {
 public:
  /// All hardware threads on the shared process-wide pool, cost-guided
  /// scheduling (the paper's default), no deadline.
  ExecutionContext() : ExecutionContext(0) {}

  /// num_threads 0 leaves the degree unspecified (all hardware threads,
  /// unless the deprecated DpcParams::num_threads overrides — see
  /// EffectiveThreads in core/dpc.h). A null pool selects the shared
  /// process-wide pool.
  explicit ExecutionContext(
      int num_threads,
      ScheduleStrategy strategy = ScheduleStrategy::kCostGuided,
      std::shared_ptr<ThreadPool> pool = nullptr)
      : num_threads_(num_threads > 0 ? num_threads : 0),
        strategy_(strategy),
        pool_(pool != nullptr ? std::move(pool) : SharedDefaultPool()),
        stop_(std::make_shared<StopState>()) {}

  /// Raw request; 0 = unspecified.
  int num_threads() const { return num_threads_; }
  /// Resolved parallelism degree (>= 1).
  int threads() const { return ResolveThreads(num_threads_); }
  ScheduleStrategy strategy() const { return strategy_; }
  ThreadPool& pool() const { return *pool_; }
  const std::shared_ptr<ThreadPool>& shared_pool() const { return pool_; }

  /// Copies sharing the pool and cancel flag, with one knob changed.
  ExecutionContext WithThreads(int num_threads) const {
    ExecutionContext copy = *this;
    copy.num_threads_ = num_threads > 0 ? num_threads : 0;
    return copy;
  }
  ExecutionContext WithStrategy(ScheduleStrategy strategy) const {
    ExecutionContext copy = *this;
    copy.strategy_ = strategy;
    return copy;
  }
  /// A copy running on a different ThreadPool (null selects the shared
  /// process-wide pool), same policy and stop state. This is how a shard
  /// executor points one request at its leased slice of the machine.
  ExecutionContext WithPool(std::shared_ptr<ThreadPool> pool) const {
    ExecutionContext copy = *this;
    copy.pool_ = pool != nullptr ? std::move(pool) : SharedDefaultPool();
    return copy;
  }
  /// A copy sharing the pool and policy but with FRESH stop state: a
  /// deadline or cancel set on the derived context does not reach this
  /// one (and vice versa). This is how a serving layer derives one
  /// per-request context after another over a single shared pool.
  ///
  /// Budgets re-arm: when this context's deadline came from
  /// set_deadline_after(budget), the copy gets the FULL budget measured
  /// from ITS creation — not the parent's partially-burned clock — so a
  /// shard sub-context spawned late in a run still has its whole budget
  /// ahead of it. Absolute deadlines (set_deadline) are not inherited.
  ExecutionContext WithFreshStopState() const {
    ExecutionContext copy = *this;
    const int64_t budget =
        stop_->budget_ticks.load(std::memory_order_acquire);
    copy.stop_ = std::make_shared<StopState>();
    if (budget >= 0) {
      copy.stop_->budget_ticks.store(budget, std::memory_order_relaxed);
      copy.set_deadline(std::chrono::steady_clock::now() +
                        std::chrono::steady_clock::duration(budget));
    }
    return copy;
  }

  // --- tracing ---------------------------------------------------------
  // A context optionally carries a trace and the span id instrumentation
  // should parent under. Both travel with copies (WithThreads / WithPool
  // / WithFreshStopState preserve them), so a span opened on a worker
  // thread lands under the request's root span with no thread-local
  // state. The default is NO trace: ctx.Span(...) then constructs a
  // disabled ScopedSpan — no clock read, no allocation (the
  // zero-cost-off contract tests/obs_test.cc asserts).

  /// A copy carrying `trace` (may be null = tracing off) with child
  /// spans parented under `span_parent`.
  ExecutionContext WithTrace(std::shared_ptr<obs::Trace> trace,
                             uint64_t span_parent = 0) const {
    ExecutionContext copy = *this;
    copy.trace_ = std::move(trace);
    copy.span_parent_ = span_parent;
    return copy;
  }
  /// The active trace, or null when tracing is off.
  obs::Trace* trace() const { return trace_.get(); }
  uint64_t span_parent() const { return span_parent_; }
  /// An RAII span under this context's parent; a no-op when tracing is
  /// off. `name` must outlive the trace (use string literals).
  obs::ScopedSpan Span(const char* name) const {
    return obs::ScopedSpan(trace_.get(), name, span_parent_);
  }

  // --- deadline / cancellation -----------------------------------------
  // Algorithms poll ShouldStop() at phase boundaries; an interrupted run
  // returns with DpcStats::interrupted set and all labels kUnassigned.
  // Both the cancel flag and the deadline live in shared state, so
  // setting either on ANY copy (including after Run has cloned the
  // context via ResolveContext) reaches every other copy, thread-safely.

  void set_deadline(std::chrono::steady_clock::time_point deadline) const {
    stop_->deadline_ns.store(deadline.time_since_epoch().count(),
                             std::memory_order_release);
  }
  /// Relative budget: arms a deadline now + budget AND records the
  /// budget itself so WithFreshStopState copies can re-arm a full one.
  void set_deadline_after(std::chrono::steady_clock::duration budget) const {
    stop_->budget_ticks.store(budget.count(), std::memory_order_release);
    set_deadline(std::chrono::steady_clock::now() + budget);
  }
  void RequestCancel() const {
    stop_->cancel.store(true, std::memory_order_release);
  }
  bool cancel_requested() const {
    return stop_->cancel.load(std::memory_order_acquire);
  }
  bool ShouldStop() const {
    if (cancel_requested()) return true;
    const int64_t deadline_ns =
        stop_->deadline_ns.load(std::memory_order_acquire);
    return deadline_ns != StopState::kNoDeadline &&
           std::chrono::steady_clock::now().time_since_epoch().count() >
               deadline_ns;
  }

  /// The process-wide pool shared by default-constructed contexts (and
  /// therefore by the deprecated two-arg Run shim): created once, sized
  /// to the hardware, reused across runs and algorithms.
  static const std::shared_ptr<ThreadPool>& SharedDefaultPool() {
    static const std::shared_ptr<ThreadPool> pool =
        std::make_shared<ThreadPool>(0);
    return pool;
  }

 private:
  /// Cancellation + deadline, shared across every copy of a context.
  struct StopState {
    static constexpr int64_t kNoDeadline =
        std::numeric_limits<int64_t>::min();
    static constexpr int64_t kNoBudget = -1;
    std::atomic<bool> cancel{false};
    std::atomic<int64_t> deadline_ns{kNoDeadline};  ///< steady_clock ticks
    /// The relative budget behind deadline_ns when it was set via
    /// set_deadline_after (steady_clock ticks); kNoBudget for absolute
    /// deadlines. WithFreshStopState re-arms copies from this.
    std::atomic<int64_t> budget_ticks{kNoBudget};
  };

  int num_threads_ = 0;
  ScheduleStrategy strategy_ = ScheduleStrategy::kCostGuided;
  std::shared_ptr<ThreadPool> pool_;
  std::shared_ptr<StopState> stop_;
  std::shared_ptr<obs::Trace> trace_;  ///< null = tracing off
  uint64_t span_parent_ = 0;
};

}  // namespace dpc

#endif  // DPC_PARALLEL_EXECUTION_CONTEXT_H_
