// Strategy-dispatched parallel loops over the persistent ThreadPool —
// the replacement for core/parallel_for.h's per-call std::thread
// spawn/join. The ExecutionContext picks the strategy; the loop shape
// picks the entry point:
//
//   ParallelFor          index ranges without a cost model (per-point
//                        phases): static chunks or dynamic claiming.
//   ParallelForWithCosts per-item loops with a cost model (grid cells,
//                        §4.5): cost-guided builds an LPT schedule with
//                        one bin per thread.
//
// Every variant calls fn on each index/item exactly once with disjoint
// slices, so loops whose writes are per-slot disjoint stay deterministic
// across strategies and thread counts — the library-wide contract that
// tests/determinism_test.cc enforces.
//
// Cancellation: both loops poll ctx.ShouldStop() amortized (every
// kStopCheckStride indices / every claimed item) and stop issuing work
// once it fires, so an expired or cancelled request releases the pool
// mid-phase instead of at the next phase boundary. A stopped loop leaves
// later indices unvisited — callers observe the same ShouldStop() at the
// phase boundary (stop state is sticky) and discard the partial phase
// via internal::Interrupted.
#ifndef DPC_PARALLEL_PARALLEL_FOR_H_
#define DPC_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/execution_context.h"
#include "parallel/lpt_scheduler.h"

namespace dpc {

namespace internal {
/// Below this iteration count a parallel region cannot pay for itself.
inline constexpr int64_t kMinParallelIterations = 2048;
/// Indices between ShouldStop polls in index loops. Large enough that the
/// poll (two atomic loads, plus a clock read only when a deadline is set)
/// vanishes against per-index work; small enough that a cancelled run
/// frees its pool threads within microseconds.
inline constexpr int64_t kStopCheckStride = 1024;

/// Runs fn over [begin, end) in kStopCheckStride sub-slices, polling the
/// context between slices. Returns false if the loop stopped early.
template <typename Fn>
bool RunSlices(const ExecutionContext& ctx, int64_t begin, int64_t end,
               const Fn& fn) {
  for (int64_t sub = begin; sub < end; sub += kStopCheckStride) {
    if (ctx.ShouldStop()) return false;
    fn(sub, std::min(sub + kStopCheckStride, end));
  }
  return true;
}
}  // namespace internal

/// Calls fn(begin, end) over disjoint chunks of [0, n). kStatic: one
/// contiguous chunk per thread. kDynamic and kCostGuided (which has no
/// per-index cost model here): threads claim grain-sized chunks from a
/// shared counter.
template <typename Fn>
void ParallelFor(const ExecutionContext& ctx, int64_t n, const Fn& fn) {
  if (n <= 0) return;
  const int threads =
      static_cast<int>(std::min<int64_t>(ctx.threads(), n));
  if (threads <= 1 || n < internal::kMinParallelIterations) {
    internal::RunSlices(ctx, 0, n, fn);
    return;
  }
  if (ctx.strategy() == ScheduleStrategy::kStatic) {
    const int64_t chunk = (n + threads - 1) / threads;
    ctx.pool().Run(threads, [&](int64_t t) {
      const int64_t begin = t * chunk;
      const int64_t end = std::min(begin + chunk, n);
      if (begin < end) internal::RunSlices(ctx, begin, end, fn);
    });
  } else {
    // ~8 grains per thread balances claim overhead against load balance.
    const int64_t grain =
        std::max<int64_t>(1, n / (static_cast<int64_t>(threads) * 8));
    std::atomic<int64_t> next{0};
    ctx.pool().Run(threads, [&](int64_t) {
      for (;;) {
        const int64_t begin = next.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) break;
        if (!internal::RunSlices(ctx, begin, std::min(begin + grain, n), fn)) {
          break;
        }
      }
    });
  }
}

/// One fn(begin, end) callback per contiguous static chunk (one chunk
/// per thread) — for loops that amortize expensive per-callback scratch
/// over the whole chunk (LSH-DDP's stamped dedup array). Unlike
/// ParallelFor, mid-chunk stop polling is the callback's job; this loop
/// only skips chunks that have not started when the context says stop.
template <typename Fn>
void ParallelForStaticChunks(const ExecutionContext& ctx, int64_t n,
                             const Fn& fn) {
  if (n <= 0) return;
  const int threads =
      static_cast<int>(std::min<int64_t>(ctx.threads(), n));
  if (threads <= 1 || n < internal::kMinParallelIterations) {
    if (!ctx.ShouldStop()) fn(int64_t{0}, n);
    return;
  }
  const int64_t chunk = (n + threads - 1) / threads;
  ctx.pool().Run(threads, [&](int64_t t) {
    if (ctx.ShouldStop()) return;
    const int64_t begin = t * chunk;
    const int64_t end = std::min(begin + chunk, n);
    if (begin < end) fn(begin, end);
  });
}

/// Calls fn(item) for every item in [0, costs.size()), where costs[item]
/// models the item's work (index/grid.h::CellCosts for grid cells).
/// kCostGuided partitions items with the §4.5 LPT scheduler, one bin per
/// thread; kStatic splits into contiguous equal-count runs; kDynamic
/// claims single items. Items are heavy by definition (a cell's whole
/// point population), so the stop poll runs per item.
template <typename Fn>
void ParallelForWithCosts(const ExecutionContext& ctx,
                          const std::vector<double>& costs, const Fn& fn) {
  const int64_t n = static_cast<int64_t>(costs.size());
  if (n <= 0) return;
  const int threads =
      static_cast<int>(std::min<int64_t>(ctx.threads(), n));
  // Inline when the modeled work is tiny (mirrors ParallelFor's guard;
  // costs are in work units — iterations for the grid's |P(c)| model).
  double total_cost = 0.0;
  for (const double cost : costs) total_cost += cost;
  if (threads <= 1 ||
      total_cost < static_cast<double>(internal::kMinParallelIterations)) {
    for (int64_t item = 0; item < n; ++item) {
      if (ctx.ShouldStop()) return;
      fn(item);
    }
    return;
  }
  switch (ctx.strategy()) {
    case ScheduleStrategy::kStatic: {
      const int64_t chunk = (n + threads - 1) / threads;
      ctx.pool().Run(threads, [&](int64_t t) {
        const int64_t begin = t * chunk;
        const int64_t end = std::min(begin + chunk, n);
        for (int64_t item = begin; item < end; ++item) {
          if (ctx.ShouldStop()) return;
          fn(item);
        }
      });
      break;
    }
    case ScheduleStrategy::kDynamic: {
      std::atomic<int64_t> next{0};
      ctx.pool().Run(threads, [&](int64_t) {
        for (;;) {
          const int64_t item = next.fetch_add(1, std::memory_order_relaxed);
          if (item >= n || ctx.ShouldStop()) break;
          fn(item);
        }
      });
      break;
    }
    case ScheduleStrategy::kCostGuided: {
      const Schedule schedule = LptSchedule(costs, threads);
      ctx.pool().Run(threads, [&](int64_t t) {
        for (const int64_t item : schedule.bins[static_cast<size_t>(t)]) {
          if (ctx.ShouldStop()) return;
          fn(item);
        }
      });
      break;
    }
  }
}

}  // namespace dpc

#endif  // DPC_PARALLEL_PARALLEL_FOR_H_
