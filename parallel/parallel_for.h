// Strategy-dispatched parallel loops over the persistent ThreadPool —
// the replacement for core/parallel_for.h's per-call std::thread
// spawn/join. The ExecutionContext picks the strategy; the loop shape
// picks the entry point:
//
//   ParallelFor          index ranges without a cost model (per-point
//                        phases): static chunks or dynamic claiming.
//   ParallelForWithCosts per-item loops with a cost model (grid cells,
//                        §4.5): cost-guided builds an LPT schedule with
//                        one bin per thread.
//
// Every variant calls fn on each index/item exactly once with disjoint
// slices, so loops whose writes are per-slot disjoint stay deterministic
// across strategies and thread counts — the library-wide contract that
// tests/determinism_test.cc enforces.
#ifndef DPC_PARALLEL_PARALLEL_FOR_H_
#define DPC_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/execution_context.h"
#include "parallel/lpt_scheduler.h"

namespace dpc {

namespace internal {
/// Below this iteration count a parallel region cannot pay for itself.
inline constexpr int64_t kMinParallelIterations = 2048;
}  // namespace internal

/// Calls fn(begin, end) over disjoint chunks of [0, n). kStatic: one
/// contiguous chunk per thread. kDynamic and kCostGuided (which has no
/// per-index cost model here): threads claim grain-sized chunks from a
/// shared counter.
template <typename Fn>
void ParallelFor(const ExecutionContext& ctx, int64_t n, const Fn& fn) {
  if (n <= 0) return;
  const int threads =
      static_cast<int>(std::min<int64_t>(ctx.threads(), n));
  if (threads <= 1 || n < internal::kMinParallelIterations) {
    fn(int64_t{0}, n);
    return;
  }
  if (ctx.strategy() == ScheduleStrategy::kStatic) {
    const int64_t chunk = (n + threads - 1) / threads;
    ctx.pool().Run(threads, [&](int64_t t) {
      const int64_t begin = t * chunk;
      const int64_t end = std::min(begin + chunk, n);
      if (begin < end) fn(begin, end);
    });
  } else {
    // ~8 grains per thread balances claim overhead against load balance.
    const int64_t grain =
        std::max<int64_t>(1, n / (static_cast<int64_t>(threads) * 8));
    std::atomic<int64_t> next{0};
    ctx.pool().Run(threads, [&](int64_t) {
      for (;;) {
        const int64_t begin = next.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) break;
        fn(begin, std::min(begin + grain, n));
      }
    });
  }
}

/// Calls fn(item) for every item in [0, costs.size()), where costs[item]
/// models the item's work (index/grid.h::CellCosts for grid cells).
/// kCostGuided partitions items with the §4.5 LPT scheduler, one bin per
/// thread; kStatic splits into contiguous equal-count runs; kDynamic
/// claims single items.
template <typename Fn>
void ParallelForWithCosts(const ExecutionContext& ctx,
                          const std::vector<double>& costs, const Fn& fn) {
  const int64_t n = static_cast<int64_t>(costs.size());
  if (n <= 0) return;
  const int threads =
      static_cast<int>(std::min<int64_t>(ctx.threads(), n));
  // Inline when the modeled work is tiny (mirrors ParallelFor's guard;
  // costs are in work units — iterations for the grid's |P(c)| model).
  double total_cost = 0.0;
  for (const double cost : costs) total_cost += cost;
  if (threads <= 1 ||
      total_cost < static_cast<double>(internal::kMinParallelIterations)) {
    for (int64_t item = 0; item < n; ++item) fn(item);
    return;
  }
  switch (ctx.strategy()) {
    case ScheduleStrategy::kStatic: {
      const int64_t chunk = (n + threads - 1) / threads;
      ctx.pool().Run(threads, [&](int64_t t) {
        const int64_t begin = t * chunk;
        const int64_t end = std::min(begin + chunk, n);
        for (int64_t item = begin; item < end; ++item) fn(item);
      });
      break;
    }
    case ScheduleStrategy::kDynamic: {
      std::atomic<int64_t> next{0};
      ctx.pool().Run(threads, [&](int64_t) {
        for (;;) {
          const int64_t item = next.fetch_add(1, std::memory_order_relaxed);
          if (item >= n) break;
          fn(item);
        }
      });
      break;
    }
    case ScheduleStrategy::kCostGuided: {
      const Schedule schedule = LptSchedule(costs, threads);
      ctx.pool().Run(threads, [&](int64_t t) {
        for (const int64_t item : schedule.bins[static_cast<size_t>(t)]) {
          fn(item);
        }
      });
      break;
    }
  }
}

}  // namespace dpc

#endif  // DPC_PARALLEL_PARALLEL_FOR_H_
