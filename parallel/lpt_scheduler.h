// Cost-based cell -> thread partitioning (paper §4.5). The grid-based
// algorithms know, before a phase starts, roughly how much work each cell
// holds (index/grid.h's CellCosts hook); assigning whole cells to threads
// with longest-processing-time-first (LPT) keeps every thread's total
// cost near the mean, where naive strategies leave one thread holding the
// densest cells. LPT is the classic 4/3-approximation of the optimal
// makespan. HashSchedule is the strawman the paper compares against
// (LSH-DDP's id-modulo-thread partitioning).
//
// Scheduling is deterministic: items are ordered by (cost desc, id asc)
// and load ties pick the smallest bin id, so a fixed cost vector always
// produces the same assignment.
#ifndef DPC_PARALLEL_LPT_SCHEDULER_H_
#define DPC_PARALLEL_LPT_SCHEDULER_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

namespace dpc {

/// An item -> bin assignment plus its load profile; bins[t] lists the
/// item indices bin t owns, in assignment order.
struct Schedule {
  std::vector<std::vector<int64_t>> bins;
  std::vector<double> load;    ///< total cost per bin
  double makespan = 0.0;       ///< max over load

  int num_bins() const { return static_cast<int>(bins.size()); }
  double TotalLoad() const {
    return std::accumulate(load.begin(), load.end(), 0.0);
  }
  double MeanLoad() const {
    return bins.empty() ? 0.0 : TotalLoad() / static_cast<double>(bins.size());
  }
  /// makespan / mean — 1.0 is perfect balance, bigger is worse.
  double Imbalance() const {
    const double mean = MeanLoad();
    return mean > 0.0 ? makespan / mean : 1.0;
  }
};

/// Longest-processing-time-first: items in descending cost order, each
/// assigned to the currently least-loaded bin.
inline Schedule LptSchedule(const std::vector<double>& costs, int num_bins) {
  Schedule s;
  const int bins = num_bins > 0 ? num_bins : 1;
  s.bins.resize(static_cast<size_t>(bins));
  s.load.assign(static_cast<size_t>(bins), 0.0);

  const int64_t n = static_cast<int64_t>(costs.size());
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [&costs](int64_t a, int64_t b) {
    const double ca = costs[static_cast<size_t>(a)];
    const double cb = costs[static_cast<size_t>(b)];
    return ca > cb || (ca == cb && a < b);
  });

  // Min-heap of (load, bin id); the pair order breaks load ties by bin id.
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
  for (int t = 0; t < bins; ++t) heap.emplace(0.0, t);
  for (const int64_t item : order) {
    auto [load, t] = heap.top();
    heap.pop();
    s.bins[static_cast<size_t>(t)].push_back(item);
    load += costs[static_cast<size_t>(item)];
    s.load[static_cast<size_t>(t)] = load;
    heap.emplace(load, t);
  }
  s.makespan = *std::max_element(s.load.begin(), s.load.end());
  return s;
}

/// The hash-partition strawman: item i -> bin i % num_bins, cost-blind.
inline Schedule HashSchedule(const std::vector<double>& costs, int num_bins) {
  Schedule s;
  const int bins = num_bins > 0 ? num_bins : 1;
  s.bins.resize(static_cast<size_t>(bins));
  s.load.assign(static_cast<size_t>(bins), 0.0);
  for (int64_t item = 0; item < static_cast<int64_t>(costs.size()); ++item) {
    const size_t t = static_cast<size_t>(item % bins);
    s.bins[t].push_back(item);
    s.load[t] += costs[static_cast<size_t>(item)];
  }
  s.makespan = *std::max_element(s.load.begin(), s.load.end());
  return s;
}

}  // namespace dpc

#endif  // DPC_PARALLEL_LPT_SCHEDULER_H_
