// Persistent worker pool with a task queue — the only place in the
// library that spawns std::threads. core/'s old per-phase spawn/join
// (core/parallel_for.h, now gone) paid thread creation on every phase of
// every run; a pool amortizes that across phases, runs, and algorithms
// (the default ExecutionContext shares one process-wide pool).
//
// Model: Run(num_tasks, fn) executes fn(0) .. fn(num_tasks - 1) exactly
// once each and returns when all calls have finished. The caller
// participates, so a pool of size T gives T-way concurrency with T - 1
// resident workers. Tasks are claimed from a shared atomic counter;
// which thread runs which task is unspecified, so determinism is the
// caller's contract (the algorithms only ever write disjoint slots).
//
// Concurrent Run calls from different threads serialize on an internal
// mutex; Run from inside a task (nesting) degrades to inline serial
// execution instead of deadlocking.
#ifndef DPC_PARALLEL_THREAD_POOL_H_
#define DPC_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/omp_utils.h"

namespace dpc {

class ThreadPool {
 public:
  /// num_threads <= 0 means all hardware threads. pin_threads pins each
  /// worker to one CPU (best-effort, Linux only).
  explicit ThreadPool(int num_threads = 0, bool pin_threads = false)
      : size_(ResolveThreads(num_threads)) {
    workers_.reserve(static_cast<size_t>(size_ - 1));
    for (int t = 1; t < size_; ++t) {
      workers_.emplace_back([this, t, pin_threads] {
        if (pin_threads) PinCurrentThreadToCpu(t);
        WorkerLoop();
      });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Total concurrency (resident workers + the calling thread).
  int size() const { return size_; }

  /// Runs fn(0) .. fn(num_tasks - 1), each exactly once, and blocks until
  /// all calls return. fn must be safe to call concurrently for distinct
  /// task ids.
  template <typename Fn>
  void Run(int64_t num_tasks, const Fn& fn) {
    if (num_tasks <= 0) return;
    if (num_tasks == 1 || size_ <= 1 || tls_in_region_) {
      for (int64_t t = 0; t < num_tasks; ++t) fn(t);
      return;
    }
    std::lock_guard<std::mutex> run_lock(run_mu_);  // one region at a time
    auto region = std::make_shared<Region>();
    region->job = [&fn](int64_t t) { fn(t); };
    region->num_tasks = num_tasks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = region;
      ++generation_;
    }
    cv_work_.notify_all();
    WorkOn(*region);
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] {
      return region->completed.load(std::memory_order_acquire) ==
             region->num_tasks;
    });
  }

 private:
  /// One Run call's state. Held by shared_ptr so a worker late to wake
  /// from a previous region can never touch freed state.
  struct Region {
    std::function<void(int64_t)> job;
    int64_t num_tasks = 0;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> completed{0};
  };

  void WorkOn(Region& region) {
    tls_in_region_ = true;
    for (;;) {
      const int64_t t = region.next.fetch_add(1, std::memory_order_relaxed);
      if (t >= region.num_tasks) break;
      region.job(t);
      if (region.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          region.num_tasks) {
        std::lock_guard<std::mutex> lock(mu_);
        cv_done_.notify_all();
      }
    }
    tls_in_region_ = false;
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Region> region;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        region = current_;
      }
      if (region) WorkOn(*region);
    }
  }

  const int size_;
  std::vector<std::thread> workers_;
  std::mutex run_mu_;  ///< serializes Run callers
  std::mutex mu_;      ///< guards current_/generation_/stop_ + both cvs
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::shared_ptr<Region> current_;
  uint64_t generation_ = 0;
  bool stop_ = false;

  /// True while this thread executes region tasks; makes nested Run
  /// calls run inline instead of deadlocking on run_mu_.
  inline static thread_local bool tls_in_region_ = false;
};

}  // namespace dpc

#endif  // DPC_PARALLEL_THREAD_POOL_H_
